"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools predates PEP 660 editable-wheel support.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "inGRASS: incremental graph spectral sparsification via "
        "low-resistance-diameter decomposition (DAC 2024 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    extras_require={"dev": ["pytest>=7.0", "pytest-benchmark>=4.0", "hypothesis>=6.0"]},
)
