"""Benchmark for Figure 4: runtime scalability of GRASS vs inGRASS.

Paper reference: Figure 4 plots (log scale) the runtime of ten incremental
update iterations for GRASS re-run from scratch, for the inGRASS update phase
alone, and for inGRASS updates plus its one-time setup, across growing graphs;
inGRASS stays >200x faster and the gap widens with size.

The benchmark times the inGRASS update pass at two graph sizes (the scaling
series), and the plain test asserts that the speedup does not shrink as the
graph grows.  Regenerate the full figure data with
``python -m repro.bench.figure4``.
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import build_dataset
from repro.bench.harness import _run_grass_incremental, _run_ingrass_incremental, _scenario_config
from repro.core import InGrassConfig, InGrassSparsifier, LRDConfig
from repro.streams import build_scenario

SIZE_CASES = ["delaunay_n10", "delaunay_n11"]


@pytest.mark.parametrize("case", SIZE_CASES)
def test_ingrass_update_scaling(benchmark, case, bench_config):
    """Time the full inGRASS update pass as the graph size doubles."""
    graph = build_dataset(case, scale="small", seed=0)
    scenario = build_scenario(graph, _scenario_config(bench_config))

    def run():
        ingrass = InGrassSparsifier(InGrassConfig(lrd=LRDConfig(seed=0), seed=0))
        ingrass.setup(scenario.graph, scenario.initial_sparsifier,
                      target_condition_number=scenario.initial_condition_number)
        for batch in scenario.batches:
            ingrass.update(batch)
        return ingrass

    ingrass = benchmark.pedantic(run, iterations=1, rounds=2)
    assert len(ingrass.history) == len(scenario.batches)


def test_speedup_grows_with_graph_size(bench_config):
    """Shape check for Figure 4: the GRASS/inGRASS runtime ratio does not
    shrink when the graph doubles in size."""
    speedups = []
    for case in SIZE_CASES:
        graph = build_dataset(case, scale="small", seed=0)
        scenario = build_scenario(graph, _scenario_config(bench_config))
        ingrass_outcome, _ = _run_ingrass_incremental(scenario, bench_config)
        grass_outcome = _run_grass_incremental(scenario, bench_config)
        speedups.append(grass_outcome.seconds / max(ingrass_outcome.seconds, 1e-9))
    assert all(s > 10 for s in speedups)
    assert speedups[-1] > 0.5 * speedups[0]
