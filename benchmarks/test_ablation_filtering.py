"""Ablation bench: similarity-filtering level selection.

DESIGN.md calls out the filtering-level rule (largest cluster size at most
``C / filtering_size_divisor``) as a design choice: the paper's divisor of 2
filters aggressively (sparser result, looser tracking of the target κ), while
larger divisors pick a finer level that admits more edges but follows the
target more closely.  This bench sweeps the divisor on the primary scenario.
"""

from __future__ import annotations

import pytest

from repro.core import InGrassConfig, InGrassSparsifier, LRDConfig
from repro.sparsify import offtree_density
from repro.spectral import relative_condition_number

DIVISORS = [2.0, 4.0, 8.0]


def _run_with_divisor(scenario, divisor, dense_limit):
    config = InGrassConfig(filtering_size_divisor=divisor, lrd=LRDConfig(seed=0), seed=0)
    ingrass = InGrassSparsifier(config)
    ingrass.setup(scenario.graph, scenario.initial_sparsifier,
                  target_condition_number=scenario.initial_condition_number)
    for batch in scenario.batches:
        ingrass.update(batch)
    return ingrass


@pytest.mark.parametrize("divisor", DIVISORS)
def test_update_time_per_divisor(benchmark, primary_scenario, bench_config, divisor):
    """Time the full update pass for each filtering-size divisor."""
    ingrass = benchmark.pedantic(
        lambda: _run_with_divisor(primary_scenario, divisor, bench_config.condition_dense_limit),
        iterations=1, rounds=1,
    )
    assert len(ingrass.history) == len(primary_scenario.batches)


def test_finer_filtering_adds_more_edges(primary_scenario, bench_config):
    """A larger divisor (finer filtering level) admits at least as many edges
    and tracks the target condition number at least as tightly."""
    results = {}
    for divisor in (2.0, 8.0):
        ingrass = _run_with_divisor(primary_scenario, divisor, bench_config.condition_dense_limit)
        kappa = relative_condition_number(ingrass.graph, ingrass.sparsifier,
                                          dense_limit=bench_config.condition_dense_limit)
        results[divisor] = (offtree_density(ingrass.sparsifier), kappa)
    density_paper, kappa_paper = results[2.0]
    density_fine, kappa_fine = results[8.0]
    assert density_fine >= density_paper - 1e-9
    assert kappa_fine <= kappa_paper * 1.25
