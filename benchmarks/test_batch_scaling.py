"""Benchmark driver for the vectorised batch update engine.

Times :func:`repro.core.run_update` under the scalar reference engine and the
vectorised batch engine at growing batch sizes, and asserts the headline
property of the batched path: a large streamed batch is filtered several
times faster per edge with an *identical* resulting sparsifier edge set.
Regenerate the full sweep (10² – 10⁵ edges) and the ``BENCH_batch.json``
artifact with ``python -m repro.bench.batch``; the CI perf gate checks that
artifact against ``benchmarks/baselines/batch_baseline.json`` via
``python -m repro.bench.baseline --check``.
"""

from __future__ import annotations

import pytest

from repro.bench.batch import TARGET_CONDITION, _timed_update
from repro.core import InGrassConfig, LRDConfig, run_setup
from repro.sparsify import GrassConfig, GrassSparsifier
from repro.streams import mixed_edges


@pytest.fixture(scope="module")
def batch_setup(request):
    """(graph, initial sparsifier, SetupResult, filtering level) on the primary case."""
    primary_graph = request.getfixturevalue("primary_graph")
    grass = GrassSparsifier(GrassConfig(target_offtree_density=0.10,
                                        tree_method="shortest_path", seed=0))
    sparsifier = grass.sparsify(primary_graph, evaluate_condition=False).sparsifier
    config = InGrassConfig(lrd=LRDConfig(seed=0), seed=0)
    setup = run_setup(sparsifier.copy(), config)
    level = setup.filtering_level_for(TARGET_CONDITION, config.filtering_size_divisor)
    return primary_graph, sparsifier, setup, level


def _mode_config(mode: str) -> InGrassConfig:
    return InGrassConfig(lrd=LRDConfig(seed=0), batch_mode=mode, seed=0)


@pytest.mark.smoke
@pytest.mark.parametrize("mode", ["scalar", "vectorized"])
def test_update_batch_2000(benchmark, batch_setup, mode):
    """Time one 2000-edge update batch under each engine (CI smoke subset)."""
    graph, sparsifier, setup, level = batch_setup
    stream = mixed_edges(graph, 2000, long_range_fraction=0.5, seed=5)
    config = _mode_config(mode)

    def run():
        return _timed_update(sparsifier, setup, stream, config, level)

    _, working, result = benchmark.pedantic(run, iterations=1, rounds=3)
    assert result.summary.total == len(stream)
    assert working.num_edges >= sparsifier.num_edges


@pytest.mark.smoke
def test_vectorized_beats_scalar_on_large_batch(batch_setup):
    """The acceptance property at the 10⁴-edge batch size.

    The committed ``BENCH_batch.json`` demonstrates >=5x on the reference
    runner; under pytest the bound is relaxed to 2x so a loaded CI machine
    cannot flake the tier-1 suite — the strict 30% regression gate lives in
    the dedicated ``bench-perf`` CI job.
    """
    graph, sparsifier, setup, level = batch_setup
    stream = mixed_edges(graph, 10_000, long_range_fraction=0.5, seed=7)
    seconds = {}
    edge_sets = {}
    for mode in ("scalar", "vectorized"):
        best = float("inf")
        for _ in range(2):
            elapsed, working, _ = _timed_update(sparsifier, setup, stream,
                                                _mode_config(mode), level)
            best = min(best, elapsed)
        seconds[mode] = best
        edge_sets[mode] = set(working.edges())
    assert edge_sets["scalar"] == edge_sets["vectorized"]
    assert seconds["vectorized"] * 2.0 < seconds["scalar"], (
        f"vectorized engine not faster: {seconds}")


def test_per_edge_cost_stays_flat_with_batch_size(batch_setup):
    """Vectorised per-edge cost must not blow up from 10³ to 10⁵ edges.

    The scalar path's constant is flat but huge; the batched engine must not
    reintroduce superlinear per-edge behaviour at paper-scale batches.  The
    reference trajectory is ~0.8x (per-edge cost *falls* with batch size);
    best-of-3 timings and a 4x allowance keep a noisy CI machine from
    flaking the tier-1 suite while still catching an O(m²) regression,
    which shows up as ~100x.
    """
    graph, sparsifier, setup, level = batch_setup
    per_edge = {}
    for size in (1000, 100_000):
        stream = mixed_edges(graph, size, long_range_fraction=0.5, seed=9)
        best = float("inf")
        for _ in range(3):
            elapsed, _, _ = _timed_update(sparsifier, setup, stream,
                                          _mode_config("vectorized"), level)
            best = min(best, elapsed)
        per_edge[size] = best / size
    assert per_edge[100_000] < 4.0 * per_edge[1000], per_edge
