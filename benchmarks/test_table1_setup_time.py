"""Benchmark for Table I: GRASS from-scratch time vs inGRASS setup time.

Paper reference: Table I reports, per test case, the runtime of one GRASS
sparsification of the original graph next to the one-time setup cost of
inGRASS (resistance estimation + multilevel LRD decomposition) on the initial
sparsifier.  The claim is that the setup is of the same order as — usually
cheaper than — a single GRASS run, so it amortises immediately.

Regenerate the full table with ``python -m repro.bench.table1``.
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import QUICK_CASES, build_dataset
from repro.core import InGrassConfig, LRDConfig, run_setup
from repro.sparsify import GrassConfig, GrassSparsifier


def _grass_config() -> GrassConfig:
    return GrassConfig(target_offtree_density=0.10, tree_method="shortest_path", seed=0)


@pytest.mark.parametrize("case", QUICK_CASES)
def test_grass_from_scratch_time(benchmark, case):
    """Time one GRASS-style sparsification of the original graph (Table I, 'GRASS')."""
    graph = build_dataset(case, scale="small", seed=0)

    def run():
        return GrassSparsifier(_grass_config()).sparsify(graph, evaluate_condition=False)

    result = benchmark(run)
    assert result.sparsifier.num_edges >= graph.num_nodes - 1


@pytest.mark.smoke
@pytest.mark.parametrize("case", QUICK_CASES)
def test_ingrass_setup_time(benchmark, case):
    """Time the inGRASS setup phase on the initial sparsifier (Table I, 'Setup')."""
    graph = build_dataset(case, scale="small", seed=0)
    sparsifier = GrassSparsifier(_grass_config()).sparsify(graph, evaluate_condition=False).sparsifier
    config = InGrassConfig(lrd=LRDConfig(seed=0), seed=0)

    def run():
        return run_setup(sparsifier.copy(), config)

    setup = benchmark(run)
    assert setup.num_levels >= 1


@pytest.mark.smoke
def test_setup_time_same_order_as_grass(primary_graph):
    """Shape check: the setup cost stays within a small factor of one GRASS run."""
    from repro.utils.timing import time_call

    grass, grass_seconds = time_call(
        lambda: GrassSparsifier(_grass_config()).sparsify(primary_graph, evaluate_condition=False)
    )
    _, setup_seconds = time_call(lambda: run_setup(grass.sparsifier, InGrassConfig(seed=0)))
    assert setup_seconds < 10 * max(grass_seconds, 1e-3)
