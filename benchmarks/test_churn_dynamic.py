"""Benchmark for the churn protocol: fully dynamic insert/delete streams.

This protocol goes beyond the paper.  Table II streams insertions only; real
workloads (power-grid reconfiguration, FEM remeshing) also delete edges, so
the churn scenario mixes >=30% deletions into the 10-iteration stream and the
acceptance bar is that the maintained sparsifier stays connected and within
2x the target condition number at *every* iteration.

The pytest-benchmark entry times the full dynamic maintenance pass (setup
excluded — it is the same one-time cost Table I measures); the plain test
asserts the quality trajectory.  Regenerate the full table with
``python -m repro.bench.churn``.
"""

from __future__ import annotations

import pytest

from repro.core import InGrassConfig, InGrassSparsifier, LRDConfig
from repro.graphs import is_connected
from repro.sparsify import offtree_density


def _dynamic_config(bench_config):
    return InGrassConfig(
        lrd=LRDConfig(seed=0),
        kappa_guard_factor=1.8,
        kappa_guard_dense_limit=bench_config.condition_dense_limit,
        seed=0,
    )


@pytest.mark.smoke
def test_churn_ten_iteration_updates(benchmark, churn_scenario, bench_config):
    """Time the dynamic side: setup once, then stream all ten mixed batches."""

    def run():
        ingrass = InGrassSparsifier(_dynamic_config(bench_config))
        ingrass.setup(churn_scenario.graph, churn_scenario.initial_sparsifier,
                      target_condition_number=churn_scenario.initial_condition_number)
        for batch in churn_scenario.batches:
            ingrass.update(batch)
        return ingrass

    ingrass = benchmark.pedantic(run, iterations=1, rounds=3)
    assert len(ingrass.history) == len(churn_scenario.batches)


@pytest.mark.smoke
def test_churn_quality_trajectory(churn_scenario, bench_config):
    """Acceptance assertions for the churn protocol on the primary case:

    * the stream really is churn (>=30% deletions over >=10 iterations);
    * the maintained sparsifier stays connected after every batch;
    * kappa(G(k), H(k)) stays within 2x the target at every iteration;
    * the sparsifier stays far sparser than the full evolving graph.
    """
    assert churn_scenario.deletion_fraction >= 0.30
    assert len(churn_scenario.batches) >= 10

    target = churn_scenario.initial_condition_number
    ingrass = InGrassSparsifier(_dynamic_config(bench_config))
    ingrass.setup(churn_scenario.graph, churn_scenario.initial_sparsifier,
                  target_condition_number=target)
    removed_total = 0
    for batch in churn_scenario.batches:
        result = ingrass.update(batch)
        if result.removal is not None:
            removed_total += len(result.removal.removed_from_sparsifier)
        assert is_connected(ingrass.sparsifier)
        kappa = ingrass.condition_number(dense_limit=bench_config.condition_dense_limit)
        assert kappa <= 2.0 * target
    # Deletions genuinely exercised the sparsifier repair path.
    assert removed_total > 0
    final_graph = ingrass.graph
    assert offtree_density(ingrass.sparsifier) < offtree_density(final_graph)


def test_deletion_heavy_stream_stays_connected(primary_graph, bench_config):
    """A 75%-deletion stream keeps the sparsifier connected and supported."""
    from repro.streams import DynamicScenarioConfig, build_deletion_scenario

    scenario = build_deletion_scenario(
        primary_graph,
        DynamicScenarioConfig(
            deletion_fraction=0.75,
            num_iterations=5,
            condition_dense_limit=bench_config.condition_dense_limit,
            seed=1,
        ),
    )
    ingrass = InGrassSparsifier(_dynamic_config(bench_config))
    ingrass.setup(scenario.graph, scenario.initial_sparsifier,
                  target_condition_number=scenario.initial_condition_number)
    for batch in scenario.batches:
        ingrass.update(batch)
        assert is_connected(ingrass.sparsifier)
    # Every sparsifier edge still exists in the evolving graph: deletions
    # were honoured and repairs only re-used surviving graph edges.
    for u, v in ingrass.sparsifier.edges():
        assert ingrass.graph.has_edge(u, v)
