"""Ablation bench: LRD decomposition parameters.

DESIGN.md calls out the diameter growth factor as the lever that trades the
embedding dimension (number of levels) against the granularity of the cluster
hierarchy.  This bench times the decomposition for several growth factors and
checks the expected structural trends.
"""

from __future__ import annotations

import pytest

from repro.core import LRDConfig, ResistanceEmbedding, lrd_decompose

GROWTH_FACTORS = [1.5, 2.0, 4.0]


@pytest.mark.parametrize("growth", GROWTH_FACTORS)
def test_lrd_decomposition_time(benchmark, primary_sparsifier, growth):
    """Time the multilevel LRD decomposition for different growth factors."""

    def run():
        return lrd_decompose(primary_sparsifier, LRDConfig(growth_factor=growth, seed=0))

    hierarchy = benchmark.pedantic(run, iterations=1, rounds=2)
    assert hierarchy.levels[-1].num_clusters == 1


@pytest.mark.smoke
def test_larger_growth_means_fewer_levels(primary_sparsifier):
    """A faster-growing diameter schedule produces a shallower hierarchy."""
    shallow = lrd_decompose(primary_sparsifier, LRDConfig(growth_factor=4.0, seed=0))
    deep = lrd_decompose(primary_sparsifier, LRDConfig(growth_factor=1.5, seed=0))
    assert shallow.num_levels <= deep.num_levels


def test_embedding_quality_stable_across_growth(primary_sparsifier, rng_pairs):
    """The rank correlation of embedding estimates vs exact resistances stays
    positive for every growth factor (the estimates get coarser, not wrong)."""
    for growth in GROWTH_FACTORS:
        hierarchy = lrd_decompose(primary_sparsifier, LRDConfig(growth_factor=growth, seed=0))
        stats = ResistanceEmbedding(hierarchy).compare_with_exact(primary_sparsifier, rng_pairs)
        assert stats.spearman_correlation > 0.2


@pytest.fixture(scope="module")
def rng_pairs(primary_sparsifier):
    import numpy as np

    rng = np.random.default_rng(0)
    n = primary_sparsifier.num_nodes
    return [tuple(rng.choice(n, 2, replace=False)) for _ in range(100)]
