"""Benchmark for Table II: incremental sparsification through 10 update iterations.

Paper reference: Table II compares, per test case, the density each method
needs to restore the initial condition number after ten batches of edge
insertions (GRASS-D / inGRASS-D / Random-D) and the total runtime of the ten
iterations (GRASS-T / inGRASS-T), with speedups of 70-220x for inGRASS.

The pytest-benchmark entries below time the two sides of the speedup ratio —
one full GRASS re-sparsification versus one full inGRASS update pass over the
same stream — and the plain test asserts the qualitative shape.  Regenerate
the full table with ``python -m repro.bench.table2``.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import _run_grass_incremental, _run_ingrass_incremental
from repro.core import InGrassConfig, InGrassSparsifier, LRDConfig
from repro.sparsify import GrassConfig, GrassSparsifier, offtree_density


@pytest.mark.smoke
def test_ingrass_ten_iteration_updates(benchmark, primary_scenario):
    """Time the inGRASS side: setup once, then stream all ten batches (Table II, 'inGRASS-T')."""

    def run():
        ingrass = InGrassSparsifier(InGrassConfig(lrd=LRDConfig(seed=0), seed=0))
        ingrass.setup(primary_scenario.graph, primary_scenario.initial_sparsifier,
                      target_condition_number=primary_scenario.initial_condition_number)
        for batch in primary_scenario.batches:
            ingrass.update(batch)
        return ingrass

    ingrass = benchmark(run)
    assert len(ingrass.history) == len(primary_scenario.batches)


def test_grass_single_rerun_from_scratch(benchmark, primary_scenario, bench_config):
    """Time one GRASS re-sparsification of the fully updated graph (one of the
    ten from-scratch runs that make up Table II's 'GRASS-T')."""
    final_graph = primary_scenario.final_graph
    target = primary_scenario.initial_condition_number

    def run():
        sparsifier = GrassSparsifier(
            GrassConfig(tree_method="shortest_path", condition_dense_limit=bench_config.condition_dense_limit,
                        seed=0)
        )
        return sparsifier.sparsify_to_condition(final_graph, target, max_density=1.0)

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result.condition_number is not None


def test_table2_shape(primary_scenario, bench_config):
    """Shape assertions for the Table II comparison on the primary case:

    * inGRASS's ten updates are at least an order of magnitude faster than
      re-running GRASS from scratch at every iteration;
    * the maintained sparsifier stays far sparser than blindly including every
      streamed edge;
    * the updated sparsifier is spectrally no worse than never updating it.
    """
    ingrass_outcome, setup_seconds = _run_ingrass_incremental(primary_scenario, bench_config)
    grass_outcome = _run_grass_incremental(primary_scenario, bench_config)

    assert grass_outcome.seconds > 10 * ingrass_outcome.seconds
    blind_density = offtree_density(
        primary_scenario.initial_sparsifier.union_with_edges(primary_scenario.all_new_edges)
    )
    assert ingrass_outcome.offtree_density < blind_density
    degraded = primary_scenario.degraded_condition_number()
    assert ingrass_outcome.condition_number <= degraded * 1.2
    # GRASS, which explicitly verifies the target, reaches it.
    assert grass_outcome.condition_number <= primary_scenario.initial_condition_number * 1.1
