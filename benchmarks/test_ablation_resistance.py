"""Ablation bench: resistance-embedding method used by the setup phase.

DESIGN.md calls out the choice between the paper's solver-free Krylov
surrogate (equation (3)), the Johnson–Lindenstrauss embedding built from
``O(log N)`` Laplacian solves, and exact per-pair solves.  This bench times
the three constructions and reports how well each ranks the sparsifier's edge
resistances (rank correlation against exact values), which is the property
the LRD decomposition and the distortion estimates rely on.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import spearmanr

from repro.spectral import (
    ApproxResistanceCalculator,
    ExactResistanceCalculator,
    JLResistanceCalculator,
)

METHODS = ["jl", "krylov"]


@pytest.fixture(scope="module")
def exact_edge_resistances(primary_sparsifier):
    return ExactResistanceCalculator(primary_sparsifier).edge_resistances()


@pytest.mark.parametrize("method", METHODS)
def test_embedding_build_time(benchmark, primary_sparsifier, method):
    """Time the construction of the resistance embedding on the initial sparsifier."""

    def run():
        if method == "jl":
            return JLResistanceCalculator(primary_sparsifier, seed=0)
        return ApproxResistanceCalculator(primary_sparsifier, seed=0)

    calculator = benchmark(run)
    assert calculator.order >= 4


@pytest.mark.parametrize("method", METHODS)
def test_embedding_ranking_quality(primary_sparsifier, exact_edge_resistances, method):
    """Rank correlation of approximate vs exact edge resistances.

    The JL embedding should rank almost perfectly; the solver-free Krylov
    surrogate is noisier but must stay clearly positively correlated — that is
    the regime in which the paper's setup phase operates.
    """
    if method == "jl":
        approx = JLResistanceCalculator(primary_sparsifier, seed=0).edge_resistances()
        threshold = 0.8
    else:
        approx = ApproxResistanceCalculator(primary_sparsifier, seed=0).edge_resistances()
        threshold = 0.4
    correlation = spearmanr(exact_edge_resistances, approx).statistic
    assert correlation > threshold


def test_jl_is_nearly_unbiased(primary_sparsifier, exact_edge_resistances):
    """The JL estimate's median ratio to the exact value stays near 1."""
    approx = JLResistanceCalculator(primary_sparsifier, seed=0).edge_resistances()
    ratio = np.median(approx / np.maximum(exact_edge_resistances, 1e-15))
    assert 0.8 < ratio < 1.25
