"""Benchmark for Table III: robustness across initial sparsifier densities.

Paper reference: Table III fixes the G2_circuit test case and sweeps the
initial sparsifier density from ~6.5 % to ~12.7 %, showing that inGRASS's
final density stays within about one percentage point of GRASS's across the
whole sweep (and that sparser initial sparsifiers start from larger condition
numbers).

Regenerate the full table with ``python -m repro.bench.table3``.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import _run_ingrass_incremental, _scenario_config
from repro.core import InGrassConfig, InGrassSparsifier, LRDConfig
from repro.streams import build_scenario

DENSITIES = [0.12, 0.08]


@pytest.mark.parametrize("density", DENSITIES)
def test_ingrass_updates_across_initial_densities(benchmark, primary_graph, bench_config, density):
    """Time the inGRASS update pass for different initial sparsifier densities."""
    scenario = build_scenario(
        primary_graph,
        _scenario_config(bench_config, initial_density=density, final_density=0.32),
    )

    def run():
        ingrass = InGrassSparsifier(InGrassConfig(lrd=LRDConfig(seed=0), seed=0))
        ingrass.setup(scenario.graph, scenario.initial_sparsifier,
                      target_condition_number=scenario.initial_condition_number)
        for batch in scenario.batches:
            ingrass.update(batch)
        return ingrass

    ingrass = benchmark.pedantic(run, iterations=1, rounds=1)
    assert len(ingrass.history) == len(scenario.batches)


def test_sparser_initial_sparsifier_has_larger_condition_number(primary_graph, bench_config):
    """Shape check mirroring Table III's κ column: lower initial density → larger initial κ."""
    scenarios = [
        build_scenario(primary_graph, _scenario_config(bench_config, initial_density=density, final_density=0.32))
        for density in (0.12, 0.07)
    ]
    assert scenarios[1].initial_condition_number >= scenarios[0].initial_condition_number * 0.9


def test_final_density_tracks_initial_density(primary_graph, bench_config):
    """Shape check mirroring Table III's density columns: the maintained
    density after the updates stays close to (and ordered like) the initial
    density across the sweep."""
    finals = []
    for density in DENSITIES:
        scenario = build_scenario(
            primary_graph, _scenario_config(bench_config, initial_density=density, final_density=0.32)
        )
        outcome, _ = _run_ingrass_incremental(scenario, bench_config)
        finals.append((density, outcome.offtree_density))
    # Higher initial density ends higher, and neither explodes to the
    # "include everything" level of 32 %.
    assert finals[0][1] >= finals[1][1] - 0.02
    assert all(final < 0.32 for _, final in finals)
