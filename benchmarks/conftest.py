"""Shared fixtures for the pytest-benchmark drivers.

Every benchmark works on the *small* scale of the dataset registry so that a
full ``pytest benchmarks/ --benchmark-only`` run finishes in minutes on a
laptop.  The standalone CLI scripts (``python -m repro.bench.table2`` etc.)
run the same protocols on more and larger cases.
"""

from __future__ import annotations

import pytest

from repro.bench import HarnessConfig
from repro.bench.datasets import build_dataset
from repro.sparsify import GrassConfig, GrassSparsifier
from repro.streams import (
    DynamicScenarioConfig,
    ScenarioConfig,
    build_dynamic_scenario,
    build_scenario,
)

#: Harness configuration used across the benchmark drivers.
BENCH_CONFIG = HarnessConfig(scale="small", seed=0, condition_dense_limit=500)

#: The single representative case used where one graph suffices.
PRIMARY_CASE = "g2_circuit"


@pytest.fixture(scope="session")
def bench_config() -> HarnessConfig:
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def primary_graph():
    """The primary benchmark graph (circuit analogue, ~1300 nodes)."""
    return build_dataset(PRIMARY_CASE, scale="small", seed=0)


@pytest.fixture(scope="session")
def primary_sparsifier(primary_graph):
    """A 10 % off-tree-density GRASS sparsifier of the primary graph."""
    config = GrassConfig(target_offtree_density=0.10, tree_method="shortest_path", seed=0)
    return GrassSparsifier(config).sparsify(primary_graph, evaluate_condition=False).sparsifier


@pytest.fixture(scope="session")
def primary_scenario(primary_graph):
    """The paper's 10-iteration incremental scenario on the primary graph."""
    scenario_config = ScenarioConfig(
        initial_offtree_density=0.10,
        final_offtree_density=0.34,
        num_iterations=10,
        condition_dense_limit=BENCH_CONFIG.condition_dense_limit,
        seed=0,
    )
    return build_scenario(primary_graph, scenario_config)


@pytest.fixture(scope="session")
def churn_scenario(primary_graph):
    """Fully dynamic 10-iteration scenario with >=30% deletions on the primary graph."""
    scenario_config = DynamicScenarioConfig(
        initial_offtree_density=0.10,
        final_offtree_density=0.34,
        num_iterations=10,
        deletion_fraction=0.35,
        condition_dense_limit=BENCH_CONFIG.condition_dense_limit,
        seed=0,
    )
    return build_dynamic_scenario(primary_graph, scenario_config)
