"""Benchmark for incremental LRD hierarchy maintenance (splice vs rebuild).

The fully dynamic path of PR 1 only *degraded* the hierarchy under deletions
(diameter inflation + periodic full re-setups); ``hierarchy_mode="maintain"``
splices and merges clusters in place instead.  These drivers assert the two
headline properties on the shared churn scenario — maintain mode pays zero
full re-setups while rebuild mode pays several, and its end-state condition
number is no worse — and time the maintained pass.  Regenerate the full
comparison with ``python -m repro.bench.churn_maintenance``.
"""

from __future__ import annotations

import pytest

from repro.core import InGrassConfig, InGrassSparsifier, LRDConfig
from repro.graphs import is_connected

#: Rebuild-mode refresh threshold used by the comparison tests; low enough
#: that the 10-iteration churn scenario pays at least one full re-setup.
RESETUP_AFTER = 6


def _config(bench_config, mode: str) -> InGrassConfig:
    return InGrassConfig(
        lrd=LRDConfig(seed=0),
        kappa_guard_factor=1.8,
        kappa_guard_dense_limit=bench_config.condition_dense_limit,
        hierarchy_mode=mode,
        resetup_after_removals=RESETUP_AFTER,
        seed=0,
    )


def _run(scenario, bench_config, mode: str) -> InGrassSparsifier:
    ingrass = InGrassSparsifier(_config(bench_config, mode))
    ingrass.setup(scenario.graph, scenario.initial_sparsifier,
                  target_condition_number=scenario.initial_condition_number)
    for batch in scenario.batches:
        ingrass.update(batch)
    return ingrass


@pytest.mark.smoke
def test_maintained_hierarchy_pays_zero_resetups(churn_scenario, bench_config):
    """Maintain mode never refreshes where rebuild mode must, same stream."""
    maintained = _run(churn_scenario, bench_config, "maintain")
    rebuilt = _run(churn_scenario, bench_config, "rebuild")
    assert maintained.full_resetups == 0
    assert rebuilt.full_resetups >= 1
    # The maintainer genuinely worked the stream (not a silent no-op).
    stats = maintained.maintenance_stats
    assert stats.removals > 0
    assert stats.splices > 0
    # End-state quality: no worse than the rebuild fallback (10% slack).
    dense_limit = bench_config.condition_dense_limit
    kappa_maintained = maintained.condition_number(dense_limit=dense_limit)
    kappa_rebuilt = rebuilt.condition_number(dense_limit=dense_limit)
    assert kappa_maintained <= kappa_rebuilt * 1.10 + 1e-9
    assert is_connected(maintained.sparsifier)


@pytest.mark.smoke
def test_maintained_churn_pass(benchmark, churn_scenario, bench_config):
    """Time the maintained dynamic pass (setup excluded, as in Table I)."""

    def run():
        return _run(churn_scenario, bench_config, "maintain")

    ingrass = benchmark.pedantic(run, iterations=1, rounds=3)
    assert len(ingrass.history) == len(churn_scenario.batches)
    assert ingrass.full_resetups == 0
