"""Benchmark drivers for the sharded removal/churn pipeline.

The CI ``bench-perf`` job gates the full protocol through
``python -m repro.bench.gate`` (the ``sharded-removal`` gate); these drivers
keep a fast ``smoke``-marked slice in the benchmark suite so the pipeline's
oracle parity on a deletion-heavy stream is exercised by ``bench-smoke``
too, and time the sharded execution for local comparisons.
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import get_dataset
from repro.core import InGrassConfig, InGrassSparsifier, LRDConfig
from repro.sparsify.grass import GrassConfig, GrassSparsifier
from repro.streams.scenarios import simulate_event_stream

EVENTS = 1200
BATCHES = 3
DELETION_FRACTION = 0.4


@pytest.fixture(scope="module")
def removal_setup():
    graph = get_dataset("g2_circuit").build(scale="small", seed=0)
    grass = GrassSparsifier(GrassConfig(target_offtree_density=0.10,
                                        tree_method="shortest_path", seed=0))
    sparsifier = grass.sparsify(graph, evaluate_condition=False).sparsifier
    stream = simulate_event_stream(graph, EVENTS, BATCHES,
                                   deletion_fraction=DELETION_FRACTION,
                                   long_range_fraction=0.10, locality_hops=3,
                                   protect_spanning_tree=True, seed=7)
    return graph, sparsifier, stream


def _config(num_shards: int, shard_mode: str = "serial") -> InGrassConfig:
    return InGrassConfig(
        lrd=LRDConfig(seed=0),
        batch_mode="vectorized",
        decision_records="arrays",
        distortion_threshold=1.0,
        hierarchy_mode="maintain",
        num_shards=num_shards,
        shard_mode=shard_mode,
        shard_batch_threshold=0,
        seed=0,
    )


def _run(graph, sparsifier, stream, config):
    driver = InGrassSparsifier.from_config(config)
    driver.setup(graph, sparsifier, target_condition_number=128.0)
    for batch in stream:
        driver.update(batch)
    return driver


@pytest.mark.smoke
def test_sharded_removal_matches_oracle(removal_setup):
    """Bit-exact parity of the full mixed pipeline, 2 shards vs oracle."""
    graph, sparsifier, stream = removal_setup
    oracle = _run(graph, sparsifier, stream, _config(1))
    sharded = _run(graph, sparsifier, stream, _config(2))
    assert dict(sharded.sparsifier._edges) == dict(oracle.sparsifier._edges)
    assert sharded.full_resetups == 0 and oracle.full_resetups == 0


@pytest.mark.smoke
def test_sharded_removal_routes_deletions(removal_setup):
    """Deletion batches report per-shard routing (no silent global fallback)."""
    graph, sparsifier, stream = removal_setup
    driver = _run(graph, sparsifier, stream, _config(2))
    deletions = sum(len(batch.deletions) for batch in stream)
    assert deletions > 0
    assert driver.num_shards == 2


def test_sharded_removal_threaded_timing(benchmark, removal_setup):
    """Time the threaded sharded execution of the mixed stream."""
    graph, sparsifier, stream = removal_setup

    def run():
        return _run(graph, sparsifier, stream, _config(2, "threads"))

    driver = benchmark.pedantic(run, rounds=1, iterations=1)
    assert driver.sparsifier.num_edges > 0
