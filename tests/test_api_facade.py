"""Tests for the ``repro.api`` facade and the unified ``repro`` CLI."""

from __future__ import annotations

import pytest

import repro
import repro.api as api
from repro import cli
from repro.core.incremental import InGrassSparsifier
from repro.core.sharding import ShardedSparsifier


class TestApiFacade:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert hasattr(api, name), f"repro.api.__all__ lists missing {name}"

    def test_top_level_package_exports_service_layer(self):
        for name in ("SparsifierService", "SparsifierSnapshot",
                     "FrozenGraph", "FrozenGraphError"):
            assert name in repro.__all__
            assert hasattr(repro, name)
            assert getattr(repro, name) is getattr(api, name)

    def test_factory_routes_on_config(self):
        assert type(api.Sparsifier(None)) is InGrassSparsifier
        assert type(api.Sparsifier(api.InGrassConfig())) is InGrassSparsifier
        sharded = api.Sparsifier(api.InGrassConfig(num_shards=2))
        assert isinstance(sharded, ShardedSparsifier)

    def test_facade_is_importable_in_one_line(self):
        # The documented quickstart import must keep working verbatim.
        from repro.api import (  # noqa: F401
            InGrassConfig,
            Sparsifier,
            SparsifierService,
            SparsifierSnapshot,
        )

    def test_facade_exports_the_serving_layer(self):
        for name in ("serve", "connect", "ServerConfig", "SparsifierHTTPServer",
                     "SparsifierClient", "ServerRequestError",
                     "ServerBackendUnavailableError"):
            assert name in api.__all__
            assert hasattr(api, name)
        from repro.server import connect, serve

        assert api.serve is serve
        assert api.connect is connect


class TestUnifiedCli:
    def test_bench_list(self, capsys):
        assert cli.main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("gate", "churn", "shard", "soak"):
            assert name in out

    def test_bench_registry_covers_every_bench_module(self):
        import pathlib

        import repro.bench as bench

        bench_dir = pathlib.Path(bench.__file__).parent
        runnable = set()
        for module in bench_dir.glob("*.py"):
            if module.name.startswith("_"):
                continue
            if 'if __name__ == "__main__"' in module.read_text():
                runnable.add(f"repro.bench.{module.stem}")
        assert runnable == set(cli._BENCH_MODULES.values())

    def test_bench_requires_a_name(self, capsys):
        assert cli.main(["bench"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_bench_rejects_unknown_name(self, capsys):
        assert cli.main(["bench", "nonsense"]) == 2
        assert "unknown bench" in capsys.readouterr().err

    def test_bench_gate_list_dispatches(self, capsys):
        assert cli.main(["bench", "gate", "--list"]) == 0
        out = capsys.readouterr().out
        assert "artifact" in out  # gate's own --list output, forwarded intact

    def test_version_flag(self, capsys):
        assert cli.main(["--version"]) == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_no_args_prints_help(self, capsys):
        assert cli.main([]) == 0
        assert "serve-demo" in capsys.readouterr().out

    def test_serve_demo_smoke(self, capsys):
        with pytest.warns(DeprecationWarning, match="repro serve"):
            code = cli.main(["serve-demo", "--side", "6", "--batches", "3",
                             "--readers", "2", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "concurrent queries" in out
        assert "final epoch" in out

    def test_serve_demo_json_artifact_shares_the_gate_schema(self, tmp_path, capsys):
        from repro.bench.serve_latency import LATENCY_SCHEMA

        artifact = tmp_path / "demo.json"
        with pytest.warns(DeprecationWarning):
            code = cli.main(["serve-demo", "--side", "6", "--batches", "2",
                             "--readers", "2", "--seed", "1",
                             "--json", str(artifact)])
        assert code == 0
        capsys.readouterr()
        import json

        payload = json.loads(artifact.read_text())
        assert payload["schema"] == LATENCY_SCHEMA
        assert payload["source"] == "serve-demo"
        latency = payload["latency"]
        assert latency["queries"] > 0
        assert len(latency["readers"]) == 2
        for key in ("p50_ms", "p90_ms", "p99_ms", "max_ms", "mean_ms"):
            assert latency[key] >= 0.0

    def test_serve_subcommand_in_help_and_validates_backend(self, capsys):
        assert cli.main([]) == 0
        assert "HTTP server over a SparsifierService" in capsys.readouterr().out
        # A bad --backend must fail in milliseconds, before any setup work,
        # with the pointer at the [serve] extra.
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["serve", "--backend", "fastapi"])
        assert excinfo.value.code == 2
        assert "repro[serve]" in capsys.readouterr().err

    def test_legacy_shim_warns_with_pointer(self):
        with pytest.warns(DeprecationWarning, match="python -m repro bench gate"):
            cli.warn_legacy_invocation("repro.bench.gate", "bench gate")

    def test_module_entry_point_exists(self):
        import repro.__main__  # noqa: F401  (must import without running)
