"""Unit tests for incremental LRD hierarchy maintenance and its satellites.

Covers the in-place mutation API of :class:`ClusterHierarchy`, the
:class:`HierarchyMaintainer` splice/merge mechanics, the similarity filter's
cluster-rename protocol, the weight-change driver path, the SoA decision
records and the rebuild-mode diameter clamp.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FilterDecisionBatch,
    HierarchyMaintainer,
    InGrassConfig,
    InGrassSparsifier,
    LRDConfig,
    SimilarityFilter,
    cluster_diameter_bound,
    decompose_node_subset,
    lrd_decompose,
    run_local_setup,
    run_setup,
)
from repro.core.hierarchy import ClusterHierarchy, LRDLevel
from repro.graphs import Graph, grid_circuit_2d, is_connected
from repro.spectral import ExactResistanceCalculator
from repro.streams import (
    DeletionEvent,
    InsertionEvent,
    MixedBatch,
    WeightChangeEvent,
    removable_edges,
    weight_change_edges,
)


def _exact_setup(sparsifier: Graph):
    return run_setup(sparsifier, InGrassConfig(lrd=LRDConfig(resistance_method="exact", seed=0)))


class TestHierarchyMutationAPI:
    def _toy(self) -> ClusterHierarchy:
        level0 = LRDLevel(labels=np.array([0, 0, 1, 1, 2, 2]),
                          cluster_diameters=np.array([1.0, 2.0, 3.0]),
                          diameter_threshold=3.0)
        level1 = LRDLevel(labels=np.zeros(6, dtype=np.int64),
                          cluster_diameters=np.array([10.0]), diameter_threshold=10.0)
        return ClusterHierarchy([level0, level1])

    def test_labels_are_embedding_views(self):
        hierarchy = self._toy()
        hierarchy.relabel_nodes(0, np.array([2, 3]), 0)
        # The level's label array and the embedding stay in sync.
        assert hierarchy.level(0).labels.tolist() == [0, 0, 0, 0, 2, 2]
        assert hierarchy.embedding_vector(2).tolist() == [0, 0]
        assert hierarchy.cluster_of(3, 0) == 0

    def test_version_counters(self):
        hierarchy = self._toy()
        assert hierarchy.version == 0
        assert hierarchy.labels_version == 0
        hierarchy.set_cluster_diameter(0, 1, 5.0)
        assert hierarchy.version == 1
        assert hierarchy.labels_version == 0
        hierarchy.relabel_nodes(0, np.array([2]), 0)
        assert hierarchy.labels_version == 1
        assert hierarchy.level_labels_version(0) == 1
        assert hierarchy.level_labels_version(1) == 0

    def test_append_cluster_and_relabel(self):
        hierarchy = self._toy()
        fresh = hierarchy.append_cluster(0, 4.5)
        assert fresh == 3
        hierarchy.relabel_nodes(0, np.array([5]), fresh)
        assert hierarchy.cluster_of(5, 0) == 3
        assert hierarchy.level(0).cluster_diameters[3] == pytest.approx(4.5)
        # Resistance bounds follow the relabel: 4 and 5 no longer share level 0.
        assert hierarchy.first_common_level(4, 5) == 1
        assert hierarchy.resistance_upper_bound(4, 5) == pytest.approx(10.0)

    def test_out_of_range_mutations_raise(self):
        hierarchy = self._toy()
        with pytest.raises(IndexError):
            hierarchy.set_cluster_diameter(0, 7, 1.0)
        with pytest.raises(IndexError):
            hierarchy.relabel_nodes(0, np.array([0]), 9)

    def test_record_removal_bumps_counter_without_diameters(self):
        hierarchy = self._toy()
        before = hierarchy.level(0).cluster_diameters.copy()
        hierarchy.record_removal()
        assert hierarchy.noted_removals == 1
        assert np.array_equal(hierarchy.level(0).cluster_diameters, before)

    def test_note_edge_removed_clamps_at_fallback(self):
        hierarchy = self._toy()
        ceiling = hierarchy.fallback_resistance()
        for _ in range(200):
            hierarchy.note_edge_removed(0, 1, inflation_factor=2.0)
        # Compounding stops at the fallback bound instead of overflowing.
        assert hierarchy.level(0).cluster_diameters[0] <= ceiling * 2.0 + 1e-9
        assert np.isfinite(hierarchy.level(0).cluster_diameters).all()


class TestLocalizedDecomposition:
    def test_path_cut_in_half_splits(self):
        # 0-1-2-3 with the middle edge gone: two fragments, exact diameters.
        graph = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        fragments, diameters = decompose_node_subset(graph, np.arange(4), threshold=10.0)
        assert sorted(tuple(f) for f in fragments) == [(0, 1), (2, 3)]
        assert all(d == pytest.approx(1.0) for d in diameters)

    def test_threshold_splits_connected_cluster(self):
        # A connected path whose total resistance exceeds the threshold must
        # split the way a fresh bounded-diameter contraction would.
        graph = Graph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        fragments, diameters = decompose_node_subset(graph, np.arange(4), threshold=1.5)
        assert len(fragments) >= 2
        for fragment, diameter in zip(fragments, diameters):
            if fragment.shape[0] > 1:
                exact = cluster_diameter_bound(graph, fragment)
                assert diameter == pytest.approx(exact)

    def test_atoms_never_separated(self):
        # Nodes 0,1 form one atom; even though their connecting edge is weak,
        # the re-decomposition must keep them together (nesting invariant).
        graph = Graph(4, [(0, 1, 0.01), (1, 2, 1.0), (2, 3, 1.0)])
        atoms = np.array([7, 7, 8, 9])
        fragments, _ = decompose_node_subset(graph, np.arange(4), threshold=0.5, atoms=atoms)
        for fragment in fragments:
            members = set(fragment.tolist())
            assert not ({0, 1} & members) or {0, 1} <= members

    def test_cluster_diameter_bound_exact_small(self):
        graph = Graph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        # Series resistances: R(0,2) = 1 + 0.5 = 1.5 is the diameter.
        assert cluster_diameter_bound(graph, np.arange(3)) == pytest.approx(1.5)

    def test_cluster_diameter_bound_tree_path_is_upper_bound(self):
        graph = grid_circuit_2d(8, seed=2)
        nodes = np.arange(graph.num_nodes)
        loose = cluster_diameter_bound(graph, nodes, exact_limit=4)
        exact = ExactResistanceCalculator(graph)
        worst = max(exact.resistance(0, q) for q in range(1, graph.num_nodes))
        assert loose >= worst - 1e-9

    def test_disconnected_cluster_raises(self):
        graph = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ValueError):
            cluster_diameter_bound(graph, np.arange(4))

    def test_run_local_setup_wrapper(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        hierarchy = lrd_decompose(sparsifier, LRDConfig(seed=0))
        level_index = min(1, hierarchy.num_levels - 1)
        level = hierarchy.level(level_index)
        cluster = int(np.argmax(np.bincount(level.labels)))
        nodes = np.flatnonzero(level.labels == cluster)
        fragments, diameters = run_local_setup(sparsifier, nodes, level.diameter_threshold,
                                               hierarchy=hierarchy, level_index=level_index)
        assert sum(f.shape[0] for f in fragments) == nodes.shape[0]
        assert len(diameters) == len(fragments)
        assert all(d >= 0.0 for d in diameters)
        if level_index > 0:
            # Nesting: no fragment separates a finer-level cluster.
            finer = hierarchy.level(level_index - 1).labels
            owner: dict = {}
            for index, fragment in enumerate(fragments):
                for node in fragment.tolist():
                    assert owner.setdefault(int(finer[node]), index) == index


class TestHierarchyMaintainer:
    def _setup_pair(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        working = sparsifier.copy()
        setup = _exact_setup(working)
        maintainer = HierarchyMaintainer(setup.hierarchy, working,
                                         lrd_config=LRDConfig(resistance_method="exact", seed=0))
        return working, setup, maintainer

    def test_removal_recomputes_instead_of_inflating(self, grid_with_sparsifier):
        working, setup, maintainer = self._setup_pair(grid_with_sparsifier)
        hierarchy = setup.hierarchy
        # Pick a removable (cycle) sparsifier edge so connectivity survives.
        pair = next(iter(e for e in removable_edges(working, 1, seed=3)))
        level_index = hierarchy.first_common_level(*pair)
        assert level_index is not None
        weight = working.remove_edge(*pair)
        report = maintainer.note_removals([(pair[0], pair[1], weight)])
        assert report.spliced
        assert hierarchy.noted_removals == 1
        assert maintainer.stats.removals == 1
        assert maintainer.stats.diameter_recomputes >= 1

    def test_split_when_cluster_disconnects(self):
        # Two triangles joined by a single bridge-ish edge; decompose with a
        # huge threshold so everything lands in one level-0 cluster, then cut
        # the bridge: the cluster must split into the two triangles.
        edges = [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0),
                 (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0), (2, 3, 1.0)]
        sparsifier = Graph(6, edges)
        config = InGrassConfig(lrd=LRDConfig(resistance_method="exact",
                                             initial_diameter=100.0, seed=0))
        setup = run_setup(sparsifier, config)
        hierarchy = setup.hierarchy
        assert hierarchy.first_common_level(0, 5) == 0
        maintainer = HierarchyMaintainer(hierarchy, sparsifier, lrd_config=config.lrd)
        weight = sparsifier.remove_edge(2, 3)
        report = maintainer.note_removals([(2, 3, weight)])
        assert report.splits >= 1
        # The two triangles no longer share the finest cluster.
        assert hierarchy.cluster_of(0, 0) != hierarchy.cluster_of(5, 0)
        # Nodes within one triangle still do.
        assert hierarchy.cluster_of(0, 0) == hierarchy.cluster_of(1, 0)
        assert hierarchy.cluster_of(3, 0) == hierarchy.cluster_of(5, 0)

    def test_nesting_preserved_under_churn(self, grid_with_sparsifier):
        working, setup, maintainer = self._setup_pair(grid_with_sparsifier)
        hierarchy = setup.hierarchy
        for seed in range(3):
            pairs = [e for e in removable_edges(working, 3, seed=seed)]
            removed = []
            for u, v in pairs:
                removed.append((u, v, working.remove_edge(u, v)))
            maintainer.note_removals(removed)
        for fine, coarse in zip(hierarchy.levels, hierarchy.levels[1:]):
            mapping = {}
            for node in range(hierarchy.num_nodes):
                fine_label = int(fine.labels[node])
                coarse_label = int(coarse.labels[node])
                assert mapping.setdefault(fine_label, coarse_label) == coarse_label

    def test_merge_on_insertion(self):
        # Two 2-cliques at level 0; adding a heavy edge between them lets the
        # maintainer fuse the clusters (merged diameter fits the threshold).
        sparsifier = Graph(4, [(0, 1, 10.0), (2, 3, 10.0), (1, 2, 0.001)])
        config = InGrassConfig(lrd=LRDConfig(resistance_method="exact",
                                             initial_diameter=0.5, seed=0))
        setup = run_setup(sparsifier, config)
        hierarchy = setup.hierarchy
        assert hierarchy.cluster_of(1, 0) != hierarchy.cluster_of(2, 0)
        maintainer = HierarchyMaintainer(hierarchy, sparsifier, lrd_config=config.lrd)
        sparsifier.add_edge(1, 2, 100.0, merge="add")
        merges = maintainer.note_insertions([(1, 2, 100.0)])
        assert merges >= 1
        assert hierarchy.cluster_of(1, 0) == hierarchy.cluster_of(2, 0)

    def test_merge_respects_threshold(self):
        # The joining edge is too weak: merged diameter exceeds the level
        # threshold, so the clusters stay apart.
        sparsifier = Graph(4, [(0, 1, 10.0), (2, 3, 10.0), (1, 2, 0.001)])
        config = InGrassConfig(lrd=LRDConfig(resistance_method="exact",
                                             initial_diameter=0.5, seed=0))
        setup = run_setup(sparsifier, config)
        hierarchy = setup.hierarchy
        maintainer = HierarchyMaintainer(hierarchy, sparsifier, lrd_config=config.lrd)
        merges = maintainer.note_insertions([(1, 2, 0.001)])
        assert merges == 0
        assert hierarchy.cluster_of(1, 0) != hierarchy.cluster_of(2, 0)

    def test_invalid_exact_limit(self, grid_with_sparsifier):
        working, setup, _ = self._setup_pair(grid_with_sparsifier)
        with pytest.raises(ValueError):
            HierarchyMaintainer(setup.hierarchy, working, exact_limit=1)


class TestFilterRenameProtocol:
    def _build(self, grid_with_sparsifier, level=0):
        _, sparsifier = grid_with_sparsifier
        working = sparsifier.copy()
        setup = _exact_setup(working)
        similarity_filter = SimilarityFilter(working, setup.hierarchy, level)
        return working, setup, similarity_filter

    def test_rekeyed_map_matches_rebuild(self, grid_with_sparsifier):
        working, setup, similarity_filter = self._build(grid_with_sparsifier)
        maintainer = HierarchyMaintainer(setup.hierarchy, working,
                                         lrd_config=LRDConfig(resistance_method="exact", seed=0))
        for seed in range(3):
            pairs = removable_edges(working, 2, seed=seed)
            removed = []
            for u, v in pairs:
                removed.append((u, v, working.remove_edge(u, v)))
                similarity_filter.notify_edge_removed(u, v)
            maintainer.note_removals(removed, similarity_filter=similarity_filter)
        assert similarity_filter.in_sync_with_hierarchy()
        rebuilt = SimilarityFilter(working, setup.hierarchy, similarity_filter.filtering_level)
        assert similarity_filter._connectivity == rebuilt._connectivity
        assert dict(similarity_filter._intra_cluster_edges) == dict(rebuilt._intra_cluster_edges)

    def test_out_of_band_relabel_detected_and_resynced(self, grid_with_sparsifier):
        working, setup, similarity_filter = self._build(grid_with_sparsifier)
        hierarchy = setup.hierarchy
        level = similarity_filter.filtering_level
        labels = hierarchy.level(level).labels
        cluster = int(labels[0])
        nodes = np.flatnonzero(labels == cluster)
        fresh = hierarchy.append_cluster(level, 1.0)
        hierarchy.relabel_nodes(level, nodes, fresh)
        assert not similarity_filter.in_sync_with_hierarchy()
        similarity_filter.resync()
        assert similarity_filter.in_sync_with_hierarchy()
        rebuilt = SimilarityFilter(working, hierarchy, level)
        assert similarity_filter._connectivity == rebuilt._connectivity

    def test_unregister_register_roundtrip(self, grid_with_sparsifier):
        working, _, similarity_filter = self._build(grid_with_sparsifier)
        snapshot = {pair: dict(bucket) for pair, bucket in similarity_filter._connectivity.items()}
        nodes = np.arange(10)
        pending = similarity_filter.unregister_incident_edges(nodes)
        assert pending
        similarity_filter.register_edges(pending)
        assert similarity_filter._connectivity == snapshot


class TestWeightChangePath:
    def test_event_and_batch_plumbing(self):
        event = WeightChangeEvent(5, 2, 0.25)
        assert event.edge == (2, 5, 0.25)
        batch = MixedBatch.from_events([
            DeletionEvent(0, 1), WeightChangeEvent(2, 3, 1.0), InsertionEvent(4, 5, 2.0),
        ])
        assert batch.deletions == [(0, 1)]
        assert batch.weight_changes == [(2, 3, 1.0)]
        assert batch.insertions == [(4, 5, 2.0)]
        assert batch.num_events == 3
        kinds = [type(e).__name__ for e in batch.events()]
        assert kinds == ["DeletionEvent", "WeightChangeEvent", "InsertionEvent"]

    def test_from_events_rejects_reweight_after_delete(self):
        with pytest.raises(ValueError):
            MixedBatch.from_events([DeletionEvent(0, 1), WeightChangeEvent(0, 1, 1.0)])
        with pytest.raises(ValueError):
            MixedBatch.from_events([InsertionEvent(0, 1, 1.0), WeightChangeEvent(0, 1, 1.0)])

    def test_from_events_rejects_delete_after_reweight(self):
        # The batch order (deletions first) would silently reorder this into
        # a mid-batch crash — it must be rejected up front.
        with pytest.raises(ValueError):
            MixedBatch.from_events([WeightChangeEvent(1, 2, 0.5), DeletionEvent(1, 2)])

    def test_weight_change_edges_sampler(self, medium_grid):
        changes = weight_change_edges(medium_grid, 12, seed=5)
        assert len(changes) == 12
        seen = set()
        for u, v, delta in changes:
            assert medium_grid.has_edge(u, v)
            assert delta > 0
            assert (u, v) not in seen
            seen.add((u, v))

    def test_driver_reweight_no_round_trip(self, medium_grid):
        ingrass = InGrassSparsifier(InGrassConfig(seed=0))
        ingrass.setup(medium_grid, target_condition_number=64.0)
        kappa_before = ingrass.condition_number(dense_limit=400)
        changes = weight_change_edges(ingrass.graph, 15, seed=7)
        expected = {(u, v): ingrass.graph.weight(u, v) + d for u, v, d in changes}
        result = ingrass.reweight(changes)
        assert result.direct + result.reassigned + result.admitted == 15
        for (u, v), weight in expected.items():
            assert ingrass.graph.weight(u, v) == pytest.approx(weight)
        # Reinforcing existing wires cannot degrade the sparsifier's quality
        # guarantees: the sparsifier still supports the graph and κ stays sane.
        assert is_connected(ingrass.sparsifier)
        for u, v in ingrass.sparsifier.edges():
            assert ingrass.graph.has_edge(u, v)
        assert ingrass.condition_number(dense_limit=400) <= 2.0 * kappa_before
        assert ingrass.history[-1].reweighted_edges == 15

    def test_mixed_batch_with_weight_changes(self, medium_grid):
        ingrass = InGrassSparsifier(InGrassConfig(seed=0, hierarchy_mode="maintain"))
        ingrass.setup(medium_grid, target_condition_number=64.0)
        deletions = [e for e in removable_edges(ingrass.graph, 2, seed=1)]
        protect = set(deletions)
        changes = [c for c in weight_change_edges(ingrass.graph, 8, seed=2)
                   if (c[0], c[1]) not in protect]
        from repro.streams import random_pair_edges

        insertions = random_pair_edges(ingrass.graph, 3, seed=3)
        batch = MixedBatch(insertions=insertions, deletions=deletions,
                           weight_changes=changes)
        result = ingrass.update(batch)
        assert result.reweight is not None
        assert len(result.reweight.applied) == len(changes)
        assert ingrass.history[-1].reweighted_edges == len(changes)
        assert is_connected(ingrass.sparsifier)

    def test_reweight_rejects_missing_edge_and_bad_delta(self, medium_grid):
        from repro.graphs.validation import GraphValidationError

        ingrass = InGrassSparsifier(InGrassConfig(seed=0))
        ingrass.setup(medium_grid, target_condition_number=64.0)
        missing = None
        n = medium_grid.num_nodes
        for u in range(n):
            for v in range(u + 1, n):
                if not medium_grid.has_edge(u, v):
                    missing = (u, v)
                    break
            if missing:
                break
        with pytest.raises(GraphValidationError):
            ingrass.reweight([(missing[0], missing[1], 1.0)])
        edge = next(iter(medium_grid.edges()))
        with pytest.raises(GraphValidationError):
            ingrass.reweight([(edge[0], edge[1], -1.0)])


class TestDecisionRecordArrays:
    def test_arrays_match_objects(self, medium_grid):
        from repro.core.setup import run_setup as _run_setup
        from repro.core.update import run_update
        from repro.sparsify import GrassConfig, GrassSparsifier
        from repro.streams import mixed_edges

        sparsifier = GrassSparsifier(GrassConfig(target_offtree_density=0.2, seed=1)).sparsify(
            medium_grid, evaluate_condition=False).sparsifier
        stream = mixed_edges(medium_grid, 200, seed=11)
        outcomes = {}
        for records in ("objects", "arrays"):
            working = sparsifier.copy()
            config = InGrassConfig(lrd=LRDConfig(seed=0), batch_mode="vectorized",
                                   decision_records=records,
                                   distortion_threshold=0.25, seed=0)
            setup = _run_setup(working, config)
            result = run_update(working, setup, stream, config, target_condition_number=32.0)
            outcomes[records] = (result, set(working.edges()))
        objects_result, objects_edges = outcomes["objects"]
        arrays_result, arrays_edges = outcomes["arrays"]
        assert isinstance(arrays_result.decisions, FilterDecisionBatch)
        assert objects_edges == arrays_edges
        assert objects_result.summary == arrays_result.summary
        materialised = list(arrays_result.decisions)
        assert materialised == objects_result.decisions
        assert arrays_result.decisions.action_counts().added == objects_result.summary.added
        assert sorted(arrays_result.added_edges) == sorted(objects_result.added_edges)

    def test_batch_indexing(self):
        batch = FilterDecisionBatch.empty(2)
        assert len(batch) == 2
        assert batch[1].action is not None
        assert batch[-1] == batch.decision(1)
        with pytest.raises(IndexError):
            batch[2]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            InGrassConfig(decision_records="bogus")
        with pytest.raises(ValueError):
            InGrassConfig(hierarchy_mode="bogus")
        with pytest.raises(ValueError):
            InGrassConfig(maintenance_exact_limit=1)


class TestDriverModes:
    def test_maintain_mode_skips_resetups(self, medium_grid):
        results = {}
        for mode in ("rebuild", "maintain"):
            ingrass = InGrassSparsifier(
                InGrassConfig(seed=0, hierarchy_mode=mode, resetup_after_removals=2))
            ingrass.setup(medium_grid, target_condition_number=64.0)
            removed = 0
            for seed in range(8):
                pairs = [edge for edge in removable_edges(ingrass.graph, 4, seed=seed)
                         if ingrass.sparsifier.has_edge(*edge)][:2]
                if not pairs:
                    continue
                ingrass.remove(pairs)
                removed += len(pairs)
                if removed >= 4:
                    break
            results[mode] = ingrass
        assert results["rebuild"].full_resetups >= 1
        assert results["maintain"].full_resetups == 0
        assert results["maintain"].maintenance_stats.removals > 0
        assert results["maintain"].maintainer is not None
        assert results["rebuild"].maintainer is None

    def test_refresh_rebuilds_maintainer(self, medium_grid):
        ingrass = InGrassSparsifier(InGrassConfig(seed=0, hierarchy_mode="maintain"))
        ingrass.setup(medium_grid, target_condition_number=64.0)
        pairs = [edge for edge in removable_edges(ingrass.graph, 4, seed=0)
                 if ingrass.sparsifier.has_edge(*edge)][:1]
        assert pairs, "expected a removable sparsifier edge"
        ingrass.remove(pairs)
        first = ingrass.maintainer
        assert first is not None
        ingrass.refresh_setup()
        assert ingrass.full_resetups == 1
        assert ingrass.resetup_seconds > 0.0
        ingrass.remove([edge for edge in removable_edges(ingrass.graph, 4, seed=1)
                        if ingrass.sparsifier.has_edge(*edge)][:1])
        assert ingrass.maintainer is not first
