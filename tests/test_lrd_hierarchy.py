"""Tests for the LRD decomposition, cluster hierarchy and resistance embedding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LRDConfig, ResistanceEmbedding, lrd_decompose
from repro.core.hierarchy import ClusterHierarchy, LRDLevel
from repro.graphs import Graph, grid_circuit_2d
from repro.spectral import ExactResistanceCalculator


class TestLRDDecomposition:
    def test_levels_cover_all_nodes(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        hierarchy = lrd_decompose(sparsifier, LRDConfig(seed=0))
        for level in hierarchy.levels:
            assert level.labels.shape == (sparsifier.num_nodes,)
            assert level.num_clusters == int(level.labels.max()) + 1

    def test_cluster_count_decreases(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        hierarchy = lrd_decompose(sparsifier, LRDConfig(seed=0))
        counts = [level.num_clusters for level in hierarchy.levels]
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        assert counts[-1] == 1  # topped with a single-cluster level

    def test_clusters_are_nested(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        hierarchy = lrd_decompose(sparsifier, LRDConfig(seed=0))
        for fine, coarse in zip(hierarchy.levels, hierarchy.levels[1:]):
            # Two nodes sharing a fine cluster must share a coarse cluster.
            mapping = {}
            for node in range(sparsifier.num_nodes):
                fine_label = int(fine.labels[node])
                coarse_label = int(coarse.labels[node])
                if fine_label in mapping:
                    assert mapping[fine_label] == coarse_label
                else:
                    mapping[fine_label] = coarse_label

    def test_num_levels_logarithmic(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        hierarchy = lrd_decompose(sparsifier, LRDConfig(seed=0))
        assert hierarchy.num_levels <= 4 * int(np.ceil(np.log2(sparsifier.num_nodes))) + 2

    def test_diameters_monotone_per_node(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        hierarchy = lrd_decompose(sparsifier, LRDConfig(seed=0))
        for node in [0, 5, 17]:
            diameters = []
            for level in hierarchy.levels:
                cluster = int(level.labels[node])
                diameters.append(float(level.cluster_diameters[cluster]))
            assert all(a <= b + 1e-9 for a, b in zip(diameters, diameters[1:]))

    def test_cluster_diameter_bounds_exact_resistance(self, grid_with_sparsifier, rng):
        """The recorded cluster diameter tracks (and mostly bounds) exact
        intra-cluster resistances.

        The accumulated diameter is computed from resistances measured on the
        *contracted* graph of each level, which Rayleigh-monotonicity makes a
        slight underestimate of the original resistances; a 30 % slack absorbs
        that approximation.
        """
        _, sparsifier = grid_with_sparsifier
        hierarchy = lrd_decompose(sparsifier, LRDConfig(resistance_method="exact", seed=0))
        calculator = ExactResistanceCalculator(sparsifier)
        level = hierarchy.levels[min(2, hierarchy.num_levels - 1)]
        checked = 0
        for cluster in range(level.num_clusters):
            members = level.nodes_in_cluster(cluster)
            if len(members) < 2 or checked > 20:
                continue
            p, q = int(members[0]), int(members[-1])
            assert calculator.resistance(p, q) <= 1.3 * float(level.cluster_diameters[cluster]) + 1e-6
            checked += 1
        assert checked > 0

    def test_single_node_graph(self):
        hierarchy = lrd_decompose(Graph(1))
        assert hierarchy.num_levels == 1
        assert hierarchy.num_nodes == 1

    def test_edgeless_graph(self):
        hierarchy = lrd_decompose(Graph(4))
        assert hierarchy.num_nodes == 4

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            lrd_decompose(Graph(0))

    def test_resistance_methods_agree_on_structure(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        for method in ("exact", "jl", "krylov"):
            hierarchy = lrd_decompose(sparsifier, LRDConfig(resistance_method=method, seed=0))
            assert hierarchy.levels[-1].num_clusters == 1

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LRDConfig(growth_factor=1.0)
        with pytest.raises(ValueError):
            LRDConfig(resistance_method="bogus")
        with pytest.raises(ValueError):
            LRDConfig(initial_diameter=-1.0)


class TestClusterHierarchy:
    def _toy_hierarchy(self) -> ClusterHierarchy:
        # 6 nodes, 2 levels: {0,1},{2,3},{4,5} then all together.
        level0 = LRDLevel(labels=np.array([0, 0, 1, 1, 2, 2]), cluster_diameters=np.array([1.0, 2.0, 3.0]),
                          diameter_threshold=3.0)
        level1 = LRDLevel(labels=np.zeros(6, dtype=np.int64), cluster_diameters=np.array([10.0]),
                          diameter_threshold=10.0)
        return ClusterHierarchy([level0, level1])

    def test_embedding_vectors(self):
        hierarchy = self._toy_hierarchy()
        assert hierarchy.num_levels == 2
        assert np.array_equal(hierarchy.embedding_vector(2), [1, 0])
        assert hierarchy.embedding_matrix().shape == (6, 2)
        assert hierarchy.cluster_of(4, 0) == 2

    def test_first_common_level(self):
        hierarchy = self._toy_hierarchy()
        assert hierarchy.first_common_level(0, 1) == 0
        assert hierarchy.first_common_level(0, 2) == 1
        levels = hierarchy.first_common_levels(np.array([0, 0]), np.array([1, 2]))
        assert levels.tolist() == [0, 1]

    def test_resistance_upper_bound(self):
        hierarchy = self._toy_hierarchy()
        assert hierarchy.resistance_upper_bound(0, 1) == pytest.approx(1.0)
        assert hierarchy.resistance_upper_bound(2, 3) == pytest.approx(2.0)
        assert hierarchy.resistance_upper_bound(0, 5) == pytest.approx(10.0)
        assert hierarchy.resistance_upper_bound(3, 3) == 0.0
        bounds = hierarchy.resistance_upper_bounds([(0, 1), (0, 5)])
        assert np.allclose(bounds, [1.0, 10.0])

    def test_filtering_level_selection(self):
        hierarchy = self._toy_hierarchy()
        # C/2 = 2 -> level 0 (clusters of 2 nodes); C/2 = 10 -> level 1.
        assert hierarchy.filtering_level_for_condition(4.0) == 0
        assert hierarchy.filtering_level_for_condition(20.0) == 1
        # Even when the finest level violates the bound, level 0 is returned.
        assert hierarchy.filtering_level_for_condition(1.0) == 0
        with pytest.raises(ValueError):
            hierarchy.filtering_level_for_condition(-1.0)
        with pytest.raises(ValueError):
            hierarchy.filtering_level_for_condition(4.0, size_divisor=0.0)

    def test_size_divisor_changes_level(self):
        hierarchy = self._toy_hierarchy()
        assert hierarchy.filtering_level_for_condition(20.0, size_divisor=2.0) == 1
        assert hierarchy.filtering_level_for_condition(20.0, size_divisor=8.0) == 0

    def test_summary(self):
        rows = self._toy_hierarchy().summary()
        assert len(rows) == 2
        assert rows[0]["num_clusters"] == 3
        assert rows[1]["max_cluster_size"] == 6

    def test_rejects_inconsistent_levels(self):
        level0 = LRDLevel(labels=np.zeros(3, dtype=np.int64), cluster_diameters=np.zeros(1), diameter_threshold=1.0)
        level1 = LRDLevel(labels=np.zeros(4, dtype=np.int64), cluster_diameters=np.zeros(1), diameter_threshold=1.0)
        with pytest.raises(ValueError):
            ClusterHierarchy([level0, level1])
        with pytest.raises(ValueError):
            ClusterHierarchy([])


class TestResistanceEmbedding:
    def test_dimension_matches_levels(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        hierarchy = lrd_decompose(sparsifier, LRDConfig(seed=0))
        embedding = ResistanceEmbedding(hierarchy)
        assert embedding.dimension == hierarchy.num_levels
        assert embedding.vectors().shape == (sparsifier.num_nodes, hierarchy.num_levels)
        assert embedding.vector(0).shape == (hierarchy.num_levels,)

    def test_estimates_are_upper_bounds_with_exact_lrd(self, grid_with_sparsifier, rng):
        graph, sparsifier = grid_with_sparsifier
        hierarchy = lrd_decompose(sparsifier, LRDConfig(resistance_method="exact", seed=0))
        embedding = ResistanceEmbedding(hierarchy)
        pairs = [tuple(rng.choice(sparsifier.num_nodes, 2, replace=False)) for _ in range(40)]
        stats = embedding.compare_with_exact(sparsifier, pairs)
        # The cluster-diameter estimate should bound most pairs from above and
        # be positively correlated with the exact resistance (it is only an
        # approximate bound: level resistances are measured on contracted
        # graphs, which slightly underestimates).
        assert stats.fraction_upper_bound > 0.7
        assert stats.spearman_correlation > 0.3
        assert stats.mean_ratio >= 0.9

    def test_estimate_single_pair(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        embedding = ResistanceEmbedding(lrd_decompose(sparsifier, LRDConfig(seed=0)))
        assert embedding.estimate_resistance(0, 0) == 0.0
        assert embedding.estimate_resistance(0, sparsifier.num_nodes - 1) > 0.0

    def test_compare_with_exact_requires_pairs(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        embedding = ResistanceEmbedding(lrd_decompose(sparsifier, LRDConfig(seed=0)))
        with pytest.raises(ValueError):
            embedding.compare_with_exact(sparsifier, [(3, 3)])


class TestLRDProperties:
    @given(st.integers(min_value=6, max_value=12), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_decomposition_invariants(self, size, seed):
        graph = grid_circuit_2d(size, seed=seed)
        hierarchy = lrd_decompose(graph, LRDConfig(seed=seed))
        assert hierarchy.num_nodes == graph.num_nodes
        assert hierarchy.levels[-1].num_clusters == 1
        # Labels are compact at every level.
        for level in hierarchy.levels:
            labels = np.unique(level.labels)
            assert labels.min() == 0
            assert labels.max() == level.num_clusters - 1
        # Diameter thresholds grow monotonically.
        thresholds = [level.diameter_threshold for level in hierarchy.levels[:-1]]
        assert all(a <= b + 1e-12 for a, b in zip(thresholds, thresholds[1:]))
