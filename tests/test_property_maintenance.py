"""Property-based tests (hypothesis) for incremental hierarchy maintenance.

For arbitrary random churn streams, ``hierarchy_mode="maintain"`` must uphold
the contracts the update phase relies on:

* the maintained hierarchy's resistance upper bounds keep tracking the exact
  resistances of the evolving sparsifier from above (same tolerance the
  fresh-setup embedding tests use — the LRD diameters are measured on
  contracted graphs, which can undershoot slightly);
* the hierarchy structure stays a valid nested partition stack (the
  ``first_common_level`` logic silently depends on it);
* the incrementally re-keyed similarity-filter connectivity map is
  bit-identical to one rebuilt from scratch against the same hierarchy and
  sparsifier, and therefore the *next batch's filter decisions* match the
  rebuilt-oracle decisions exactly;
* the full driver protocol (connectivity, support, deletions honoured)
  holds in maintain mode just as the PR 1 suite asserts for rebuild mode.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import InGrassConfig, InGrassSparsifier, LRDConfig, SimilarityFilter
from repro.core.distortion import estimate_distortions, sort_by_distortion
from repro.graphs import grid_circuit_2d, is_connected
from repro.spectral import ExactResistanceCalculator
from repro.streams import DynamicScenarioConfig, build_dynamic_scenario, random_pair_edges

DENSE_LIMIT = 300

#: Same slack the fresh-setup embedding tests grant: level resistances are
#: measured on contracted graphs, which slightly underestimates.
BOUND_SLACK = 1.3

churn_params = st.fixed_dictionaries(
    {
        "side": st.integers(min_value=6, max_value=9),
        "graph_seed": st.integers(min_value=0, max_value=2**16),
        "stream_seed": st.integers(min_value=0, max_value=2**16),
        "deletion_fraction": st.floats(min_value=0.2, max_value=0.7),
        "num_iterations": st.integers(min_value=4, max_value=7),
    }
)


def _run_maintained_churn(params, *, guard: bool = False):
    graph = grid_circuit_2d(params["side"], seed=params["graph_seed"])
    scenario = build_dynamic_scenario(
        graph,
        DynamicScenarioConfig(
            deletion_fraction=params["deletion_fraction"],
            num_iterations=params["num_iterations"],
            condition_dense_limit=DENSE_LIMIT,
            seed=params["stream_seed"],
        ),
    )
    config = InGrassConfig(
        seed=0,
        hierarchy_mode="maintain",
        lrd=LRDConfig(resistance_method="exact", seed=0),
        kappa_guard_factor=1.8 if guard else None,
        kappa_guard_dense_limit=DENSE_LIMIT,
    )
    ingrass = InGrassSparsifier(config)
    ingrass.setup(scenario.graph, scenario.initial_sparsifier,
                  target_condition_number=scenario.initial_condition_number)
    return scenario, ingrass


@settings(max_examples=8, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(params=churn_params)
def test_maintained_bounds_track_exact_resistances(params):
    scenario, ingrass = _run_maintained_churn(params)
    rng = np.random.default_rng(params["stream_seed"])
    for batch in scenario.batches:
        ingrass.update(batch)
    assert ingrass.full_resetups == 0
    hierarchy = ingrass.setup_result.hierarchy
    calculator = ExactResistanceCalculator(ingrass.sparsifier)
    n = ingrass.sparsifier.num_nodes
    upper = 0
    total = 0
    for _ in range(120):
        p, q = (int(x) for x in rng.choice(n, 2, replace=False))
        bound = hierarchy.resistance_upper_bound(p, q)
        exact = calculator.resistance(p, q)
        total += 1
        # Hard contract: bounds never undershoot beyond the contraction slack.
        assert bound * BOUND_SLACK + 1e-9 >= exact
        if bound + 1e-9 >= exact:
            upper += 1
    # Statistical contract: the overwhelming majority are genuine upper bounds.
    assert upper / total > 0.9


@settings(max_examples=8, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(params=churn_params)
def test_maintained_hierarchy_stays_nested(params):
    scenario, ingrass = _run_maintained_churn(params)
    hierarchy = ingrass.setup_result.hierarchy
    for batch in scenario.batches:
        ingrass.update(batch)
        # Nested partitions: a fine cluster maps into exactly one coarse one.
        for fine, coarse in zip(hierarchy.levels, hierarchy.levels[1:]):
            mapping: dict = {}
            for node in range(hierarchy.num_nodes):
                fine_label = int(fine.labels[node])
                coarse_label = int(coarse.labels[node])
                assert mapping.setdefault(fine_label, coarse_label) == coarse_label
        # Every diameter stays finite and non-negative.
        for level in hierarchy.levels:
            assert np.isfinite(level.cluster_diameters).all()
            assert (level.cluster_diameters >= 0.0).all()
        # The coarsest level still holds everything together (the sparsifier
        # is reconnected before splices, so the top cluster never splits).
        top = hierarchy.levels[-1]
        assert np.unique(top.labels).shape[0] == 1


@settings(max_examples=6, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(params=churn_params)
def test_filter_decisions_match_rebuilt_oracle(params):
    """After any churn prefix, the incrementally maintained filter equals a
    freshly built one — map and next-batch decisions alike."""
    scenario, ingrass = _run_maintained_churn(params)
    for batch in scenario.batches:
        ingrass.update(batch)
        live_filter = ingrass._ensure_filter()
        assert live_filter.in_sync_with_hierarchy()
        oracle = SimilarityFilter(ingrass.sparsifier, ingrass.setup_result.hierarchy,
                                  live_filter.filtering_level)
        assert live_filter._connectivity == oracle._connectivity
        assert dict(live_filter._intra_cluster_edges) == dict(oracle._intra_cluster_edges)
    # Decision oracle: score one more probe batch through both filters
    # against copies, and demand identical decisions.
    probe = random_pair_edges(ingrass.graph, 12, seed=params["stream_seed"] + 1)
    estimates = sort_by_distortion(
        estimate_distortions(ingrass.setup_result.embedding, probe))
    live_filter = ingrass._ensure_filter()
    sparsifier_a = ingrass.sparsifier.copy()
    sparsifier_b = ingrass.sparsifier.copy()
    incremental = SimilarityFilter(sparsifier_a, ingrass.setup_result.hierarchy,
                                   live_filter.filtering_level)
    incremental._connectivity = {pair: dict(bucket)
                                 for pair, bucket in live_filter._connectivity.items()}
    oracle = SimilarityFilter(sparsifier_b, ingrass.setup_result.hierarchy,
                              live_filter.filtering_level)
    decisions_a, summary_a = incremental.apply(estimates)
    decisions_b, summary_b = oracle.apply(estimates)
    assert summary_a == summary_b
    assert [(d.edge, d.action, d.target_edge, d.cluster_pair) for d in decisions_a] == \
           [(d.edge, d.action, d.target_edge, d.cluster_pair) for d in decisions_b]


@settings(max_examples=6, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(params=churn_params)
def test_maintain_mode_upholds_driver_invariants(params):
    scenario, ingrass = _run_maintained_churn(params, guard=True)
    target = scenario.initial_condition_number
    for batch in scenario.batches:
        result = ingrass.update(batch)
        sparsifier = ingrass.sparsifier
        graph = ingrass.graph
        assert is_connected(sparsifier)
        for u, v in sparsifier.edges():
            assert graph.has_edge(u, v)
        for u, v in batch.deletions:
            assert not sparsifier.has_edge(u, v)
        guard = getattr(result, "kappa_guard", None)
        if guard is not None and guard.satisfied:
            assert guard.kappa_after <= 1.8 * target * (1 + 1e-9)
    assert ingrass.full_resetups == 0
    assert ingrass.condition_number(dense_limit=DENSE_LIMIT) <= 2.0 * target
