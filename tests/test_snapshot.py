"""Tests for FrozenGraph and the epoch-snapshot read layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InGrassConfig, InGrassSparsifier
from repro.core.hierarchy import ClusterHierarchy, LRDLevel
from repro.graphs import FrozenGraph, FrozenGraphError, Graph, grid_circuit_2d
from repro.snapshot import SparsifierSnapshot
from repro.spectral import effective_resistance
from repro.streams import DynamicScenarioConfig, build_churn_scenario


@pytest.fixture()
def churn_driver():
    """A driver set up on a small grid plus a ready-made churn stream."""
    graph = grid_circuit_2d(8, seed=3)
    scenario = build_churn_scenario(
        graph, DynamicScenarioConfig(num_iterations=4, seed=3))
    driver = InGrassSparsifier(InGrassConfig(seed=3))
    driver.setup(scenario.graph, scenario.initial_sparsifier,
                 target_condition_number=scenario.initial_condition_number)
    return driver, scenario


class TestFrozenGraph:
    def _frozen(self) -> FrozenGraph:
        return FrozenGraph(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.5)])

    def test_reads_work(self):
        frozen = self._frozen()
        assert frozen.num_edges == 3
        assert frozen.weight(1, 2) == 2.0
        assert frozen.has_edge(0, 1)

    @pytest.mark.parametrize("mutate", [
        lambda g: g.add_edge(0, 3, 1.0),
        lambda g: g.add_edges([(0, 3, 1.0)]),
        lambda g: g.add_edge_unchecked(0, 3, 1.0),
        lambda g: g.remove_edge(0, 1),
        lambda g: g.remove_edges([(0, 1)]),
        lambda g: g.set_weight(0, 1, 9.0),
        lambda g: g.scale_weight(0, 1, 2.0),
        lambda g: g.increase_weight(0, 1, 1.0),
        lambda g: g.increase_weights([(0, 1)], np.array([1.0])),
    ])
    def test_every_mutator_raises(self, mutate):
        frozen = self._frozen()
        with pytest.raises(FrozenGraphError):
            mutate(frozen)
        # The failed mutation must not have leaked through.
        assert frozen.num_edges == 3
        assert frozen.weight(0, 1) == 1.0

    def test_copy_returns_mutable_graph(self):
        frozen = self._frozen()
        clone = frozen.copy()
        assert type(clone) is Graph
        clone.add_edge(0, 3, 1.0)
        assert clone.num_edges == 4
        assert frozen.num_edges == 3

    def test_from_arrays_marks_buffers_readonly(self):
        graph = grid_circuit_2d(4, seed=0)
        us, vs, ws = graph.edge_arrays()
        frozen = FrozenGraph.from_arrays(graph.num_nodes, us, vs, ws)
        assert frozen.num_edges == graph.num_edges
        fus, fvs, fws = frozen.edge_arrays()
        assert np.shares_memory(fus, us)
        assert not fws.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            fws[0] = 99.0


class TestSnapshotCapture:
    def test_capture_requires_setup(self):
        driver = InGrassSparsifier(InGrassConfig())
        with pytest.raises(RuntimeError):
            SparsifierSnapshot.capture(driver)

    def test_capture_shares_edge_buffers(self, churn_driver):
        driver, _ = churn_driver
        snap = driver.snapshot()
        for mine, live in zip(snap.graph_arrays(), driver.graph.edge_arrays()):
            assert np.shares_memory(mine, live)
        for mine, live in zip(snap.sparsifier_arrays(),
                              driver.sparsifier.edge_arrays()):
            assert np.shares_memory(mine, live)

    def test_snapshot_is_anchored_to_version(self, churn_driver):
        driver, scenario = churn_driver
        snap = driver.snapshot()
        assert snap.version == driver.latest_version == 1
        driver.update(scenario.batches[0])
        assert driver.latest_version > snap.version
        assert driver.snapshot().version == driver.latest_version

    def test_hierarchy_state_matches_capture_epoch(self, churn_driver):
        driver, _ = churn_driver
        hierarchy = driver.setup_result.hierarchy
        snap = driver.snapshot()
        state = snap.hierarchy_state
        assert state.version == hierarchy.version
        assert state.labels_version == hierarchy.labels_version
        assert state.num_levels == hierarchy.num_levels
        assert not state.embedding.flags.writeable
        np.testing.assert_array_equal(state.level_labels(0),
                                      hierarchy.level(0).labels)

    def test_config_is_pinned(self, churn_driver):
        driver, _ = churn_driver
        snap = driver.snapshot()
        assert snap.filtering_level == driver._resolved_config().filtering_level
        assert snap.target_condition_number == driver.target_condition_number


class TestSnapshotQueries:
    def test_effective_resistance_matches_ground_truth(self, churn_driver):
        driver, _ = churn_driver
        snap = driver.snapshot()
        for u, v in [(0, 1), (0, 63), (10, 42)]:
            exact = effective_resistance(driver.sparsifier, u, v)
            assert snap.effective_resistance(u, v) == pytest.approx(exact, rel=1e-9)
            exact_g = effective_resistance(driver.graph, u, v)
            assert snap.effective_resistance(u, v, on="graph") == pytest.approx(
                exact_g, rel=1e-9)

    def test_effective_resistance_validates_inputs(self, churn_driver):
        driver, _ = churn_driver
        snap = driver.snapshot()
        assert snap.effective_resistance(5, 5) == 0.0
        with pytest.raises(ValueError):
            snap.effective_resistance(0, snap.num_nodes)
        with pytest.raises(ValueError):
            snap.effective_resistance(0, 1, on="tree")

    def test_solve_is_preconditioned_by_the_epoch_sparsifier(self, churn_driver):
        driver, _ = churn_driver
        snap = driver.snapshot()
        b = np.zeros(snap.num_nodes)
        b[0], b[-1] = 1.0, -1.0
        pcg = snap.solve(b)
        assert pcg.converged
        plain = snap.solve(b, preconditioned=False)
        assert plain.converged
        assert pcg.iterations <= plain.iterations
        # Cached solver path and throwaway-parameter path agree.
        loose = snap.solve(b, tol=1e-4)
        assert loose.iterations <= pcg.iterations
        np.testing.assert_allclose(pcg.solution[0] - pcg.solution[-1],
                                   snap.effective_resistance(0, snap.num_nodes - 1,
                                                             on="graph"),
                                   rtol=1e-6)

    def test_condition_number_and_report(self, churn_driver):
        driver, _ = churn_driver
        snap = driver.snapshot()
        kappa = snap.condition_number()
        assert kappa >= 1.0
        report = snap.report()
        assert report.condition_number == pytest.approx(kappa)
        described = snap.describe()
        assert described["version"] == snap.version
        assert described["sparsifier_edges"] == snap.num_sparsifier_edges

    def test_answers_survive_writer_churn_bit_exact(self, churn_driver):
        driver, scenario = churn_driver
        snap = driver.snapshot()
        before = [snap.effective_resistance(u, v) for u, v in [(0, 7), (3, 60)]]
        frozen_bytes = snap.sparsifier_arrays()[2].tobytes()
        for batch in scenario.batches:
            driver.update(batch)
        after = [snap.effective_resistance(u, v) for u, v in [(0, 7), (3, 60)]]
        assert before == after  # bit-exact: same solver, same buffers
        assert snap.sparsifier_arrays()[2].tobytes() == frozen_bytes
        assert driver.snapshot().num_graph_edges != snap.num_graph_edges or \
            driver.snapshot().num_sparsifier_edges != snap.num_sparsifier_edges

    def test_snapshot_graphs_are_frozen(self, churn_driver):
        driver, _ = churn_driver
        snap = driver.snapshot()
        with pytest.raises(FrozenGraphError):
            snap.graph.add_edge(0, 1, 1.0)
        with pytest.raises(FrozenGraphError):
            snap.sparsifier.remove_edge(*next(iter(snap.sparsifier.edges()))[:2])
        mutable = snap.graph.copy()
        mutable.add_edge(0, 2, 5.0)  # escape hatch stays open


def _tiny_hierarchy() -> ClusterHierarchy:
    labels0 = np.array([0, 0, 1, 1, 2, 2], dtype=np.int64)
    labels1 = np.array([0, 0, 0, 0, 1, 1], dtype=np.int64)
    return ClusterHierarchy([
        LRDLevel(labels0, np.array([0.5, 0.6, 0.7]), 1.0),
        LRDLevel(labels1, np.array([1.5, 1.7]), 2.0),
    ])


class TestHierarchyCopyOnWrite:
    def test_export_is_o1_and_readonly(self):
        hierarchy = _tiny_hierarchy()
        state = hierarchy.export_state()
        assert hierarchy.cow_shared
        assert np.shares_memory(state.embedding, hierarchy._embedding)
        assert not state.embedding.flags.writeable
        assert hierarchy.cow_copies == 0

    def test_mutation_detaches_exactly_once(self):
        hierarchy = _tiny_hierarchy()
        state = hierarchy.export_state()
        exported = state.level_labels(0).copy()
        hierarchy.relabel_nodes(0, np.array([1]), 2)
        assert hierarchy.cow_copies == 1
        assert not np.shares_memory(state.embedding, hierarchy._embedding)
        # Further mutations in the same epoch reuse the detached buffers.
        hierarchy.set_cluster_diameter(0, 0, 0.9)
        hierarchy.append_cluster(1, 0.1)
        assert hierarchy.cow_copies == 1
        # The exported view still answers with the capture-time labels.
        np.testing.assert_array_equal(state.level_labels(0), exported)
        assert hierarchy.cluster_of(1, 0) == 2

    def test_no_copy_without_outstanding_export(self):
        hierarchy = _tiny_hierarchy()
        hierarchy.relabel_nodes(0, np.array([1]), 2)
        hierarchy.set_cluster_diameter(0, 0, 0.9)
        assert hierarchy.cow_copies == 0

    def test_each_export_epoch_detaches_independently(self):
        hierarchy = _tiny_hierarchy()
        first = hierarchy.export_state()
        hierarchy.relabel_nodes(0, np.array([1]), 2)
        second = hierarchy.export_state()
        hierarchy.relabel_nodes(0, np.array([0]), 2)
        assert hierarchy.cow_copies == 2
        assert first.level_labels(0)[1] == 0
        assert second.level_labels(0)[1] == 2
        assert hierarchy.cluster_of(0, 0) == 2

    def test_levels_stay_views_of_embedding_after_detach(self):
        hierarchy = _tiny_hierarchy()
        hierarchy.export_state()
        hierarchy.relabel_nodes(0, np.array([1]), 2)
        for index in range(hierarchy.num_levels):
            assert np.shares_memory(hierarchy.level(index).labels,
                                    hierarchy._embedding)

    def test_similarity_filter_reads_live_labels_across_detach(self):
        # Regression: the filter must not cache the label array object — a
        # COW detach re-points level.labels at a fresh buffer, and a cached
        # reference would keep reading the frozen pre-detach labels (which
        # silently changes filtering decisions after any snapshot capture).
        from repro.core.filtering import SimilarityFilter

        hierarchy = _tiny_hierarchy()
        sparsifier = Graph(3)
        sparsifier.add_edge(0, 1, 1.0)
        sparsifier.add_edge(1, 2, 1.0)
        similarity_filter = SimilarityFilter(sparsifier, hierarchy, 0)
        assert similarity_filter._labels is hierarchy.level(0).labels
        hierarchy.export_state()
        hierarchy.relabel_nodes(0, np.array([1]), 2)  # triggers the detach
        assert similarity_filter._labels is hierarchy.level(0).labels
        assert similarity_filter._labels[1] == 2

    def test_snapshot_capture_never_perturbs_the_writer(self, churn_driver):
        # End-to-end form of the same guarantee: interleaving snapshot
        # captures (reader traffic) with the churn stream must leave the
        # writer's trajectory bit-identical to an uninterrupted replay.
        driver, scenario = churn_driver
        reference = InGrassSparsifier(InGrassConfig(seed=3))
        reference.setup(scenario.graph, scenario.initial_sparsifier,
                        target_condition_number=scenario.initial_condition_number)
        for batch in scenario.batches:
            reference.update(batch)
        for batch in scenario.batches:
            before = SparsifierSnapshot.capture(driver)
            before.effective_resistance(0, 1)
            driver.update(batch)
            SparsifierSnapshot.capture(driver).effective_resistance(1, 2)
        assert dict(driver.sparsifier._edges) == dict(reference.sparsifier._edges)
        assert dict(driver.graph._edges) == dict(reference.graph._edges)
