"""Tests of the versioned checkpoint format (``repro.checkpoint``).

The contract under test is *byte-identical continuation*: a driver saved
after N batches and restored — into this process or a freshly spawned one —
must replay the remaining stream to exactly the state an uninterrupted run
reaches: same sparsifier edge dict (set, weights, insertion order), same
graph, same κ, same history fingerprint, same version counter.  The property
is checked across executors ({serial, threads, processes}), shard counts
({1, 2, 4}) and both hierarchy modes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    describe_checkpoint,
    is_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.core import InGrassConfig, LRDConfig
from repro.core.incremental import InGrassSparsifier
from repro.core.sharding import ShardedSparsifier
from repro.graphs.generators import grid_circuit_2d
from repro.service import SparsifierService
from repro.streams.scenarios import DynamicScenarioConfig, build_dynamic_scenario

DENSE_LIMIT = 600

#: One deterministic churn scenario shared by every round-trip test (and
#: rebuilt bit-identically inside the spawned-process test's child).
SCENARIO_SIDE = 11
SCENARIO_SEED = 4
SCENARIO_KWARGS = dict(
    initial_offtree_density=0.10, final_offtree_density=0.40,
    num_iterations=6, deletion_fraction=0.3,
    condition_dense_limit=DENSE_LIMIT, seed=0,
)


def make_config(num_shards=1, executor="serial", hierarchy_mode="rebuild"):
    return InGrassConfig(
        lrd=LRDConfig(seed=0),
        kappa_guard_dense_limit=DENSE_LIMIT,
        kappa_guard_factor=1.8,
        hierarchy_mode=hierarchy_mode,
        num_shards=num_shards,
        executor=executor,
        shard_batch_threshold=0,
        seed=0,
    )


@pytest.fixture(scope="module")
def scenario():
    graph = grid_circuit_2d(SCENARIO_SIDE, seed=SCENARIO_SEED)
    return build_dynamic_scenario(graph, DynamicScenarioConfig(**SCENARIO_KWARGS))


def start_driver(scenario, config):
    driver = InGrassSparsifier.from_config(config)
    driver.setup(scenario.graph, scenario.initial_sparsifier,
                 target_condition_number=scenario.initial_condition_number)
    return driver


def history_fingerprint(driver):
    return [
        (r.streamed_edges, r.added_edges, r.merged_edges, r.redistributed_edges,
         r.dropped_edges, r.removed_edges, r.repair_edges, r.reweighted_edges,
         r.filtering_level, r.sparsifier_edges)
        for r in driver.history
    ]


def fingerprint(driver, ordered=True):
    """Everything the byte-identical-continuation contract promises.

    ``ordered=False`` compares edge dicts content-wise (set + weights) instead
    of by insertion order: the ``threads`` executor mutates the shared graphs
    from its pool in completion order, so insertion order is not deterministic
    between two runs of the *same* stream — the checkpoint cannot promise an
    order the engine itself does not.  ``serial`` and ``processes`` (mirror
    replay in job order) are order-deterministic and get the strict check.
    """
    arrange = (lambda d: list(d.items())) if ordered else (lambda d: sorted(d.items()))
    return {
        "sparsifier": arrange(driver.sparsifier._edges),
        "graph": arrange(driver.graph._edges),
        "version": driver.latest_version,
        "history": history_fingerprint(driver),
        "kappa": driver.condition_number(dense_limit=DENSE_LIMIT),
    }


# --------------------------------------------------------------------------- #
# The round-trip property, across executors × shard counts × hierarchy modes
# --------------------------------------------------------------------------- #
class TestRoundTrip:
    @pytest.mark.parametrize("num_shards,executor,hierarchy_mode", [
        (1, "serial", "rebuild"),
        (1, "serial", "maintain"),
        (2, "threads", "maintain"),
        (2, "processes", "rebuild"),
        (4, "processes", "maintain"),
    ])
    def test_mid_stream_save_restore_continues_byte_identically(
            self, scenario, tmp_path, num_shards, executor, hierarchy_mode):
        config = make_config(num_shards, executor, hierarchy_mode)
        batches = scenario.batches
        half = len(batches) // 2

        uninterrupted = start_driver(scenario, config)
        for batch in batches:
            uninterrupted.update(batch)

        interrupted = start_driver(scenario, config)
        for batch in batches[:half]:
            interrupted.update(batch)
        path = tmp_path / "ckpt"
        interrupted.save_checkpoint(path)
        if isinstance(interrupted, ShardedSparsifier):
            interrupted._shutdown_workers()  # the "kill"
        restored = InGrassSparsifier.load_checkpoint(path)
        assert type(restored) is type(interrupted)
        for batch in batches[half:]:
            restored.update(batch)

        ordered = executor != "threads"
        assert fingerprint(restored, ordered) == fingerprint(uninterrupted, ordered)

    def test_restore_into_fresh_process(self, scenario, tmp_path):
        """The ISSUE's literal clause: restore in a *spawned* interpreter.

        The child rebuilds the (deterministic) scenario, loads the
        checkpoint, replays the second half of the stream and prints its
        fingerprint; the parent holds it to the uninterrupted run's.
        """
        config = make_config(num_shards=2, executor="processes",
                             hierarchy_mode="maintain")
        batches = scenario.batches
        half = len(batches) // 2

        uninterrupted = start_driver(scenario, config)
        for batch in batches:
            uninterrupted.update(batch)

        interrupted = start_driver(scenario, config)
        for batch in batches[:half]:
            interrupted.update(batch)
        path = tmp_path / "ckpt"
        interrupted.save_checkpoint(path)

        child_script = f"""
import json, sys
from repro.checkpoint import load_checkpoint
from repro.graphs.generators import grid_circuit_2d
from repro.streams.scenarios import DynamicScenarioConfig, build_dynamic_scenario

graph = grid_circuit_2d({SCENARIO_SIDE}, seed={SCENARIO_SEED})
scenario = build_dynamic_scenario(
    graph, DynamicScenarioConfig(**{SCENARIO_KWARGS!r}))
driver = load_checkpoint({str(path)!r})
for batch in scenario.batches[{half}:]:
    driver.update(batch)
print(json.dumps({{
    "sparsifier": sorted((list(k), v) for k, v in driver.sparsifier._edges.items()),
    "version": driver.latest_version,
    "kappa": driver.condition_number(dense_limit={DENSE_LIMIT}),
}}))
"""
        repo_src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-c", child_script],
                              capture_output=True, text=True, timeout=600, env=env)
        assert proc.returncode == 0, proc.stderr
        child = json.loads(proc.stdout.strip().splitlines()[-1])
        expected = json.loads(json.dumps(sorted(
            (list(k), v) for k, v in uninterrupted.sparsifier._edges.items())))
        assert child["sparsifier"] == expected
        assert child["version"] == uninterrupted.latest_version
        assert child["kappa"] == uninterrupted.condition_number(dense_limit=DENSE_LIMIT)


# --------------------------------------------------------------------------- #
# Format and manifest behaviour
# --------------------------------------------------------------------------- #
class TestFormat:
    @pytest.fixture()
    def saved(self, scenario, tmp_path):
        driver = start_driver(scenario, make_config(num_shards=2, executor="serial"))
        for batch in scenario.batches[:2]:
            driver.update(batch)
        path = tmp_path / "ckpt"
        save_checkpoint(driver, path)
        return driver, path

    def test_is_checkpoint_and_describe(self, saved, tmp_path):
        driver, path = saved
        assert is_checkpoint(path)
        assert not is_checkpoint(tmp_path / "nothing-here")
        info = describe_checkpoint(path)
        assert info["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert info["driver_class"] == "ShardedSparsifier"
        assert info["version"] == driver.latest_version
        assert info["num_shards"] == 2

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "absent")

    def test_future_format_version_rejected(self, saved):
        _, path = saved
        manifest_path = Path(path) / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format"):
            load_checkpoint(path)

    def test_manifest_is_deterministic(self, scenario, tmp_path):
        """Same state → byte-identical manifest (no timestamps, sorted keys)."""
        driver = start_driver(scenario, make_config())
        driver.update(scenario.batches[0])
        texts = []
        for name in ("a", "b"):
            path = tmp_path / name
            save_checkpoint(driver, path)
            texts.append((Path(path) / "manifest.json").read_text())
        assert texts[0] == texts[1]

    def test_config_survives_without_deprecation_warning(self, saved, recwarn):
        _, path = saved
        recwarn.clear()
        restored = load_checkpoint(path)
        deprecations = [w for w in recwarn if issubclass(w.category, DeprecationWarning)]
        assert not deprecations
        assert restored.config.num_shards == 2


# --------------------------------------------------------------------------- #
# Service-level restore
# --------------------------------------------------------------------------- #
class TestServiceRestore:
    def test_service_resumes_at_last_epoch(self, scenario, tmp_path):
        service = SparsifierService(make_config(num_shards=2, executor="serial"))
        service.setup(scenario.graph, scenario.initial_sparsifier,
                      target_condition_number=scenario.initial_condition_number)
        for batch in scenario.batches[:3]:
            service.apply(batch)
        saved_version = service.latest_version
        path = tmp_path / "svc"
        service.save_checkpoint(path)

        restored = SparsifierService.restore(path)
        assert restored.latest_version == saved_version
        assert dict(restored.driver.sparsifier._edges) == \
            dict(service.driver.sparsifier._edges)
        # The restored service keeps serving: apply the next batch and the
        # version moves on from the saved epoch.
        restored.apply(scenario.batches[3])
        assert restored.latest_version > saved_version
