"""Tests for the benchmark CLI entry points (``python -m repro.bench.*``)."""

from __future__ import annotations

import pytest

from repro.bench import table1, table2, table3, figure4
from repro.bench.figure4 import ascii_log_chart
from repro.bench.records import Figure4Record, Table1Record, Table2Record, Table3Record


class TestRecordDerivedFields:
    def test_table1_setup_ratio(self):
        record = Table1Record(case="x", paper_case="X", num_nodes=10, num_edges=20,
                              grass_seconds=2.0, ingrass_setup_seconds=1.0, num_levels=5)
        assert record.setup_ratio == pytest.approx(0.5)
        assert record.as_dict()["setup_ratio"] == pytest.approx(0.5)
        zero = Table1Record(case="x", paper_case="X", num_nodes=10, num_edges=20,
                            grass_seconds=0.0, ingrass_setup_seconds=1.0, num_levels=5)
        assert zero.setup_ratio == float("inf")

    def test_table2_speedups(self):
        record = Table2Record(
            case="x", paper_case="X", num_nodes=10, num_edges=20,
            initial_offtree_density=0.1, final_offtree_density_all_edges=0.34,
            initial_condition_number=100.0, degraded_condition_number=300.0,
            grass_density=0.11, ingrass_density=0.12, random_density=0.3,
            grass_condition_number=95.0, ingrass_condition_number=105.0,
            random_condition_number=99.0,
            grass_seconds=10.0, ingrass_seconds=0.1, ingrass_setup_seconds=0.4,
        )
        assert record.speedup == pytest.approx(100.0)
        assert record.speedup_including_setup == pytest.approx(20.0)
        data = record.as_dict()
        assert data["speedup"] == pytest.approx(100.0)
        assert data["speedup_including_setup"] == pytest.approx(20.0)

    def test_figure4_speedup(self):
        record = Figure4Record(case="x", num_nodes=10, num_edges=20, grass_seconds=4.0,
                               ingrass_update_seconds=0.02, ingrass_total_seconds=0.1)
        assert record.speedup == pytest.approx(200.0)
        assert record.as_dict()["speedup"] == pytest.approx(200.0)

    def test_table3_as_dict(self):
        record = Table3Record(initial_offtree_density=0.1, final_offtree_density_all_edges=0.3,
                              initial_condition_number=50.0, degraded_condition_number=120.0,
                              grass_density=0.11, ingrass_density=0.13)
        assert record.as_dict()["grass_density"] == 0.11


class TestAsciiChart:
    def test_chart_handles_empty(self):
        assert ascii_log_chart([]) == ""

    def test_chart_scales_bars(self):
        records = [
            Figure4Record(case="a", num_nodes=10, num_edges=20, grass_seconds=10.0,
                          ingrass_update_seconds=0.01, ingrass_total_seconds=0.1),
        ]
        chart = ascii_log_chart(records, width=40)
        lines = [line for line in chart.splitlines() if "#" in line]
        assert len(lines) == 3
        # GRASS bar is the longest, the raw-update bar the shortest.
        assert lines[0].count("#") >= lines[2].count("#") >= lines[1].count("#")


@pytest.mark.slow
class TestCliMains:
    """End-to-end CLI runs on the smallest registered case."""

    def test_table1_main(self, capsys):
        assert table1.main(["--cases", "social_ws", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "social_ws" in out

    def test_table2_main(self, capsys):
        assert table2.main(["--cases", "social_ws", "--scale", "small", "--no-random"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "inGRASS-D" in out

    def test_table3_main(self, capsys):
        assert table3.main(["--case", "social_ws", "--densities", "0.12,0.08"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out

    def test_figure4_main(self, capsys):
        assert figure4.main(["--cases", "social_ws"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "#" in out
