"""Tests for the benchmark CLI entry points (``python -m repro.bench.*``)."""

from __future__ import annotations

import json

import pytest

from repro.bench import figure4, gate, serve_latency, shard_removal, soak, table1, table2, table3
from repro.bench.figure4 import ascii_log_chart
from repro.bench.records import Figure4Record, Table1Record, Table2Record, Table3Record


class TestRecordDerivedFields:
    def test_table1_setup_ratio(self):
        record = Table1Record(case="x", paper_case="X", num_nodes=10, num_edges=20,
                              grass_seconds=2.0, ingrass_setup_seconds=1.0, num_levels=5)
        assert record.setup_ratio == pytest.approx(0.5)
        assert record.as_dict()["setup_ratio"] == pytest.approx(0.5)
        zero = Table1Record(case="x", paper_case="X", num_nodes=10, num_edges=20,
                            grass_seconds=0.0, ingrass_setup_seconds=1.0, num_levels=5)
        assert zero.setup_ratio == float("inf")

    def test_table2_speedups(self):
        record = Table2Record(
            case="x", paper_case="X", num_nodes=10, num_edges=20,
            initial_offtree_density=0.1, final_offtree_density_all_edges=0.34,
            initial_condition_number=100.0, degraded_condition_number=300.0,
            grass_density=0.11, ingrass_density=0.12, random_density=0.3,
            grass_condition_number=95.0, ingrass_condition_number=105.0,
            random_condition_number=99.0,
            grass_seconds=10.0, ingrass_seconds=0.1, ingrass_setup_seconds=0.4,
        )
        assert record.speedup == pytest.approx(100.0)
        assert record.speedup_including_setup == pytest.approx(20.0)
        data = record.as_dict()
        assert data["speedup"] == pytest.approx(100.0)
        assert data["speedup_including_setup"] == pytest.approx(20.0)

    def test_figure4_speedup(self):
        record = Figure4Record(case="x", num_nodes=10, num_edges=20, grass_seconds=4.0,
                               ingrass_update_seconds=0.02, ingrass_total_seconds=0.1)
        assert record.speedup == pytest.approx(200.0)
        assert record.as_dict()["speedup"] == pytest.approx(200.0)

    def test_table3_as_dict(self):
        record = Table3Record(initial_offtree_density=0.1, final_offtree_density_all_edges=0.3,
                              initial_condition_number=50.0, degraded_condition_number=120.0,
                              grass_density=0.11, ingrass_density=0.13)
        assert record.as_dict()["grass_density"] == 0.11


class TestAsciiChart:
    def test_chart_handles_empty(self):
        assert ascii_log_chart([]) == ""

    def test_chart_scales_bars(self):
        records = [
            Figure4Record(case="a", num_nodes=10, num_edges=20, grass_seconds=10.0,
                          ingrass_update_seconds=0.01, ingrass_total_seconds=0.1),
        ]
        chart = ascii_log_chart(records, width=40)
        lines = [line for line in chart.splitlines() if "#" in line]
        assert len(lines) == 3
        # GRASS bar is the longest, the raw-update bar the shortest.
        assert lines[0].count("#") >= lines[2].count("#") >= lines[1].count("#")


@pytest.mark.slow
class TestCliMains:
    """End-to-end CLI runs on the smallest registered case."""

    def test_table1_main(self, capsys):
        assert table1.main(["--cases", "social_ws", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "social_ws" in out

    def test_table2_main(self, capsys):
        assert table2.main(["--cases", "social_ws", "--scale", "small", "--no-random"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "inGRASS-D" in out

    def test_table3_main(self, capsys):
        assert table3.main(["--case", "social_ws", "--densities", "0.12,0.08"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out

    def test_figure4_main(self, capsys):
        assert figure4.main(["--cases", "social_ws"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "#" in out


class TestGateRunner:
    def test_list_registers_all_gates(self, capsys):
        assert gate.main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("batch", "churn-maintenance", "shard", "sharded-removal",
                     "serve-latency"):
            assert name in out

    def test_unknown_gate_rejected(self):
        with pytest.raises(SystemExit):
            gate.main(["--only", "nope"])

    def test_check_only_missing_artifact_fails(self, tmp_path, capsys):
        summary_path = tmp_path / "summary.json"
        code = gate.main(["--only", "batch", "--check-only",
                          "--artifacts-dir", str(tmp_path),
                          "--summary", str(summary_path)])
        assert code == 1
        summary = json.loads(summary_path.read_text())
        assert summary["gates"]["batch"]["status"] == "missing-artifact"

    def test_check_only_passes_on_existing_artifact(self, tmp_path):
        # A payload consistent with the committed baseline passes the check
        # phase without re-running the benchmark.
        baseline = json.loads(gate.GATES[0].baseline.read_text())
        entries = baseline["entries"]
        payload = {"results": [
            {"batch_size": int(size),
             "vectorized_per_edge_us": values["vectorized_per_edge_us"],
             "scalar_per_edge_us": values["scalar_per_edge_us"],
             "edge_sets_match": True}
            for size, values in entries.items()
        ]}
        (tmp_path / "BENCH_batch.json").write_text(json.dumps(payload))
        summary_path = tmp_path / "summary.json"
        code = gate.main(["--only", "batch", "--check-only",
                          "--artifacts-dir", str(tmp_path),
                          "--summary", str(summary_path)])
        assert code == 0
        summary = json.loads(summary_path.read_text())
        assert summary["gates"]["batch"]["status"] == "pass"


class TestShardRemovalGate:
    def _payload(self, **overrides):
        rows = []
        for mode, shards in (("oracle", 1), ("shards2-serial", 2), ("shards2-threads", 2)):
            rows.append({
                "mode": mode, "num_shards": shards,
                "pipeline_seconds": 1.0, "engine_seconds": 0.2,
                "edge_sets_match": True, "weights_match": True, "history_match": True,
            })
        payload = {
            "meta": {"cpu_count": 4, "shards": 2},
            "results": rows,
            "overhead_serial_sharding": 1.0,
            "engine_speedup_threads": 1.5,
        }
        payload.update(overrides)
        return payload

    def test_passes_clean_payload(self):
        assert shard_removal.check_gate(self._payload(), None) == []

    def test_parity_violation_fails(self):
        payload = self._payload()
        payload["results"][2]["weights_match"] = False
        failures = shard_removal.check_gate(payload, None)
        assert any("weights" in failure for failure in failures)

    def test_overhead_violation_fails(self):
        failures = shard_removal.check_gate(
            self._payload(overhead_serial_sharding=1.5), None)
        assert any("overhead" in failure for failure in failures)

    def test_speedup_enforced_on_multicore_only(self, capsys):
        slow = self._payload(engine_speedup_threads=1.0)
        failures = shard_removal.check_gate(slow, None)
        assert any("engine region" in failure for failure in failures)
        slow["meta"]["cpu_count"] = 1
        assert shard_removal.check_gate(slow, None) == []
        assert "deferred" in capsys.readouterr().out

    def test_ratio_regression_against_multicore_baseline(self):
        baseline = {"cpu_count": 4, "oracle_engine_seconds": 0.2,
                    "threads_engine_seconds": 0.1}
        # Measured ratio 1.0 vs baseline ratio 0.5: worse than 35% tolerance.
        failures = shard_removal.check_gate(
            self._payload(engine_speedup_threads=1.2), baseline)
        assert any("ratio" in failure for failure in failures)


class TestServeLatencyGate:
    def _payload(self, **overrides):
        payload = {
            "meta": {"cpu_count": 4, "side": 10, "batches": 12, "readers": 2,
                     "seed": 0},
            "latency": {"queries": 500, "p50_ms": 1.0, "p99_ms": 5.0},
            "restart": {"mid_epoch": 7, "resumed_epoch": 7,
                        "resume_epoch_match": True},
            "parity": {"final_epoch": 13, "offline_epoch": 13,
                       "epoch_match": True, "sparsifier_edges_match": True,
                       "sparsifier_weights_match": True,
                       "graph_edges_match": True},
        }
        payload.update(overrides)
        return payload

    def _baseline(self, **overrides):
        baseline = {"benchmark": "serve_latency", "cpu_count": 4,
                    "queries": 500, "p50_ms": 1.0, "p99_ms": 5.0}
        baseline.update(overrides)
        return baseline

    def test_passes_clean_payload(self):
        assert serve_latency.check_gate(self._payload(), self._baseline()) == []

    def test_missing_baseline_fails(self):
        failures = serve_latency.check_gate(self._payload(), None)
        assert any("baseline missing" in failure for failure in failures)

    def test_parity_violation_fails(self):
        payload = self._payload()
        payload["parity"]["sparsifier_weights_match"] = False
        failures = serve_latency.check_gate(payload, self._baseline())
        assert any("weights diverged" in failure for failure in failures)

    def test_restart_violation_fails(self):
        payload = self._payload()
        payload["restart"] = {"mid_epoch": 7, "resumed_epoch": 5,
                              "resume_epoch_match": False}
        failures = serve_latency.check_gate(payload, self._baseline())
        assert any("restart drill" in failure for failure in failures)

    def test_zero_queries_fails(self):
        payload = self._payload()
        payload["latency"]["queries"] = 0
        failures = serve_latency.check_gate(payload, self._baseline())
        assert any("vacuous" in failure for failure in failures)

    def test_latency_regression_fails_on_multicore(self):
        payload = self._payload()
        payload["latency"]["p99_ms"] = 50.0  # baseline 5.0 + 100% tolerance = 10.0
        failures = serve_latency.check_gate(payload, self._baseline())
        assert any("p99_ms" in failure for failure in failures)

    def test_latency_arm_deferred_on_single_cpu(self, capsys):
        payload = self._payload()
        payload["meta"]["cpu_count"] = 1
        payload["latency"]["p99_ms"] = 50.0
        assert serve_latency.check_gate(payload, self._baseline()) == []
        assert "deferred" in capsys.readouterr().out

    def test_latency_arm_deferred_on_single_cpu_baseline(self, capsys):
        payload = self._payload()
        payload["latency"]["p99_ms"] = 50.0
        baseline = self._baseline(cpu_count=1)
        assert serve_latency.check_gate(payload, baseline) == []
        assert "deferred" in capsys.readouterr().out

    def test_distil_baseline_matches_committed_schema(self):
        baseline = serve_latency.distil_baseline(self._payload())
        committed = json.loads(serve_latency.DEFAULT_BASELINE_PATH.read_text())
        assert set(baseline) == set(committed)


@pytest.mark.slow
class TestSoakAndRemovalMains:
    """Tiny end-to-end runs of the new CLIs (CI-speed parameters)."""

    def test_shard_removal_main(self, tmp_path, capsys):
        output = tmp_path / "BENCH_removal.json"
        code = shard_removal.main([
            "--events", "600", "--batches", "2", "--scale", "small",
            "--repeats", "1", "--output", str(output),
        ])
        assert code == 0
        payload = json.loads(output.read_text())
        assert all(row["edge_sets_match"] and row["weights_match"]
                   and row["history_match"] for row in payload["results"])

    def test_soak_main(self, tmp_path, capsys):
        output = tmp_path / "BENCH_soak.json"
        code = soak.main([
            "--batches", "6", "--events", "400", "--shards", "2",
            "--scale", "small", "--output", str(output),
        ])
        assert code == 0
        payload = json.loads(output.read_text())
        assert all(payload["acceptance"].values())
