"""Tests for the benchmark harness (datasets, runners, table formatting).

These keep the harness itself honest on tiny inputs; the actual paper-shape
numbers are produced by ``benchmarks/`` and the ``python -m repro.bench.*``
CLIs.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    DATASETS,
    QUICK_CASES,
    SCALABILITY_CASES,
    TABLE_CASES,
    HarnessConfig,
    build_dataset,
    format_table,
    format_value,
    get_dataset,
    percent,
    run_figure4,
    run_table1_case,
    run_table2_case,
    run_table3,
)
from repro.bench.table1 import print_table1
from repro.bench.table2 import print_table2
from repro.bench.table3 import print_table3
from repro.bench.figure4 import ascii_log_chart, print_figure4
from repro.graphs import is_connected

TINY = HarnessConfig(scale="small", seed=0, num_iterations=3, condition_dense_limit=400)


class TestDatasets:
    def test_registry_contents(self):
        assert set(QUICK_CASES) <= set(DATASETS)
        assert set(TABLE_CASES) <= set(DATASETS)
        assert set(SCALABILITY_CASES) <= set(DATASETS)

    @pytest.mark.parametrize("name", QUICK_CASES)
    def test_quick_cases_build_connected(self, name):
        graph = build_dataset(name, scale="small", seed=0)
        assert is_connected(graph)
        assert graph.num_nodes >= 64

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            get_dataset("nope")

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_dataset("g2_circuit").build(scale="huge")

    def test_scales_grow(self):
        small = build_dataset("delaunay_n10", scale="small", seed=0)
        medium = build_dataset("delaunay_n10", scale="medium", seed=0)
        assert medium.num_nodes > small.num_nodes

    def test_deterministic(self):
        assert build_dataset("fe_4elt2", seed=3) == build_dataset("fe_4elt2", seed=3)


class TestTableFormatting:
    def test_format_value(self):
        assert format_value(None) == "n/a"
        assert format_value(float("nan")) == "n/a"
        assert format_value(float("inf")) == "inf"
        assert format_value(3.14159, precision=2) == "3.14"
        assert format_value(123456.0) == "123456"
        assert format_value("text") == "text"

    def test_percent(self):
        assert percent(0.117) == "11.7%"
        assert percent(float("nan")) == "n/a"

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        text = format_table(rows, ["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned widths

    def test_format_table_header_mismatch(self):
        with pytest.raises(ValueError):
            format_table([], ["a"], headers=["x", "y"])


@pytest.mark.slow
class TestHarnessRunners:
    """End-to-end harness runs on the smallest quick case (slow-ish, ~30 s)."""

    def test_table1_record(self):
        record = run_table1_case("social_ws", TINY)
        assert record.num_nodes > 0
        assert record.grass_seconds > 0
        assert record.ingrass_setup_seconds > 0
        assert record.num_levels >= 1
        assert "Setup (s)" in print_table1([record])

    def test_table2_record_shape(self):
        record = run_table2_case("social_ws", TINY)
        # Timing shape: incremental updates are much cheaper than re-running
        # the from-scratch sparsifier at every iteration.
        assert record.ingrass_seconds < record.grass_seconds
        assert record.speedup > 1.0
        assert record.speedup_including_setup <= record.speedup
        # Density shape: the maintained sparsifier stays sparser than blindly
        # including every streamed edge.
        assert record.ingrass_density < record.final_offtree_density_all_edges
        assert record.grass_condition_number <= record.initial_condition_number * 1.5
        text = print_table2([record])
        assert "inGRASS-D" in text

    def test_table3_records(self):
        records = run_table3([0.12, 0.08], TINY, case="social_ws", final_density=0.3)
        assert len(records) == 2
        assert records[0].initial_offtree_density > records[1].initial_offtree_density
        # A sparser initial sparsifier has a (weakly) larger initial kappa.
        assert records[1].initial_condition_number >= records[0].initial_condition_number * 0.8
        assert "GRASS-D" in print_table3(records)

    def test_figure4_records(self):
        records = run_figure4(["social_ws"], TINY)
        assert len(records) == 1
        assert records[0].ingrass_total_seconds >= records[0].ingrass_update_seconds
        assert records[0].speedup > 1.0
        assert "GRASS" in print_figure4(records)
        assert "#" in ascii_log_chart(records)
