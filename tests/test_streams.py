"""Tests for edge-stream generation and incremental scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import canonical_edge, grid_circuit_2d
from repro.streams import (
    ScenarioConfig,
    build_scenario,
    locality_biased_edges,
    mixed_edges,
    random_pair_edges,
    split_into_batches,
)


class TestEdgeStreams:
    def test_random_pairs_are_new_and_distinct(self, medium_grid):
        edges = random_pair_edges(medium_grid, 40, seed=0)
        assert len(edges) == 40
        keys = {canonical_edge(u, v) for u, v, _ in edges}
        assert len(keys) == 40
        for u, v, w in edges:
            assert not medium_grid.has_edge(u, v)
            assert u != v
            assert w > 0

    def test_random_pairs_respect_exclude(self, medium_grid):
        first = random_pair_edges(medium_grid, 10, seed=1)
        exclude = {canonical_edge(u, v) for u, v, _ in first}
        second = random_pair_edges(medium_grid, 10, seed=1, exclude=set(exclude))
        assert not exclude & {canonical_edge(u, v) for u, v, _ in second}

    def test_random_pairs_deterministic(self, medium_grid):
        assert random_pair_edges(medium_grid, 15, seed=3) == random_pair_edges(medium_grid, 15, seed=3)

    def test_zero_count(self, medium_grid):
        assert random_pair_edges(medium_grid, 0) == []
        assert locality_biased_edges(medium_grid, 0) == []
        assert mixed_edges(medium_grid, 0) == []

    def test_locality_biased_edges_are_new(self, medium_grid):
        edges = locality_biased_edges(medium_grid, 30, hops=2, seed=2)
        assert len(edges) == 30
        for u, v, _ in edges:
            assert not medium_grid.has_edge(u, v)

    def test_locality_bias_is_actually_local(self, medium_grid):
        """Locality-biased endpoints should be closer (in hops) than random pairs on average."""
        import networkx as nx

        nx_graph = medium_grid.to_networkx()
        local = locality_biased_edges(medium_grid, 25, hops=2, seed=4)
        random_edges = random_pair_edges(medium_grid, 25, seed=4)

        def mean_distance(edges):
            return np.mean([nx.shortest_path_length(nx_graph, u, v) for u, v, _ in edges])

        assert mean_distance(local) < mean_distance(random_edges)

    def test_mixed_edges_blend(self, medium_grid):
        edges = mixed_edges(medium_grid, 20, long_range_fraction=0.5, seed=5)
        assert len(edges) == 20
        with pytest.raises(ValueError):
            mixed_edges(medium_grid, 10, long_range_fraction=1.5)

    def test_split_into_batches(self):
        edges = [(0, i, 1.0) for i in range(1, 11)]
        batches = split_into_batches(edges, 3)
        assert len(batches) == 3
        assert sum(len(batch) for batch in batches) == 10
        assert [e for batch in batches for e in batch] == edges

    def test_split_more_batches_than_edges(self):
        edges = [(0, 1, 1.0), (0, 2, 1.0)]
        batches = split_into_batches(edges, 10)
        assert sum(len(batch) for batch in batches) == 2


class TestScenarios:
    def test_build_scenario_structure(self):
        graph = grid_circuit_2d(12, seed=0)
        config = ScenarioConfig(initial_offtree_density=0.1, final_offtree_density=0.3,
                                num_iterations=5, condition_dense_limit=400, seed=0)
        scenario = build_scenario(graph, config)
        assert len(scenario.batches) == 5
        assert scenario.initial_condition_number >= 1.0
        assert scenario.initial_offtree_density() == pytest.approx(0.1, abs=0.02)
        expected_stream = int(round((0.3 - 0.1) * graph.num_nodes))
        assert len(scenario.all_new_edges) == expected_stream
        # The final graph includes every streamed edge.
        assert scenario.final_graph.num_edges == graph.num_edges + expected_stream

    def test_degraded_condition_exceeds_initial(self):
        graph = grid_circuit_2d(12, seed=1)
        scenario = build_scenario(graph, ScenarioConfig(condition_dense_limit=400, seed=1))
        assert scenario.degraded_condition_number() >= scenario.initial_condition_number * 0.99

    def test_custom_initial_sparsifier(self):
        graph = grid_circuit_2d(10, seed=2)
        from repro.sparsify import random_sparsify

        initial = random_sparsify(graph, relative_density=0.7, seed=0)
        scenario = build_scenario(graph, ScenarioConfig(condition_dense_limit=400, seed=2),
                                  initial_sparsifier=initial)
        assert scenario.initial_sparsifier is initial

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ScenarioConfig(initial_offtree_density=0.3, final_offtree_density=0.2)
        with pytest.raises(ValueError):
            ScenarioConfig(num_iterations=0)
