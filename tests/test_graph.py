"""Unit and property tests for the Graph container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, canonical_edge
from repro.graphs.laplacian import is_laplacian


class TestGraphBasics:
    def test_empty_graph(self):
        graph = Graph(0)
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_add_edge_and_query(self):
        graph = Graph(4)
        graph.add_edge(0, 1, 2.5)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.weight(1, 0) == 2.5
        assert graph.num_edges == 1

    def test_add_edge_merges_parallel_by_sum(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 0, 2.0)
        assert graph.num_edges == 1
        assert graph.weight(0, 1) == pytest.approx(3.0)

    def test_add_edge_merge_policies(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(0, 1, 5.0, merge="max")
        assert graph.weight(0, 1) == 5.0
        graph.add_edge(0, 1, 2.0, merge="replace")
        assert graph.weight(0, 1) == 2.0
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, 1.0, merge="error")
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, 1.0, merge="bogus")

    def test_self_loop_rejected(self):
        graph = Graph(3)
        with pytest.raises(ValueError):
            graph.add_edge(1, 1, 1.0)

    def test_invalid_node_rejected(self):
        graph = Graph(3)
        with pytest.raises(ValueError):
            graph.add_edge(0, 3, 1.0)
        with pytest.raises(ValueError):
            graph.add_edge(-1, 2, 1.0)

    def test_nonpositive_weight_rejected(self):
        graph = Graph(3)
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, 0.0)
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, -1.0)

    def test_remove_edge(self):
        graph = Graph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        weight = graph.remove_edge(1, 0)
        assert weight == 1.0
        assert not graph.has_edge(0, 1)
        with pytest.raises(KeyError):
            graph.remove_edge(0, 1)

    def test_weight_default(self):
        graph = Graph(3, [(0, 1, 1.0)])
        assert graph.weight(0, 2, default=0.0) == 0.0
        with pytest.raises(KeyError):
            graph.weight(0, 2)

    def test_set_scale_increase_weight(self):
        graph = Graph(3, [(0, 1, 2.0)])
        graph.set_weight(0, 1, 4.0)
        assert graph.weight(0, 1) == 4.0
        graph.scale_weight(0, 1, 0.5)
        assert graph.weight(0, 1) == 2.0
        graph.increase_weight(0, 1, 1.0)
        assert graph.weight(0, 1) == 3.0
        with pytest.raises(KeyError):
            graph.set_weight(0, 2, 1.0)

    def test_degrees(self):
        graph = Graph(4, [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0)])
        assert graph.degree(0) == 3
        assert graph.degree(1) == 1
        assert graph.weighted_degree(0) == pytest.approx(6.0)
        assert np.array_equal(graph.degrees(), [3, 1, 1, 1])
        assert np.allclose(graph.weighted_degrees(), [6.0, 1.0, 2.0, 3.0])

    def test_neighbors_returns_copy(self):
        graph = Graph(3, [(0, 1, 1.0)])
        neighbors = graph.neighbors(0)
        neighbors[2] = 99.0
        assert not graph.has_edge(0, 2)

    def test_contains_and_iteration(self):
        graph = Graph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        assert (1, 0) in graph
        assert (0, 2) not in graph
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]
        assert sorted(graph.weighted_edges()) == [(0, 1, 1.0), (1, 2, 2.0)]
        assert graph.edge_list() == [(0, 1, 1.0), (1, 2, 2.0)]

    def test_density_measures(self):
        graph = Graph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])
        assert graph.density() == pytest.approx(1.0)
        reference = Graph(4, [(0, 1, 1.0), (1, 2, 1.0)])
        assert reference.relative_density(graph) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            graph.relative_density(Graph(4))

    def test_copy_is_deep(self):
        graph = Graph(3, [(0, 1, 1.0)])
        clone = graph.copy()
        clone.add_edge(1, 2, 5.0)
        assert not graph.has_edge(1, 2)
        assert clone.has_edge(0, 1)

    def test_equality(self):
        a = Graph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        b = Graph(3, [(1, 2, 2.0), (0, 1, 1.0)])
        c = Graph(3, [(0, 1, 1.0), (1, 2, 2.5)])
        assert a == b
        assert a != c
        assert a != "not a graph"

    def test_subgraph_from_edges(self):
        graph = Graph(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        sub = graph.subgraph_from_edges([(1, 2), (2, 3)])
        assert sub.num_edges == 2
        assert sub.weight(2, 3) == 3.0
        with pytest.raises(KeyError):
            graph.subgraph_from_edges([(0, 3)])

    def test_union_with_edges(self):
        graph = Graph(3, [(0, 1, 1.0)])
        merged = graph.union_with_edges([(1, 2, 2.0), (0, 1, 1.0)])
        assert merged.num_edges == 2
        assert merged.weight(0, 1) == pytest.approx(2.0)
        assert graph.weight(0, 1) == pytest.approx(1.0)  # original untouched


class TestGraphMatrices:
    def test_adjacency_symmetric(self, small_grid):
        adjacency = small_grid.adjacency_matrix()
        assert (abs(adjacency - adjacency.T)).nnz == 0

    def test_laplacian_row_sums_zero(self, small_grid):
        laplacian = small_grid.laplacian_matrix()
        row_sums = np.asarray(laplacian.sum(axis=1)).ravel()
        assert np.allclose(row_sums, 0.0, atol=1e-9)
        assert is_laplacian(laplacian)

    def test_laplacian_psd(self, small_grid, rng):
        laplacian = small_grid.laplacian_matrix()
        for _ in range(5):
            x = rng.standard_normal(small_grid.num_nodes)
            assert float(x @ (laplacian @ x)) >= -1e-9

    def test_incidence_factorisation(self, small_grid):
        incidence = small_grid.incidence_matrix()
        _, _, weights = small_grid.edge_arrays()
        import scipy.sparse as sp

        reconstructed = incidence.T @ sp.diags(weights) @ incidence
        difference = abs(reconstructed - small_grid.laplacian_matrix())
        assert difference.max() < 1e-9

    def test_edge_arrays_alignment(self):
        graph = Graph(3, [(0, 1, 1.5), (1, 2, 2.5)])
        us, vs, ws = graph.edge_arrays()
        assert list(zip(us.tolist(), vs.tolist(), ws.tolist())) == [(0, 1, 1.5), (1, 2, 2.5)]


class TestGraphConversions:
    def test_networkx_roundtrip(self, small_grid):
        nx_graph = small_grid.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back == small_grid

    def test_from_sparse_adjacency(self, small_grid):
        back = Graph.from_sparse(small_grid.adjacency_matrix())
        assert back == small_grid

    def test_from_sparse_laplacian(self, small_grid):
        back = Graph.from_sparse(small_grid.laplacian_matrix())
        assert back == small_grid

    def test_from_sparse_rejects_non_square(self):
        import scipy.sparse as sp

        with pytest.raises(ValueError):
            Graph.from_sparse(sp.random(3, 4, density=0.5))

    def test_from_networkx_skips_self_loops(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 0, weight=3.0)
        nx_graph.add_edge(0, 1, weight=1.0)
        graph = Graph.from_networkx(nx_graph)
        assert graph.num_edges == 1


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(3, 1) == (1, 3)
        assert canonical_edge(1, 3) == (1, 3)


@st.composite
def random_edge_lists(draw):
    """Random small weighted edge lists."""
    num_nodes = draw(st.integers(min_value=2, max_value=12))
    num_edges = draw(st.integers(min_value=0, max_value=20))
    edges = []
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        v = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        if u == v:
            continue
        w = draw(st.floats(min_value=0.01, max_value=100.0, allow_nan=False, allow_infinity=False))
        edges.append((u, v, w))
    return num_nodes, edges


class TestGraphProperties:
    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_laplacian_invariants(self, data):
        num_nodes, edges = data
        graph = Graph(num_nodes, edges)
        laplacian = graph.laplacian_matrix()
        row_sums = np.asarray(laplacian.sum(axis=1)).ravel()
        assert np.allclose(row_sums, 0.0, atol=1e-8)
        # Quadratic form is non-negative for arbitrary vectors.
        x = np.linspace(-1, 1, num_nodes)
        assert float(x @ (laplacian @ x)) >= -1e-8

    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_total_weight_matches_edges(self, data):
        num_nodes, edges = data
        graph = Graph(num_nodes, edges)
        expected = sum(w for *_, w in edges)
        assert graph.total_weight() == pytest.approx(expected, rel=1e-9, abs=1e-9)

    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_copy_equality(self, data):
        num_nodes, edges = data
        graph = Graph(num_nodes, edges)
        assert graph.copy() == graph
