"""Tests for synthetic graph generators and graph I/O."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    airfoil_mesh,
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    delaunay_graph,
    fe_mesh_2d,
    fe_mesh_3d,
    graph_summary,
    grid_circuit_2d,
    grid_circuit_3d,
    is_connected,
    load_edge_list,
    load_matrix_market,
    paper_figure2_graph,
    path_graph,
    random_regular_graph,
    save_edge_list,
    save_matrix_market,
    sphere_mesh,
    star_graph,
    watts_strogatz_graph,
)
from repro.graphs.io import edge_list_string
from repro.graphs.validation import (
    GraphValidationError,
    assert_positive_weights,
    validate_new_edges,
    validate_sparsifier_support,
)

GENERATORS = [
    ("grid2d", lambda seed: grid_circuit_2d(9, seed=seed)),
    ("grid3d", lambda seed: grid_circuit_3d(6, 6, 3, seed=seed)),
    ("delaunay", lambda seed: delaunay_graph(150, seed=seed)),
    ("fe2d", lambda seed: fe_mesh_2d(150, seed=seed)),
    ("fe3d", lambda seed: fe_mesh_3d(120, seed=seed)),
    ("sphere", lambda seed: sphere_mesh(150, seed=seed)),
    ("airfoil", lambda seed: airfoil_mesh(150, seed=seed)),
    ("watts", lambda seed: watts_strogatz_graph(150, seed=seed)),
    ("barabasi", lambda seed: barabasi_albert_graph(150, seed=seed)),
    ("regular", lambda seed: random_regular_graph(150, 4, seed=seed)),
]


class TestGenerators:
    @pytest.mark.parametrize("name,maker", GENERATORS)
    def test_connected_and_positive_weights(self, name, maker):
        graph = maker(3)
        assert graph.num_nodes > 0
        assert graph.num_edges >= graph.num_nodes - 1
        assert is_connected(graph)
        assert_positive_weights(graph)

    @pytest.mark.parametrize("name,maker", GENERATORS)
    def test_deterministic_for_seed(self, name, maker):
        assert maker(7) == maker(7)

    def test_grid_2d_size(self):
        graph = grid_circuit_2d(5, 7, seed=0)
        assert graph.num_nodes == 35

    def test_grid_3d_size(self):
        graph = grid_circuit_3d(4, 5, 3, seed=0)
        assert graph.num_nodes == 60

    def test_delaunay_weight_modes(self):
        unit = delaunay_graph(100, weight_mode="unit", seed=0)
        assert all(w == 1.0 for _, _, w in unit.weighted_edges())
        geometric = delaunay_graph(100, weight_mode="inverse_distance", seed=0)
        weights = [w for _, _, w in geometric.weighted_edges()]
        assert max(weights) > min(weights)

    def test_delaunay_too_small_raises(self):
        with pytest.raises(ValueError):
            delaunay_graph(3)

    def test_simple_families(self):
        assert path_graph(5).num_edges == 4
        assert cycle_graph(5).num_edges == 5
        assert complete_graph(5).num_edges == 10
        assert star_graph(5).num_edges == 5
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_paper_figure2_graph(self):
        graph = paper_figure2_graph()
        assert graph.num_nodes == 14
        assert is_connected(graph)
        # The weak bridge between the two clusters is present.
        assert graph.has_edge(3, 9)

    def test_graph_summary(self):
        summary = graph_summary(grid_circuit_2d(5, seed=1))
        assert summary["num_nodes"] == 25
        assert summary["connected"] is True
        assert summary["min_weight"] > 0


class TestIO:
    def test_edge_list_roundtrip(self, tmp_path, small_grid):
        path = tmp_path / "graph.edges"
        save_edge_list(small_grid, path)
        loaded = load_edge_list(path)
        assert loaded == small_grid

    def test_edge_list_without_header_infers_nodes(self, tmp_path):
        path = tmp_path / "tiny.edges"
        path.write_text("0 1 2.0\n1 2 1.0\n")
        graph = load_edge_list(path)
        assert graph.num_nodes == 3
        assert graph.weight(0, 1) == 2.0

    def test_edge_list_default_weight(self, tmp_path):
        path = tmp_path / "unweighted.edges"
        path.write_text("0 1\n1 2\n")
        graph = load_edge_list(path)
        assert graph.weight(1, 2) == 1.0

    def test_edge_list_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            load_edge_list(path)

    def test_matrix_market_roundtrip(self, tmp_path, small_grid):
        path = tmp_path / "graph.mtx"
        save_matrix_market(small_grid, path)
        loaded = load_matrix_market(path)
        assert loaded == small_grid

    def test_edge_list_string_contains_header(self, small_grid):
        text = edge_list_string(small_grid)
        assert text.startswith(f"# nodes {small_grid.num_nodes}")


class TestValidationHelpers:
    def test_validate_sparsifier_support_ok(self, grid_with_sparsifier):
        graph, sparsifier = grid_with_sparsifier
        validate_sparsifier_support(graph, sparsifier, allow_new_edges=False)

    def test_validate_sparsifier_node_mismatch(self, small_grid):
        with pytest.raises(GraphValidationError):
            validate_sparsifier_support(small_grid, Graph(3, [(0, 1, 1.0), (1, 2, 1.0)]))

    def test_validate_sparsifier_disconnected(self, small_grid):
        bad = Graph(small_grid.num_nodes, [(0, 1, 1.0)])
        with pytest.raises(GraphValidationError):
            validate_sparsifier_support(small_grid, bad)

    def test_validate_sparsifier_foreign_edges(self, small_grid):
        sparsifier = small_grid.copy()
        # Find a pair with no edge and add it to the sparsifier only.
        for u in range(small_grid.num_nodes):
            for v in range(u + 2, small_grid.num_nodes):
                if not small_grid.has_edge(u, v):
                    sparsifier.add_edge(u, v, 1.0)
                    with pytest.raises(GraphValidationError):
                        validate_sparsifier_support(small_grid, sparsifier, allow_new_edges=False)
                    validate_sparsifier_support(small_grid, sparsifier, allow_new_edges=True)
                    return
        pytest.skip("grid unexpectedly complete")

    def test_validate_new_edges_merges_duplicates(self, small_grid):
        cleaned = validate_new_edges(small_grid, [(0, 5, 1.0), (5, 0, 2.0)])
        assert cleaned == [(0, 5, 3.0)]

    def test_validate_new_edges_rejects_bad(self, small_grid):
        with pytest.raises(GraphValidationError):
            validate_new_edges(small_grid, [(0, 0, 1.0)])
        with pytest.raises(GraphValidationError):
            validate_new_edges(small_grid, [(0, small_grid.num_nodes, 1.0)])
        with pytest.raises(GraphValidationError):
            validate_new_edges(small_grid, [(0, 1, -1.0)])
