"""Tests for Laplacian algebra: solvers, eigen utilities, condition numbers,
perturbation analysis and quadratic forms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, complete_graph, grid_circuit_2d, path_graph
from repro.graphs.laplacian import (
    grounded_laplacian,
    is_laplacian,
    laplacian_from_edges,
    laplacian_quadratic_form,
    normalized_laplacian,
    regularized_laplacian,
)
from repro.spectral import (
    GroundedSolver,
    PCGSolver,
    condition_estimate,
    conjugate_gradient,
    dense_laplacian_spectrum,
    eigenvalue_perturbations,
    fiedler_vector,
    jacobi_preconditioner,
    largest_eigenvalue,
    pair_indicator,
    project_out_constant,
    quadratic_form,
    rank_edges_by_exact_distortion,
    rayleigh_quotient,
    relative_condition_number,
    sample_similarity,
    smallest_nonzero_eigenvalues,
    spectral_distortion_exact,
    spectral_embedding,
    spectral_similarity_epsilon,
    total_relative_perturbation,
    weighted_eigensubspace,
)
from repro.spectral.condition import condition_number_upper_bound_from_distortions


class TestLaplacianHelpers:
    def test_laplacian_from_edges_matches_graph(self, small_grid):
        us, vs, ws = small_grid.edge_arrays()
        direct = laplacian_from_edges(small_grid.num_nodes, us, vs, ws)
        assert abs(direct - small_grid.laplacian_matrix()).max() < 1e-12

    def test_laplacian_from_edges_length_mismatch(self):
        with pytest.raises(ValueError):
            laplacian_from_edges(3, [0], [1, 2], [1.0])

    def test_grounded_laplacian_spd(self, small_grid):
        reduced, keep = grounded_laplacian(small_grid.laplacian_matrix(), ground=0)
        assert reduced.shape == (small_grid.num_nodes - 1, small_grid.num_nodes - 1)
        assert 0 not in keep
        eigenvalues = np.linalg.eigvalsh(reduced.toarray())
        assert eigenvalues.min() > 0

    def test_grounded_laplacian_bad_ground(self, small_grid):
        with pytest.raises(ValueError):
            grounded_laplacian(small_grid.laplacian_matrix(), ground=10**6)

    def test_is_laplacian(self, small_grid):
        assert is_laplacian(small_grid.laplacian_matrix())
        assert not is_laplacian(small_grid.adjacency_matrix())

    def test_normalized_laplacian_spectrum_bounded(self, small_grid):
        normalized = normalized_laplacian(small_grid)
        eigenvalues = np.linalg.eigvalsh(normalized.toarray())
        assert eigenvalues.min() > -1e-9
        assert eigenvalues.max() < 2 + 1e-9

    def test_regularized_laplacian(self, small_grid):
        shifted = regularized_laplacian(small_grid.laplacian_matrix(), 0.5)
        assert np.allclose(shifted.diagonal(), small_grid.laplacian_matrix().diagonal() + 0.5)
        with pytest.raises(ValueError):
            regularized_laplacian(small_grid.laplacian_matrix(), -1.0)

    def test_quadratic_form_helper(self, small_grid, rng):
        x = rng.standard_normal(small_grid.num_nodes)
        assert laplacian_quadratic_form(small_grid.laplacian_matrix(), x) == pytest.approx(
            quadratic_form(small_grid, x), rel=1e-9
        )


class TestGroundedSolver:
    def test_solution_satisfies_system(self, small_grid, rng):
        solver = GroundedSolver.from_graph(small_grid)
        b = rng.standard_normal(small_grid.num_nodes)
        b -= b.mean()
        x = solver.solve(b)
        residual = small_grid.laplacian_matrix() @ x - b
        assert np.linalg.norm(residual) < 1e-6 * max(np.linalg.norm(b), 1.0)
        assert abs(x.mean()) < 1e-9

    def test_solve_many(self, small_grid, rng):
        solver = GroundedSolver.from_graph(small_grid)
        b = rng.standard_normal((small_grid.num_nodes, 3))
        x = solver.solve_many(b)
        assert x.shape == b.shape

    def test_rejects_single_node(self):
        with pytest.raises(ValueError):
            GroundedSolver.from_graph(Graph(1))

    def test_wrong_rhs_length(self, small_grid):
        solver = GroundedSolver.from_graph(small_grid)
        with pytest.raises(ValueError):
            solver.solve(np.zeros(3))

    def test_linear_operator(self, small_grid, rng):
        solver = GroundedSolver.from_graph(small_grid)
        op = solver.as_linear_operator()
        b = rng.standard_normal(small_grid.num_nodes)
        assert np.allclose(op.matvec(b), solver.solve(b))


class TestConjugateGradient:
    def test_unpreconditioned_converges(self, small_grid, rng):
        laplacian = small_grid.laplacian_matrix()
        b = rng.standard_normal(small_grid.num_nodes)
        report = conjugate_gradient(lambda x: laplacian @ x, b, tol=1e-8)
        assert report.converged
        assert np.linalg.norm(laplacian @ report.solution - project_out_constant(b)) < 1e-5

    def test_jacobi_preconditioner_reduces_iterations(self, medium_grid, rng):
        laplacian = medium_grid.laplacian_matrix()
        b = rng.standard_normal(medium_grid.num_nodes)
        plain = conjugate_gradient(lambda x: laplacian @ x, b, tol=1e-8)
        preconditioned = conjugate_gradient(
            lambda x: laplacian @ x, b, preconditioner=jacobi_preconditioner(laplacian), tol=1e-8
        )
        assert preconditioned.converged
        assert preconditioned.iterations <= plain.iterations + 5

    def test_sparsifier_preconditioner_beats_plain(self, grid_with_sparsifier, rng):
        graph, sparsifier = grid_with_sparsifier
        b = rng.standard_normal(graph.num_nodes)
        plain = PCGSolver(graph).solve(b)
        preconditioned = PCGSolver(graph, sparsifier).solve(b)
        assert preconditioned.converged
        assert preconditioned.iterations < plain.iterations

    def test_zero_rhs(self, small_grid):
        laplacian = small_grid.laplacian_matrix()
        report = conjugate_gradient(lambda x: laplacian @ x, np.zeros(small_grid.num_nodes))
        assert report.converged
        assert report.iterations == 0


class TestEigen:
    def test_path_fiedler_value(self):
        # Path Laplacian eigenvalues are 2 - 2 cos(pi k / n).
        n = 10
        graph = path_graph(n)
        lam2 = smallest_nonzero_eigenvalues(graph, k=1)[0]
        assert lam2 == pytest.approx(2 - 2 * np.cos(np.pi / n), rel=1e-6)

    def test_complete_graph_spectrum(self):
        graph = complete_graph(6)
        eigenvalues, _ = dense_laplacian_spectrum(graph)
        assert eigenvalues[0] == pytest.approx(0.0, abs=1e-9)
        assert np.allclose(eigenvalues[1:], 6.0)

    def test_largest_eigenvalue_bound(self, small_grid):
        # lambda_max <= 2 * max weighted degree.
        lam_max = largest_eigenvalue(small_grid)
        assert lam_max <= 2 * small_grid.weighted_degrees().max() + 1e-9

    def test_fiedler_vector_partitions_path(self):
        vector = fiedler_vector(path_graph(20))
        signs = np.sign(vector)
        # The Fiedler vector of a path changes sign exactly once.
        assert np.count_nonzero(np.diff(signs) != 0) == 1

    def test_spectral_embedding_distances_approximate_resistance(self, small_grid):
        from repro.spectral import ExactResistanceCalculator

        embedding = spectral_embedding(small_grid, dimensions=small_grid.num_nodes - 1)
        calc = ExactResistanceCalculator(small_grid)
        for p, q in [(0, 5), (3, 17), (10, 43)]:
            diff = embedding[p] - embedding[q]
            assert float(diff @ diff) == pytest.approx(calc.resistance(p, q), rel=1e-6)


class TestConditionNumber:
    def test_identity_sparsifier(self, small_grid):
        assert relative_condition_number(small_grid, small_grid) == pytest.approx(1.0, rel=1e-6)

    def test_scaled_sparsifier(self, small_grid):
        scaled = Graph(small_grid.num_nodes, [(u, v, 2.0 * w) for u, v, w in small_grid.weighted_edges()])
        # Uniform scaling by 2 gives lambda in {0.5}, so kappa stays 1.
        assert relative_condition_number(small_grid, scaled) == pytest.approx(1.0, rel=1e-6)

    def test_subgraph_sparsifier_at_least_one(self, grid_with_sparsifier):
        graph, sparsifier = grid_with_sparsifier
        kappa = relative_condition_number(graph, sparsifier)
        assert kappa >= 1.0 - 1e-9

    def test_tree_worse_than_denser_sparsifier(self, medium_grid):
        from repro.sparsify import GrassConfig, GrassSparsifier, maximum_weight_spanning_tree

        tree = maximum_weight_spanning_tree(medium_grid)
        denser = GrassSparsifier(GrassConfig(target_offtree_density=0.3, seed=0)).sparsify(
            medium_grid, evaluate_condition=False
        ).sparsifier
        assert relative_condition_number(medium_grid, tree) > relative_condition_number(medium_grid, denser)

    def test_dense_and_lanczos_paths_agree(self, medium_grid, grid_with_sparsifier):
        graph, sparsifier = grid_with_sparsifier
        dense = condition_estimate(graph, sparsifier, dense_limit=10**6)
        iterative = condition_estimate(graph, sparsifier, dense_limit=1)
        assert iterative.condition_number == pytest.approx(dense.condition_number, rel=0.05)

    def test_epsilon_relation(self, grid_with_sparsifier):
        graph, sparsifier = grid_with_sparsifier
        kappa = relative_condition_number(graph, sparsifier)
        epsilon = spectral_similarity_epsilon(graph, sparsifier)
        assert epsilon == pytest.approx(np.sqrt(kappa), rel=1e-6)

    def test_node_mismatch_raises(self, small_grid):
        with pytest.raises(ValueError):
            relative_condition_number(small_grid, Graph(3, [(0, 1, 1.0), (1, 2, 1.0)]))

    def test_distortion_upper_bound_monotone(self):
        assert condition_number_upper_bound_from_distortions(np.array([])) == 1.0
        small = condition_number_upper_bound_from_distortions(np.array([0.1, 0.2]))
        large = condition_number_upper_bound_from_distortions(np.array([0.1, 0.2, 5.0]))
        assert large > small


class TestPerturbation:
    def test_pair_indicator(self):
        b = pair_indicator(5, 1, 3)
        assert b[1] == 1.0 and b[3] == -1.0 and b.sum() == 0.0
        with pytest.raises(ValueError):
            pair_indicator(5, 2, 2)

    def test_perturbations_sum_to_weight_times_two(self, small_grid):
        # sum_i (u_i^T b)^2 = ||b||^2 = 2, so total perturbation = 2 w.
        deltas = eigenvalue_perturbations(small_grid, 0, 5, weight=3.0)
        assert deltas.sum() == pytest.approx(6.0, rel=1e-9)

    def test_distortion_equals_weight_times_resistance(self, small_grid):
        from repro.spectral import ExactResistanceCalculator

        resistance = ExactResistanceCalculator(small_grid).resistance(2, 9)
        distortion = spectral_distortion_exact(small_grid, 2, 9, weight=2.5)
        assert distortion == pytest.approx(2.5 * resistance, rel=1e-6)

    def test_lemma32_equality(self, small_grid):
        # Sum of relative perturbations equals the spectral distortion (K = N).
        distortion = spectral_distortion_exact(small_grid, 1, 20, weight=1.7)
        total = total_relative_perturbation(small_grid, 1, 20, weight=1.7)
        assert total == pytest.approx(distortion, rel=1e-6)

    def test_weighted_eigensubspace_shape(self, small_grid):
        subspace = weighted_eigensubspace(small_grid, 5)
        assert subspace.shape == (small_grid.num_nodes, 4)
        with pytest.raises(ValueError):
            weighted_eigensubspace(small_grid, 1)

    def test_rank_edges_by_exact_distortion(self, small_grid):
        candidates = [(0, 1, 1.0), (0, small_grid.num_nodes - 1, 1.0)]
        order = rank_edges_by_exact_distortion(small_grid, candidates)
        assert order[0] == 1  # the long-range edge distorts more


class TestQuadraticForms:
    def test_quadratic_form_edges(self):
        graph = Graph(3, [(0, 1, 2.0), (1, 2, 1.0)])
        x = np.array([0.0, 1.0, 3.0])
        assert quadratic_form(graph, x) == pytest.approx(2 * 1 + 1 * 4)

    def test_quadratic_form_wrong_length(self, small_grid):
        with pytest.raises(ValueError):
            quadratic_form(small_grid, np.zeros(3))

    def test_rayleigh_quotient_bounds(self, small_grid, rng):
        x = rng.standard_normal(small_grid.num_nodes)
        value = rayleigh_quotient(small_grid, x)
        assert 0.0 <= value <= largest_eigenvalue(small_grid) + 1e-6

    def test_sample_similarity_lower_bounds_condition(self, grid_with_sparsifier):
        graph, sparsifier = grid_with_sparsifier
        kappa = relative_condition_number(graph, sparsifier)
        sample = sample_similarity(graph, sparsifier, num_probes=16, seed=0)
        assert sample.empirical_condition_number <= kappa * 1.05
        assert sample.min_ratio > 0

    def test_sample_similarity_node_mismatch(self, small_grid):
        with pytest.raises(ValueError):
            sample_similarity(small_grid, Graph(3, [(0, 1, 1.0), (1, 2, 1.0)]))


class TestConditionProperties:
    @given(st.integers(min_value=6, max_value=14), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_adding_edges_to_sparsifier_never_hurts(self, size, seed):
        """Adding a graph edge (with its graph weight) to a subgraph sparsifier
        cannot increase the relative condition number's lambda_max and keeps
        kappa finite."""
        rng = np.random.default_rng(seed)
        graph = grid_circuit_2d(size, seed=seed)
        from repro.sparsify import maximum_weight_spanning_tree, off_tree_edges

        tree = maximum_weight_spanning_tree(graph)
        candidates = off_tree_edges(graph, tree)
        if not candidates:
            return
        kappa_tree = relative_condition_number(graph, tree)
        augmented = tree.copy()
        u, v, w = candidates[int(rng.integers(0, len(candidates)))]
        augmented.add_edge(u, v, w)
        kappa_aug = relative_condition_number(graph, augmented)
        assert kappa_aug <= kappa_tree * (1 + 1e-6)
