"""Equivalence suite for the vectorised batch update engine.

The batched path (``InGrassConfig.batch_mode="vectorized"``) must be a pure
speed transformation of the scalar reference path: identical filter
decisions, identical sparsifier edge sets and near-identical weights (the
aggregated mutations differ only in floating-point association) on every
workload — random streams, locality-biased streams, threshold cuts,
fill caps and full mixed insert/delete scenarios.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    InGrassConfig,
    InGrassSparsifier,
    LRDConfig,
    run_setup,
    run_update,
    score_edges,
    sort_by_distortion,
)
from repro.core.distortion import estimate_distortions, filter_by_threshold
from repro.graphs import Graph, grid_circuit_2d
from repro.graphs.validation import validate_new_edge_arrays, validate_new_edges
from repro.sparsify import GrassConfig, GrassSparsifier
from repro.streams import mixed_edges, random_pair_edges
from repro.streams.scenarios import DynamicScenarioConfig, build_dynamic_scenario


def _sparsify(graph: Graph, density: float = 0.15, seed: int = 0) -> Graph:
    config = GrassConfig(target_offtree_density=density, seed=seed)
    return GrassSparsifier(config).sparsify(graph, evaluate_condition=False).sparsifier


def _assert_same_decisions(scalar_result, vector_result):
    assert len(scalar_result.decisions) == len(vector_result.decisions)
    for expected, actual in zip(scalar_result.decisions, vector_result.decisions):
        assert expected.edge == actual.edge
        assert expected.action == actual.action
        assert expected.target_edge == actual.target_edge
        assert expected.cluster_pair == actual.cluster_pair
        assert expected.distortion == pytest.approx(actual.distortion)
    left, right = scalar_result.summary, vector_result.summary
    assert (left.added, left.merged, left.redistributed, left.dropped) == (
        right.added, right.merged, right.redistributed, right.dropped)


def _assert_same_sparsifier(scalar: Graph, vector: Graph, *, rtol: float = 1e-9):
    assert set(scalar.edges()) == set(vector.edges())
    edges = sorted(scalar.edges())
    scalar_weights = np.array([scalar.weight(u, v) for u, v in edges])
    vector_weights = np.array([vector.weight(u, v) for u, v in edges])
    np.testing.assert_allclose(scalar_weights, vector_weights, rtol=rtol)


def _run_both(graph, sparsifier, stream, *, target=64.0, **config_kwargs):
    """Run one update batch through both engines from identical state."""
    outcomes = {}
    for mode in ("scalar", "vectorized"):
        config = InGrassConfig(lrd=LRDConfig(seed=0), batch_mode=mode, seed=0, **config_kwargs)
        working = sparsifier.copy()
        setup = run_setup(working, config)
        result = run_update(working, setup, stream, config, target_condition_number=target)
        outcomes[mode] = (working, result)
    return outcomes


class TestScoringEquivalence:
    def test_score_edges_matches_estimate_distortions(self, grid_with_sparsifier):
        graph, sparsifier = grid_with_sparsifier
        working = sparsifier.copy()
        setup = run_setup(working, InGrassConfig(lrd=LRDConfig(seed=0)))
        stream = mixed_edges(graph, 200, seed=3)
        batch = score_edges(setup.embedding, stream)
        estimates = estimate_distortions(setup.embedding, stream)
        np.testing.assert_allclose(batch.bounds, [e.resistance_bound for e in estimates])
        np.testing.assert_allclose(batch.distortions, [e.distortion for e in estimates])

    def test_sort_is_stable_like_scalar(self, grid_with_sparsifier):
        graph, sparsifier = grid_with_sparsifier
        working = sparsifier.copy()
        setup = run_setup(working, InGrassConfig(lrd=LRDConfig(seed=0)))
        stream = mixed_edges(graph, 300, seed=4)
        batch = score_edges(setup.embedding, stream).sort()
        estimates = sort_by_distortion(estimate_distortions(setup.embedding, stream))
        assert [batch.edge(i) for i in range(len(batch))] == [e.edge for e in estimates]

    def test_threshold_split_matches_scalar(self, grid_with_sparsifier):
        graph, sparsifier = grid_with_sparsifier
        working = sparsifier.copy()
        setup = run_setup(working, InGrassConfig(lrd=LRDConfig(seed=0)))
        stream = mixed_edges(graph, 300, seed=5)
        batch = score_edges(setup.embedding, stream)
        kept_batch, dropped_batch = batch.split_by_threshold(0.5)
        kept, dropped = filter_by_threshold(estimate_distortions(setup.embedding, stream), 0.5)
        assert [kept_batch.edge(i) for i in range(len(kept_batch))] == [e.edge for e in kept]
        assert [dropped_batch.edge(i) for i in range(len(dropped_batch))] == [e.edge for e in dropped]

    def test_validate_new_edge_arrays_matches_scalar_semantics(self, medium_grid):
        edges = [(3, 7, 1.0), (7, 3, 2.0), (1, 2, 0.5), (3, 7, 0.25)]
        us, vs, ws = validate_new_edge_arrays(medium_grid, edges)
        assert list(zip(us.tolist(), vs.tolist(), ws.tolist())) == [(3, 7, 3.25), (1, 2, 0.5)]
        assert validate_new_edges(medium_grid, edges) == [(3, 7, 3.25), (1, 2, 0.5)]


class TestFilterEquivalence:
    def test_mixed_stream(self, medium_grid):
        sparsifier = _sparsify(medium_grid)
        stream = mixed_edges(medium_grid, 600, long_range_fraction=0.5, seed=11)
        outcomes = _run_both(medium_grid, sparsifier, stream)
        _assert_same_decisions(outcomes["scalar"][1], outcomes["vectorized"][1])
        _assert_same_sparsifier(outcomes["scalar"][0], outcomes["vectorized"][0])

    def test_long_range_stream(self, medium_grid):
        sparsifier = _sparsify(medium_grid)
        stream = random_pair_edges(medium_grid, 400, seed=13)
        outcomes = _run_both(medium_grid, sparsifier, stream)
        _assert_same_decisions(outcomes["scalar"][1], outcomes["vectorized"][1])
        _assert_same_sparsifier(outcomes["scalar"][0], outcomes["vectorized"][0])

    def test_with_distortion_threshold(self, medium_grid):
        sparsifier = _sparsify(medium_grid)
        stream = mixed_edges(medium_grid, 500, seed=17)
        outcomes = _run_both(medium_grid, sparsifier, stream, distortion_threshold=0.4)
        _assert_same_decisions(outcomes["scalar"][1], outcomes["vectorized"][1])
        _assert_same_sparsifier(outcomes["scalar"][0], outcomes["vectorized"][0])
        assert outcomes["scalar"][1].dropped_low_distortion == outcomes["vectorized"][1].dropped_low_distortion
        assert outcomes["vectorized"][1].dropped_low_distortion > 0

    def test_with_fill_cap(self, medium_grid):
        sparsifier = _sparsify(medium_grid)
        stream = random_pair_edges(medium_grid, 500, seed=19)
        outcomes = _run_both(medium_grid, sparsifier, stream, max_fill_fraction=0.05)
        _assert_same_decisions(outcomes["scalar"][1], outcomes["vectorized"][1])
        _assert_same_sparsifier(outcomes["scalar"][0], outcomes["vectorized"][0])
        assert outcomes["vectorized"][1].summary.added <= 25

    def test_duplicate_edges_in_batch(self, medium_grid):
        sparsifier = _sparsify(medium_grid)
        base = random_pair_edges(medium_grid, 120, seed=23)
        stream = base + [(v, u, w / 2) for u, v, w in base[:40]]
        outcomes = _run_both(medium_grid, sparsifier, stream)
        _assert_same_decisions(outcomes["scalar"][1], outcomes["vectorized"][1])
        _assert_same_sparsifier(outcomes["scalar"][0], outcomes["vectorized"][0])

    def test_parallel_conductors_of_sparsifier_edges(self, medium_grid):
        # Streamed edges that duplicate existing sparsifier edges exercise the
        # intra-cluster MERGED branch and the dirty-cluster replay.
        sparsifier = _sparsify(medium_grid)
        existing = list(sparsifier.edges())[:60]
        stream = [(u, v, 0.5) for u, v in existing]
        stream += mixed_edges(medium_grid, 200, long_range_fraction=0.2, seed=29)
        outcomes = _run_both(medium_grid, sparsifier, stream)
        _assert_same_decisions(outcomes["scalar"][1], outcomes["vectorized"][1])
        _assert_same_sparsifier(outcomes["scalar"][0], outcomes["vectorized"][0])

    def test_empty_and_tiny_batches(self, medium_grid):
        sparsifier = _sparsify(medium_grid)
        outcomes = _run_both(medium_grid, sparsifier, [])
        assert outcomes["vectorized"][1].decisions == []
        tiny = random_pair_edges(medium_grid, 3, seed=31)
        outcomes = _run_both(medium_grid, sparsifier, tiny)
        _assert_same_decisions(outcomes["scalar"][1], outcomes["vectorized"][1])
        _assert_same_sparsifier(outcomes["scalar"][0], outcomes["vectorized"][0])

    def test_auto_mode_dispatches_by_batch_size(self, medium_grid):
        config = InGrassConfig(batch_mode="auto", batch_mode_threshold=64)
        assert not config.use_vectorized(10)
        assert config.use_vectorized(64)
        assert InGrassConfig(batch_mode="vectorized").use_vectorized(1)
        assert not InGrassConfig(batch_mode="scalar").use_vectorized(10**6)
        with pytest.raises(ValueError):
            InGrassConfig(batch_mode="simd")


class TestDriverEquivalence:
    """End-to-end: the InGrassSparsifier driver under both engines."""

    @pytest.mark.parametrize("deletion_fraction", [0.0, 0.35])
    def test_dynamic_scenario(self, deletion_fraction):
        graph = grid_circuit_2d(13, seed=2)
        scenario = build_dynamic_scenario(
            graph,
            DynamicScenarioConfig(
                initial_offtree_density=0.12, final_offtree_density=0.3,
                num_iterations=4, deletion_fraction=deletion_fraction,
                condition_dense_limit=400, seed=2,
            ),
        )
        finals = {}
        for mode in ("scalar", "vectorized"):
            config = InGrassConfig(lrd=LRDConfig(seed=0), batch_mode=mode, seed=0)
            ingrass = InGrassSparsifier(config)
            ingrass.setup(scenario.graph, scenario.initial_sparsifier,
                          target_condition_number=scenario.initial_condition_number)
            for batch in scenario.batches:
                ingrass.update(batch)
            finals[mode] = ingrass
        _assert_same_sparsifier(finals["scalar"].sparsifier, finals["vectorized"].sparsifier)
        assert finals["scalar"].graph == finals["vectorized"].graph
        scalar_history = finals["scalar"].history
        vector_history = finals["vectorized"].history
        for left, right in zip(scalar_history, vector_history):
            assert (left.streamed_edges, left.added_edges, left.merged_edges,
                    left.redistributed_edges, left.dropped_edges, left.removed_edges,
                    left.repair_edges) == (
                right.streamed_edges, right.added_edges, right.merged_edges,
                right.redistributed_edges, right.dropped_edges, right.removed_edges,
                right.repair_edges)

    def test_plain_update_and_mixed_batch_record_identically(self):
        """update(list) and update(MixedBatch(insertions=list)) agree (satellite fix)."""
        from repro.streams import MixedBatch

        graph = grid_circuit_2d(10, seed=4)
        stream = mixed_edges(graph, 40, seed=5)
        records = {}
        for wrap in (False, True):
            config = InGrassConfig(lrd=LRDConfig(seed=0), seed=0, kappa_guard_factor=1.5,
                                   kappa_guard_dense_limit=400)
            ingrass = InGrassSparsifier(config)
            ingrass.setup(graph, _sparsify(graph, seed=4))
            batch = MixedBatch(insertions=list(stream)) if wrap else list(stream)
            result = ingrass.update(batch)
            guard = result.kappa_guard
            assert guard is not None  # the guard runs on both packaging styles
            records[wrap] = ingrass.history[0]
        plain, mixed = records[False], records[True]
        assert (plain.streamed_edges, plain.added_edges, plain.merged_edges,
                plain.redistributed_edges, plain.dropped_edges, plain.repair_edges) == (
            mixed.streamed_edges, mixed.added_edges, mixed.merged_edges,
            mixed.redistributed_edges, mixed.dropped_edges, mixed.repair_edges)


@settings(max_examples=12, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(
    side=st.integers(min_value=6, max_value=12),
    stream_size=st.integers(min_value=1, max_value=300),
    long_range=st.floats(min_value=0.0, max_value=1.0),
    threshold=st.sampled_from([0.0, 0.25, 0.75]),
    fill=st.sampled_from([1.0, 0.5, 0.1]),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_property_batch_equivalence(side, stream_size, long_range, threshold, fill, seed):
    """Random graphs x random streams x random configs: both engines agree."""
    graph = grid_circuit_2d(side, seed=seed % 97)
    sparsifier = _sparsify(graph, density=0.15, seed=seed % 13)
    stream = mixed_edges(graph, stream_size, long_range_fraction=long_range, seed=seed)
    outcomes = _run_both(graph, sparsifier, stream,
                         distortion_threshold=threshold, max_fill_fraction=fill)
    _assert_same_decisions(outcomes["scalar"][1], outcomes["vectorized"][1])
    _assert_same_sparsifier(outcomes["scalar"][0], outcomes["vectorized"][0])
