"""Tests for union-find and connectivity analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, UnionFind, connected_components, is_connected, num_connected_components
from repro.graphs.components import bfs_order, extract_largest_component, largest_component_nodes, spans_graph
from repro.graphs.generators import cycle_graph, path_graph


class TestUnionFind:
    def test_initial_state(self):
        uf = UnionFind(5)
        assert len(uf) == 5
        assert uf.num_sets == 5
        assert not uf.connected(0, 1)

    def test_union_and_find(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.union(1, 0)
        assert uf.num_sets == 4

    def test_set_size(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.set_size(2) == 3
        assert uf.set_size(5) == 1

    def test_labels_compact(self):
        uf = UnionFind(4)
        uf.union(2, 3)
        labels = uf.labels()
        assert labels.shape == (4,)
        assert labels[2] == labels[3]
        assert len(set(labels.tolist())) == 3

    def test_groups(self):
        uf = UnionFind(4)
        uf.union(0, 3)
        groups = uf.groups()
        assert sorted(len(members) for members in groups.values()) == [1, 1, 2]

    def test_roots(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert len(uf.roots()) == 2

    def test_from_labels(self):
        uf = UnionFind.from_labels([0, 0, 1, 1, 2])
        assert uf.num_sets == 3
        assert uf.connected(0, 1)
        assert uf.connected(2, 3)
        assert not uf.connected(1, 2)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_matches_naive_partition(self, unions):
        uf = UnionFind(20)
        naive = {i: {i} for i in range(20)}

        def naive_find(x):
            for root, members in naive.items():
                if x in members:
                    return root
            raise AssertionError

        for a, b in unions:
            uf.union(a, b)
            ra, rb = naive_find(a), naive_find(b)
            if ra != rb:
                naive[ra] |= naive.pop(rb)
        for a in range(20):
            for b in range(20):
                assert uf.connected(a, b) == (naive_find(a) == naive_find(b))


class TestComponents:
    def test_connected_path(self):
        assert is_connected(path_graph(10))
        assert num_connected_components(path_graph(10)) == 1

    def test_disconnected(self):
        graph = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        assert not is_connected(graph)
        assert num_connected_components(graph) == 2
        labels = connected_components(graph)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_empty_graph_connected(self):
        assert is_connected(Graph(0))
        assert num_connected_components(Graph(0)) == 0

    def test_isolated_nodes(self):
        graph = Graph(3, [(0, 1, 1.0)])
        assert num_connected_components(graph) == 2

    def test_largest_component(self):
        graph = Graph(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
        assert largest_component_nodes(graph) == [0, 1, 2]
        sub = extract_largest_component(graph)
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert is_connected(sub)

    def test_bfs_order_starts_at_source(self):
        graph = cycle_graph(6)
        order = bfs_order(graph, source=2)
        assert order[0] == 2
        assert len(order) == 6

    def test_spans_graph(self):
        graph = path_graph(4)
        assert spans_graph(graph, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        assert not spans_graph(graph, [(0, 1, 1.0), (2, 3, 1.0)])
