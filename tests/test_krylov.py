"""Dedicated tests for the Krylov-subspace surrogate eigenvector module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, cycle_graph, path_graph
from repro.spectral import build_krylov_basis, default_krylov_order, krylov_resistance_matrix


class TestDefaultOrder:
    def test_grows_logarithmically(self):
        assert default_krylov_order(2) >= 8
        assert default_krylov_order(1000) <= default_krylov_order(100000)
        assert default_krylov_order(10**9) <= 96

    def test_respects_bounds(self):
        assert default_krylov_order(10, minimum=5, maximum=7) in (5, 6, 7)
        assert default_krylov_order(1) == 8


class TestBuildBasis:
    def test_vectors_are_orthonormal(self, small_grid):
        basis = build_krylov_basis(small_grid, seed=0)
        gram = basis.vectors.T @ basis.vectors
        assert np.allclose(gram, np.eye(basis.order), atol=1e-8)

    def test_vectors_orthogonal_to_constant(self, small_grid):
        basis = build_krylov_basis(small_grid, seed=0)
        column_sums = basis.vectors.sum(axis=0)
        assert np.allclose(column_sums, 0.0, atol=1e-8)

    def test_rayleigh_quotients_nonnegative_and_sorted(self, small_grid):
        basis = build_krylov_basis(small_grid, seed=0)
        assert np.all(basis.rayleigh >= 0.0)
        assert np.all(np.diff(basis.rayleigh) >= -1e-9)

    def test_rayleigh_matches_definition(self, small_grid):
        basis = build_krylov_basis(small_grid, seed=0)
        laplacian = small_grid.laplacian_matrix()
        recomputed = np.einsum("ij,ij->j", basis.vectors, laplacian @ basis.vectors)
        assert np.allclose(recomputed, basis.rayleigh, rtol=1e-6, atol=1e-9)

    def test_requested_order_respected(self, small_grid):
        basis = build_krylov_basis(small_grid, order=10, seed=0)
        assert basis.order <= 10
        assert basis.num_nodes == small_grid.num_nodes

    def test_order_capped_by_graph_size(self):
        graph = path_graph(5)
        basis = build_krylov_basis(graph, order=50, seed=0)
        assert basis.order <= 4

    def test_smallest_ritz_value_approximates_fiedler(self, medium_grid):
        """The smallest Ritz value should land within a factor of the true
        algebraic connectivity (the filter concentrates on the low end)."""
        from repro.spectral import smallest_nonzero_eigenvalues

        basis = build_krylov_basis(medium_grid, seed=0)
        fiedler = smallest_nonzero_eigenvalues(medium_grid, k=1)[0]
        assert basis.rayleigh[0] <= 10 * fiedler
        assert basis.rayleigh[0] >= fiedler * 0.5

    def test_deterministic_for_seed(self, small_grid):
        a = build_krylov_basis(small_grid, seed=3)
        b = build_krylov_basis(small_grid, seed=3)
        assert np.allclose(a.vectors, b.vectors)
        assert np.allclose(a.rayleigh, b.rayleigh)

    def test_rejects_tiny_graph(self):
        with pytest.raises(ValueError):
            build_krylov_basis(Graph(1))

    def test_no_rayleigh_ritz_variant(self, small_grid):
        basis = build_krylov_basis(small_grid, seed=0, rayleigh_ritz=False)
        assert basis.order >= 4
        assert np.all(basis.rayleigh >= 0)


class TestEmbedding:
    def test_embedding_shape_and_distances(self, small_grid):
        basis = build_krylov_basis(small_grid, seed=0)
        embedding = krylov_resistance_matrix(basis)
        assert embedding.shape[0] == small_grid.num_nodes
        # Squared row distance equals the surrogate resistance formula.
        p, q = 0, small_grid.num_nodes - 1
        b = np.zeros(small_grid.num_nodes)
        b[p], b[q] = 1.0, -1.0
        manual = sum(
            float(basis.vectors[:, i] @ b) ** 2 / basis.rayleigh[i]
            for i in range(basis.order)
            if basis.rayleigh[i] > 0
        )
        diff = embedding[p] - embedding[q]
        assert float(diff @ diff) == pytest.approx(manual, rel=1e-6)

    def test_embedding_drops_null_directions(self):
        graph = cycle_graph(8)
        basis = build_krylov_basis(graph, seed=0)
        embedding = krylov_resistance_matrix(basis)
        assert np.all(np.isfinite(embedding))
