"""Tests for the stdlib-asyncio HTTP front end (`repro.server`).

Covers the wire protocol (malformed/oversized requests), the read endpoints'
snapshot pinning, the bounded write queue's backpressure contract (429 /
202-pending), per-request timeouts, concurrent readers during writes (no
torn epochs, writer trajectory bit-exact vs an offline replay), the
kill/restart → bit-exact-resume drill over HTTP, and the adapter-backend
seam behind the empty ``repro[serve]`` extra.
"""

from __future__ import annotations

import contextlib
import json
import socket
import threading
import time

import pytest

from repro.api import (
    InGrassConfig,
    DynamicScenarioConfig,
    ServerBackendUnavailableError,
    ServerConfig,
    ServerRequestError,
    SparsifierClient,
    SparsifierHTTPServer,
    SparsifierService,
    build_churn_scenario,
    connect,
    grid_circuit_2d,
    is_checkpoint,
)
from repro.server.app import batch_from_payload, resolve_backend
from repro.server.http import ProtocolError
from repro.snapshot import SparsifierSnapshot

SEED = 3


@pytest.fixture(scope="module")
def scenario():
    graph = grid_circuit_2d(8, seed=SEED)
    return build_churn_scenario(
        graph, DynamicScenarioConfig(num_iterations=6, deletion_fraction=0.3,
                                     seed=SEED))


def fresh_service(scenario) -> SparsifierService:
    service = SparsifierService(InGrassConfig(seed=SEED))
    service.setup(scenario.graph, scenario.initial_sparsifier,
                  target_condition_number=scenario.initial_condition_number)
    return service


def offline_replay(scenario, batches) -> SparsifierService:
    service = fresh_service(scenario)
    for batch in batches:
        service.apply(batch)
    return service


@contextlib.contextmanager
def running_server(service, **config_kwargs):
    """A started server on an ephemeral port plus one connected client."""
    config = ServerConfig(port=0, **config_kwargs)
    server = SparsifierHTTPServer(service, config).start()
    client = connect(port=server.port)
    try:
        yield server, client
    finally:
        client.close()
        server.stop()


def raw_exchange(port: int, data: bytes) -> bytes:
    """Send raw bytes; read until the server closes (error answers do)."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(data)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def response_status(blob: bytes) -> int:
    return int(blob.split(b" ", 2)[1])


def response_json(blob: bytes) -> dict:
    head, _, body = blob.partition(b"\r\n\r\n")
    assert head
    return json.loads(body.decode("utf-8"))


def sparsifier_edges(client, **kwargs):
    return client.edges(on="sparsifier", **kwargs)["edges"]


# --------------------------------------------------------------------------- #
# Wire protocol
# --------------------------------------------------------------------------- #
class TestWireProtocol:
    @pytest.fixture(scope="class")
    def wire(self, scenario):
        with running_server(fresh_service(scenario),
                            max_header_bytes=4096,
                            max_body_bytes=2048) as pair:
            yield pair

    def test_malformed_request_line_answers_400(self, wire):
        server, _ = wire
        blob = raw_exchange(server.port, b"NOT-HTTP\r\n\r\n")
        assert response_status(blob) == 400
        assert b"Connection: close" in blob

    def test_bad_json_body_answers_400(self, wire):
        server, client = wire
        status, payload = client.request("POST", "/resistance")
        assert status == 400  # empty body -> no 'u' field
        blob = raw_exchange(
            server.port,
            b"POST /resistance HTTP/1.1\r\nConnection: close\r\n"
            b"Content-Length: 9\r\n\r\nnot json!")
        assert response_status(blob) == 400
        assert "not valid JSON" in response_json(blob)["error"]

    def test_non_object_json_answers_400(self, wire):
        server, _ = wire
        blob = raw_exchange(
            server.port,
            b"POST /update HTTP/1.1\r\nConnection: close\r\n"
            b"Content-Length: 7\r\n\r\n[1,2,3]")
        assert response_status(blob) == 400
        assert "JSON object" in response_json(blob)["error"]

    def test_unknown_endpoint_answers_404(self, wire):
        _, client = wire
        status, payload = client.request("GET", "/nope")
        assert status == 404
        assert payload["status"] == 404

    def test_wrong_method_answers_405_with_allow(self, wire):
        server, _ = wire
        blob = raw_exchange(
            server.port,
            b"GET /update HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert response_status(blob) == 405
        assert b"Allow: POST" in blob

    def test_oversized_header_block_answers_431(self, wire):
        server, _ = wire
        filler = b"X-Filler: " + b"a" * 5000 + b"\r\n"
        blob = raw_exchange(server.port,
                            b"GET /health HTTP/1.1\r\n" + filler + b"\r\n")
        assert response_status(blob) == 431

    def test_oversized_body_answers_413_without_buffering(self, wire):
        server, _ = wire
        head = b"POST /update HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"
        blob = raw_exchange(server.port, head)  # body never sent
        assert response_status(blob) == 413

    def test_invalid_content_length_answers_400(self, wire):
        server, _ = wire
        blob = raw_exchange(
            server.port,
            b"POST /update HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert response_status(blob) == 400

    def test_chunked_transfer_answers_501(self, wire):
        server, _ = wire
        blob = raw_exchange(
            server.port,
            b"POST /update HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert response_status(blob) == 501

    def test_keep_alive_serves_many_requests_on_one_connection(self, wire):
        _, client = wire
        first = client.health()
        second = client.epoch()
        third = client.health()
        assert first["status"] == "ok" and third["status"] == "ok"
        assert second["version"] == first["version"]


# --------------------------------------------------------------------------- #
# Payload validation
# --------------------------------------------------------------------------- #
class TestBatchDecoding:
    def test_round_trips_every_event_kind(self):
        batch = batch_from_payload({
            "insertions": [[0, 1, 1.5]],
            "deletions": [[2, 3]],
            "weight_changes": [[4, 5, -0.25]],
        })
        assert batch.insertions == [(0, 1, 1.5)]
        assert batch.deletions == [(2, 3)]
        assert batch.weight_changes == [(4, 5, -0.25)]

    @pytest.mark.parametrize("payload, fragment", [
        ({}, "no events"),
        ({"bogus": []}, "unknown update fields"),
        ({"insertions": "nope"}, "must be a list"),
        ({"insertions": [[1, 2]]}, "entry must be"),
        ({"deletions": [[1, "x"]]}, "invalid"),
    ])
    def test_rejects_malformed_payloads(self, payload, fragment):
        with pytest.raises(ProtocolError) as excinfo:
            batch_from_payload(payload)
        assert excinfo.value.status == 400
        assert fragment in excinfo.value.message


# --------------------------------------------------------------------------- #
# Read endpoints
# --------------------------------------------------------------------------- #
class TestReadEndpoints:
    @pytest.fixture(scope="class")
    def served(self, scenario):
        service = fresh_service(scenario)
        with running_server(service) as (server, client):
            yield service, server, client

    def test_health_reports_queue_and_epoch(self, served):
        service, _, client = served
        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == service.latest_version
        assert health["queue_depth"] == 0
        assert health["draining"] is False

    def test_report_describe_and_full(self, served):
        service, _, client = served
        brief = client.report()
        assert brief["snapshot"]["version"] == service.latest_version
        full = client.report(full=True)
        assert full["report"]["num_nodes"] == service.snapshot().num_nodes

    def test_resistance_matches_direct_snapshot_query(self, served):
        service, _, client = served
        snap = service.snapshot()
        answer = client.resistance(0, 5)
        assert answer["resistance"] == snap.effective_resistance(0, 5)
        many = client.resistance_many([(0, 5), (1, 2)], on="graph")
        assert many["resistances"] == [snap.effective_resistance(0, 5, on="graph"),
                                       snap.effective_resistance(1, 2, on="graph")]

    def test_resistance_validates_target_and_nodes(self, served):
        _, _, client = served
        with pytest.raises(ServerRequestError) as excinfo:
            client.resistance(0, 1, on="bogus")
        assert excinfo.value.status == 400
        with pytest.raises(ServerRequestError) as excinfo:
            client.resistance(0, 10**6)
        assert excinfo.value.status == 400

    def test_solve_matches_direct_snapshot_solve(self, served):
        service, _, client = served
        snap = service.snapshot()
        b = [0.0] * snap.num_nodes
        b[0], b[-1] = 1.0, -1.0
        answer = client.solve(b)
        report = snap.solve(__import__("numpy").asarray(b))
        assert answer["converged"] is True
        assert answer["iterations"] == report.iterations
        assert answer["x"] == report.solution.tolist()

    def test_solve_rejects_wrong_length(self, served):
        _, _, client = served
        with pytest.raises(ServerRequestError) as excinfo:
            client.solve([1.0, -1.0])
        assert excinfo.value.status == 400

    def test_metrics_expose_histograms_and_gauges(self, served):
        _, _, client = served
        client.health()
        metrics = client.metrics()
        assert metrics["requests_total"] >= 1
        assert "GET /health" in metrics["endpoints"]
        health_stats = metrics["endpoints"]["GET /health"]
        assert health_stats["latency"]["count"] >= 1
        assert health_stats["statuses"].get("200", 0) >= 1
        assert metrics["gauges"]["queue_bound"] == 64


# --------------------------------------------------------------------------- #
# Write path
# --------------------------------------------------------------------------- #
class TestWritePath:
    def test_served_writes_match_offline_replay(self, scenario):
        offline = offline_replay(scenario, scenario.batches)
        service = fresh_service(scenario)
        with running_server(service) as (_, client):
            for batch in scenario.batches:
                answer = client.update_batch(batch)
                assert answer["applied"] is True
            assert client.epoch()["version"] == offline.latest_version
            served = sparsifier_edges(client)
        snap = offline.snapshot()
        us, vs, ws = snap.sparsifier_arrays()
        expected = [[int(u), int(v), float(w)] for u, v, w in zip(us, vs, ws)]
        assert served == expected

    def test_remove_and_reweight_endpoints(self, scenario):
        service = fresh_service(scenario)
        offline = fresh_service(scenario)
        us, vs, ws = offline.snapshot().graph_arrays()
        victim = (int(us[0]), int(vs[0]))
        target = (int(us[1]), int(vs[1]), float(ws[1]) * 0.5)
        with running_server(service) as (_, client):
            removed = client.remove([victim])
            assert removed["applied"] is True and removed["events"] == 1
            changed = client.reweight([target])
            assert changed["applied"] is True
        offline.remove([victim])
        offline.reweight([target])
        assert service.latest_version == offline.latest_version
        assert (dict(service.driver.sparsifier._edges)
                == dict(offline.driver.sparsifier._edges))

    def test_version_pinned_reads_survive_writes(self, scenario):
        service = fresh_service(scenario)
        with running_server(service) as (_, client):
            # An unpinned read captures (and retains) the epoch-1 snapshot;
            # pinned reads can then address it by version after writes land.
            before = sparsifier_edges(client)
            client.update_batch(scenario.batches[0])
            pinned = sparsifier_edges(client, version=1)
            assert pinned == before
            latest = client.edges()
            assert latest["version"] == 2

    def test_empty_update_answers_400(self, scenario):
        with running_server(fresh_service(scenario)) as (_, client):
            status, payload = client.request("POST", "/update", {})
            assert status == 400
            assert "no events" in payload["error"]

    def test_backpressure_202_then_429_when_queue_fills(self, scenario, monkeypatch):
        service = fresh_service(scenario)
        slow_apply = service.apply

        def stalled(batch):
            time.sleep(0.8)
            return slow_apply(batch)

        monkeypatch.setattr(service, "apply", stalled)
        with running_server(service, queue_bound=1, request_timeout=0.15,
                            retry_after=0.5) as (server, client):
            first = client.update_batch(scenario.batches[0])
            assert first == {"applied": False, "pending": True,
                             "operation": "update",
                             "detail": first["detail"]}
            second = client.update_batch(scenario.batches[1])
            assert second["pending"] is True
            with pytest.raises(ServerRequestError) as excinfo:
                client.update_batch(scenario.batches[2])
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after == 0.5
            # Pending writes drain in order during graceful shutdown.
        assert service.applied_batches == 2
        assert service.latest_version == 3
        assert server.metrics.rejected_writes == 1

    def test_slow_read_answers_504(self, scenario, monkeypatch):
        def glacial(self, u, v, *, on="sparsifier"):
            time.sleep(1.0)
            return 0.0

        monkeypatch.setattr(SparsifierSnapshot, "effective_resistance", glacial)
        with running_server(fresh_service(scenario),
                            request_timeout=0.1) as (_, client):
            with pytest.raises(ServerRequestError) as excinfo:
                client.resistance(0, 1)
            assert excinfo.value.status == 504
            metrics = client.metrics()
            assert metrics["timeouts_total"] == 1


# --------------------------------------------------------------------------- #
# Concurrent readers during writes
# --------------------------------------------------------------------------- #
class TestConcurrentReaders:
    def test_no_torn_epochs_and_writer_stays_bit_exact(self, scenario):
        offline = offline_replay(scenario, scenario.batches)
        service = fresh_service(scenario)
        errors: list = []
        versions_seen: list = []
        stop = threading.Event()

        def reader() -> None:
            with connect(port=port) as reader_client:
                while not stop.is_set():
                    try:
                        answer = reader_client.resistance(0, 7)
                        version = answer["version"]
                        edges = sparsifier_edges(reader_client, version=version)
                        versions_seen.append(version)
                        # The pinned re-read proves the epoch was not torn:
                        # the same version must answer with identical state.
                        again = sparsifier_edges(reader_client, version=version)
                        if again != edges:
                            errors.append(f"torn epoch at version {version}")
                    except ServerRequestError as exc:
                        if exc.status != 404:  # 404: version evicted, benign
                            errors.append(repr(exc))
                    except Exception as exc:  # noqa: BLE001 - collected for the assert
                        errors.append(repr(exc))

        with running_server(service) as (server, client):
            port = server.port
            threads = [threading.Thread(target=reader) for _ in range(2)]
            for thread in threads:
                thread.start()
            try:
                for batch in scenario.batches:
                    assert client.update_batch(batch)["applied"] is True
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30)
            final = sparsifier_edges(client)
        assert errors == []
        assert versions_seen, "readers never completed a query"
        assert all(1 <= v <= offline.latest_version for v in versions_seen)
        snap = offline.snapshot()
        us, vs, ws = snap.sparsifier_arrays()
        assert final == [[int(u), int(v), float(w)] for u, v, w in zip(us, vs, ws)]


# --------------------------------------------------------------------------- #
# Checkpoint / restart drill
# --------------------------------------------------------------------------- #
class TestRestartDrill:
    def test_graceful_shutdown_saves_checkpoint_and_resume_is_bit_exact(
            self, scenario, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        offline = offline_replay(scenario, scenario.batches)
        half = len(scenario.batches) // 2

        service = fresh_service(scenario)
        config = ServerConfig(port=0, checkpoint_dir=str(checkpoint_dir))
        server = SparsifierHTTPServer(service, config).start()
        client = connect(port=server.port)
        for batch in scenario.batches[:half]:
            client.update_batch(batch)
        mid_epoch = client.epoch()["version"]
        answer = client.shutdown()  # drains + saves the shutdown checkpoint
        assert answer["status"] == "shutting-down"
        server.stop()
        assert is_checkpoint(checkpoint_dir)

        restored = SparsifierService.restore(checkpoint_dir)
        assert restored.latest_version == mid_epoch
        with running_server(restored) as (_, resumed_client):
            for batch in scenario.batches[half:]:
                resumed_client.update_batch(batch)
            assert resumed_client.epoch()["version"] == offline.latest_version
            final = sparsifier_edges(resumed_client)
            final_graph = resumed_client.edges(on="graph")["edges"]
        snap = offline.snapshot()
        us, vs, ws = snap.sparsifier_arrays()
        assert final == [[int(u), int(v), float(w)] for u, v, w in zip(us, vs, ws)]
        gus, gvs, gws = snap.graph_arrays()
        assert final_graph == [[int(u), int(v), float(w)]
                               for u, v, w in zip(gus, gvs, gws)]

    def test_checkpoint_endpoint_lands_between_batches(self, scenario, tmp_path):
        mid_dir = tmp_path / "mid"
        service = fresh_service(scenario)
        with running_server(service) as (_, client):
            client.update_batch(scenario.batches[0])
            answer = client.checkpoint(str(mid_dir))
            assert answer["checkpointed"] is True
            assert answer["version"] == 2
            client.update_batch(scenario.batches[1])
        assert is_checkpoint(mid_dir)
        restored = SparsifierService.restore(mid_dir)
        reference = offline_replay(scenario, scenario.batches[:1])
        assert restored.latest_version == 2
        assert (dict(restored.driver.sparsifier._edges)
                == dict(reference.driver.sparsifier._edges))

    def test_checkpoint_without_path_or_config_answers_400(self, scenario):
        with running_server(fresh_service(scenario)) as (_, client):
            with pytest.raises(ServerRequestError) as excinfo:
                client.checkpoint()
            assert excinfo.value.status == 400


# --------------------------------------------------------------------------- #
# Backend seam + configuration
# --------------------------------------------------------------------------- #
class TestBackendSeam:
    def test_asyncio_resolves(self):
        assert resolve_backend("asyncio") == "asyncio"

    @pytest.mark.parametrize("backend", ["fastapi", "aiohttp"])
    def test_adapter_backends_fail_actionably(self, backend):
        with pytest.raises(ServerBackendUnavailableError) as excinfo:
            resolve_backend(backend)
        message = str(excinfo.value)
        assert "repro[serve]" in message or "adapter" in message
        assert "asyncio" in message

    def test_unknown_backend_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown server backend"):
            resolve_backend("twisted")

    def test_config_validates_at_construction(self):
        with pytest.raises(ServerBackendUnavailableError):
            ServerConfig(backend="fastapi")
        with pytest.raises(ValueError):
            ServerConfig(queue_bound=0)
        with pytest.raises(ValueError):
            ServerConfig(request_timeout=0.0)


# --------------------------------------------------------------------------- #
# Client behaviour
# --------------------------------------------------------------------------- #
class TestClient:
    def test_error_carries_status_and_payload(self):
        error = ServerRequestError(429, {"error": "full", "status": 429,
                                         "retry_after": 2.5})
        assert error.status == 429
        assert error.retry_after == 2.5
        assert "full" in str(error)
        assert ServerRequestError(404, {"error": "x"}).retry_after is None

    def test_client_reconnects_after_server_side_close(self, scenario):
        with running_server(fresh_service(scenario),
                            keep_alive_timeout=0.2) as (_, client):
            first = client.health()
            time.sleep(0.6)  # idle long enough for the server to drop the socket
            second = client.health()  # must transparently reconnect
            assert second["version"] == first["version"]

    def test_failed_retry_leaves_client_reusable(self):
        # Against a dead port every attempt must surface a clean, retryable
        # OSError — a half-sent HTTPConnection left behind by the reconnect
        # path would wedge the next call in http.client.CannotSendRequest.
        client = connect(port=1, timeout=2.0)
        for _ in range(2):
            with pytest.raises(OSError):
                client.health()

    def test_context_manager_closes(self, scenario):
        with running_server(fresh_service(scenario)) as (server, _):
            with connect(port=server.port) as client:
                assert client.health()["status"] == "ok"
            assert client._conn is None
