"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    cycle_graph,
    delaunay_graph,
    fe_mesh_2d,
    grid_circuit_2d,
    paper_figure2_graph,
    path_graph,
)
from repro.sparsify import GrassConfig, GrassSparsifier


@pytest.fixture
def triangle() -> Graph:
    """Unit-weight triangle: the smallest graph with a cycle."""
    return cycle_graph(3)


@pytest.fixture
def small_path() -> Graph:
    """A 5-node path with weight 2 edges."""
    return path_graph(5, weight=2.0)


@pytest.fixture
def small_grid() -> Graph:
    """An 8x8 weighted resistor grid (64 nodes) used across unit tests."""
    return grid_circuit_2d(8, seed=7)


@pytest.fixture
def medium_grid() -> Graph:
    """A 15x15 weighted resistor grid (225 nodes) for integration tests."""
    return grid_circuit_2d(15, seed=3)


@pytest.fixture
def small_mesh() -> Graph:
    """A small unit-weight FE-style mesh."""
    return fe_mesh_2d(144, seed=5)


@pytest.fixture
def small_delaunay() -> Graph:
    """A small Delaunay graph."""
    return delaunay_graph(120, seed=11)


@pytest.fixture
def figure2_graph() -> Graph:
    """The 14-node example from the paper's Figures 2/3."""
    return paper_figure2_graph()


@pytest.fixture
def grid_with_sparsifier(medium_grid):
    """A (graph, sparsifier) pair at roughly 20% off-tree density."""
    config = GrassConfig(target_offtree_density=0.2, seed=1)
    sparsifier = GrassSparsifier(config).sparsify(medium_grid, evaluate_condition=False).sparsifier
    return medium_grid, sparsifier


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for test-local randomness."""
    return np.random.default_rng(12345)
