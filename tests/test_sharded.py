"""Tests of the sharded update engine (``repro.core.sharding``).

The heart of the suite is the shard-count invariance property: for any
``num_shards`` and ``shard_mode`` the sharded driver must produce the same
sparsifier — edge set *and* weights — the same filter decisions and the same
κ history as the unsharded oracle, on mixed insert/delete/reweight churn
streams in both hierarchy modes.  Around it sit unit tests of the
:class:`ShardPlan` partition invariants, the cross-shard escrow stage, the
:class:`MixedBatch` routing helper, the incremental cluster→members index
and the maintenance-aware κ guard pool.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InGrassConfig, LRDConfig
from repro.core.filtering import SimilarityFilter
from repro.core.incremental import InGrassSparsifier
from repro.core.setup import run_setup
from repro.core.sharding import (
    ESCROW,
    ReplanPolicy,
    ShardedRemovalResult,
    ShardedSparsifier,
    ShardPlan,
)
from repro.core.update import run_kappa_guard, run_removal
from repro.graphs.generators import grid_circuit_2d
from repro.sparsify.grass import GrassConfig, GrassSparsifier
from repro.streams.edge_stream import MixedBatch
from repro.streams.scenarios import DynamicScenarioConfig, build_dynamic_scenario

DENSE_LIMIT = 600


def make_config(num_shards=1, executor="serial", hierarchy_mode="rebuild", **kwargs):
    return InGrassConfig(
        lrd=LRDConfig(seed=0),
        kappa_guard_dense_limit=DENSE_LIMIT,
        hierarchy_mode=hierarchy_mode,
        num_shards=num_shards,
        executor=executor,
        shard_batch_threshold=0,
        seed=0,
        **kwargs,
    )


@pytest.fixture(scope="module")
def churn_scenario():
    graph = grid_circuit_2d(13, seed=3)
    return build_dynamic_scenario(
        graph,
        DynamicScenarioConfig(
            initial_offtree_density=0.10, final_offtree_density=0.40,
            num_iterations=5, deletion_fraction=0.3,
            condition_dense_limit=DENSE_LIMIT, seed=0,
        ),
    )


def run_stream(scenario, config):
    driver = InGrassSparsifier.from_config(config)
    driver.setup(scenario.graph, scenario.initial_sparsifier,
                 target_condition_number=scenario.initial_condition_number)
    decision_log = []
    kappa_log = []
    for batch in scenario.batches:
        result = driver.update(batch)
        insertion = getattr(result, "insertion", result)
        if insertion is not None:
            for decision in insertion.decisions:
                decision_log.append((decision.edge[:2], decision.action, decision.target_edge))
        guard = getattr(result, "kappa_guard", None)
        if guard is not None:
            kappa_log.append((round(guard.kappa_before, 9), round(guard.kappa_after, 9),
                              tuple(sorted((u, v) for u, v, _ in guard.added_edges))))
    return driver, decision_log, kappa_log


def history_fingerprint(driver):
    return [
        (r.streamed_edges, r.added_edges, r.merged_edges, r.redistributed_edges,
         r.dropped_edges, r.removed_edges, r.repair_edges, r.reweighted_edges,
         r.filtering_level, r.sparsifier_edges)
        for r in driver.history
    ]


# --------------------------------------------------------------------------- #
# ShardPlan
# --------------------------------------------------------------------------- #
class TestShardPlan:
    @pytest.fixture(scope="class")
    def setup_result(self):
        graph = grid_circuit_2d(13, seed=3)
        sparsifier = GrassSparsifier(GrassConfig(target_offtree_density=0.15, seed=1)).sparsify(
            graph, evaluate_condition=False).sparsifier
        return run_setup(sparsifier, InGrassConfig(lrd=LRDConfig(seed=0)))

    def test_single_shard_covers_everything(self, setup_result):
        plan = ShardPlan.from_hierarchy(setup_result.hierarchy, 1)
        assert plan.num_shards == 1
        assert np.all(plan.node_shard == 0)
        assert plan.is_consistent(setup_result.hierarchy)

    @pytest.mark.parametrize("num_shards", [2, 3, 4])
    def test_clusters_never_straddle_shards(self, setup_result, num_shards):
        hierarchy = setup_result.hierarchy
        plan = ShardPlan.from_hierarchy(hierarchy, num_shards)
        assert plan.is_consistent(hierarchy)
        # The invariant must hold at the partition level AND every finer one
        # (nesting): a cluster maps to exactly one shard.
        for level_index in range(plan.partition_level + 1):
            labels = hierarchy.level(level_index).labels
            for cluster in np.unique(labels):
                members = np.flatnonzero(labels == cluster)
                assert len(set(plan.node_shard[members].tolist())) == 1

    def test_partition_respects_filtering_level(self, setup_result):
        level = setup_result.hierarchy.filtering_level_for_condition(64.0)
        plan = ShardPlan.from_hierarchy(setup_result.hierarchy, 4, min_level=level)
        assert plan.partition_level >= level

    def test_shards_are_populated_and_balanced(self, setup_result):
        plan = ShardPlan.from_hierarchy(setup_result.hierarchy, 2)
        sizes = plan.shard_sizes()
        assert sizes.shape[0] == plan.num_shards
        assert np.all(sizes > 0)
        # Greedy packing of the partition level's clusters cannot be worse
        # than one whole cluster of imbalance.
        level = setup_result.hierarchy.level(plan.partition_level)
        biggest_cluster = int(np.bincount(level.labels).max())
        assert int(sizes.max()) - int(sizes.min()) <= biggest_cluster

    def test_shard_of_pairs_marks_cross_shard(self, setup_result):
        plan = ShardPlan.from_hierarchy(setup_result.hierarchy, 2)
        nodes = np.arange(setup_result.hierarchy.num_nodes)
        shard0 = nodes[plan.node_shard == 0]
        shard1 = nodes[plan.node_shard == 1]
        us = np.array([shard0[0], shard0[0], shard1[0]])
        vs = np.array([shard0[1], shard1[0], shard1[1]])
        shards = plan.shard_of_pairs(us, vs)
        assert shards[0] == 0
        assert shards[1] == ESCROW
        assert shards[2] == 1
        assert plan.shard_of_edge(int(shard0[0]), int(shard1[0])) == ESCROW


# --------------------------------------------------------------------------- #
# Scoped filters and the escrow stage
# --------------------------------------------------------------------------- #
class TestScopedFiltersAndEscrow:
    @pytest.fixture()
    def sharded(self, churn_scenario):
        driver = ShardedSparsifier(make_config(num_shards=2))
        driver.setup(churn_scenario.graph, churn_scenario.initial_sparsifier,
                     target_condition_number=churn_scenario.initial_condition_number)
        return driver

    def test_views_partition_the_global_map(self, sharded):
        """Shard + escrow buckets tile the unsharded filter's buckets exactly."""
        level = sharded.contexts[0].filter.filtering_level
        reference = SimilarityFilter(sharded.sparsifier, sharded.setup_result.hierarchy, level)
        merged_connectivity = {}
        merged_intra = {}
        for view in [context.filter for context in sharded.contexts] + [sharded.escrow.filter]:
            for pair, bucket in view._connectivity.items():
                assert pair not in merged_connectivity, "bucket owned by two views"
                merged_connectivity[pair] = dict(bucket)
            for cluster, bucket in view._intra_cluster_edges.items():
                assert cluster not in merged_intra, "intra bucket owned by two views"
                merged_intra[cluster] = dict(bucket)
        assert merged_connectivity == reference._connectivity
        assert merged_intra == dict(reference._intra_cluster_edges)

    def test_cross_shard_insertion_lands_in_escrow(self, sharded):
        plan = sharded.plan
        graph = sharded.graph
        nodes = np.arange(graph.num_nodes)
        shard0 = nodes[plan.node_shard == 0]
        shard1 = nodes[plan.node_shard == 1]
        edge = None
        for u in shard0.tolist():
            for v in shard1.tolist():
                if not graph.has_edge(u, v):
                    edge = (u, v, 1.0)
                    break
            if edge:
                break
        assert edge is not None
        result = sharded.update([edge])
        assert result.shard_report is not None
        assert result.shard_report.escrow_events == 1
        assert sum(result.shard_report.shard_events) == 0
        key = (min(edge[0], edge[1]), max(edge[0], edge[1]))
        if result.summary.added:
            assert sharded.escrow.filter.owns_edge(*key)
            owned = [k for bucket in sharded.escrow.filter._connectivity.values() for k in bucket]
            assert key in owned
            for context in sharded.contexts:
                assert not context.filter.owns_edge(*key)

    def test_intra_shard_insertions_avoid_escrow(self, sharded):
        plan = sharded.plan
        graph = sharded.graph
        shard0 = np.flatnonzero(plan.node_shard == 0).tolist()
        edge = None
        for u in shard0:
            for v in shard0:
                if u < v and not graph.has_edge(u, v):
                    edge = (u, v, 1.0)
                    break
            if edge:
                break
        assert edge is not None
        result = sharded.update([edge])
        assert result.shard_report is not None
        assert result.shard_report.escrow_events == 0
        assert result.shard_report.shard_events[0] == 1

    def test_factory_dispatches_on_num_shards(self):
        assert isinstance(InGrassSparsifier.from_config(make_config(num_shards=1)),
                          InGrassSparsifier)
        sharded = InGrassSparsifier.from_config(make_config(num_shards=3))
        assert isinstance(sharded, ShardedSparsifier)


# --------------------------------------------------------------------------- #
# MixedBatch shard routing
# --------------------------------------------------------------------------- #
class TestMixedBatchRouting:
    def test_split_by_shard_routes_every_event(self):
        node_shard = np.array([0, 0, 1, 1])
        batch = MixedBatch(
            insertions=[(0, 1, 1.0), (0, 2, 2.0), (2, 3, 3.0)],
            deletions=[(0, 1), (1, 3)],
            weight_changes=[(2, 3, 0.5)],
        )
        shards, escrow = batch.split_by_shard(node_shard)
        assert len(shards) == 2
        assert shards[0].insertions == [(0, 1, 1.0)]
        assert shards[1].insertions == [(2, 3, 3.0)]
        assert escrow.insertions == [(0, 2, 2.0)]
        assert shards[0].deletions == [(0, 1)]
        assert escrow.deletions == [(1, 3)]
        assert shards[1].weight_changes == [(2, 3, 0.5)]
        routed = sum(b.num_events for b in shards) + escrow.num_events
        assert routed == batch.num_events


# --------------------------------------------------------------------------- #
# The execution API: executor enum, shard_mode alias, serial fallback
# --------------------------------------------------------------------------- #
class TestExecutorApi:
    def test_executor_is_validated(self):
        with pytest.raises(ValueError):
            InGrassConfig(executor="fork-bomb")
        for name in ("auto", "serial", "threads", "processes"):
            assert InGrassConfig(executor=name).executor == name

    def test_shard_mode_alias_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="shard_mode"):
            config = InGrassConfig(shard_mode="threads")
        assert config.executor == "threads"
        assert config.shard_mode == "threads"

    def test_executor_does_not_warn(self, recwarn):
        config = InGrassConfig(executor="processes")
        deprecations = [w for w in recwarn if issubclass(w.category, DeprecationWarning)]
        assert not deprecations
        # The legacy field mirrors the new one so old readers keep working.
        assert config.shard_mode == "processes"

    def test_unavailable_executor_falls_back_to_serial(self, churn_scenario,
                                                       monkeypatch, caplog):
        """A backend that cannot start degrades with a warning, not a crash."""
        from repro.core import sharding as sharding_module
        from repro.core.executors import ExecutorUnavailableError

        class BrokenExecutor:
            def __init__(self, *args, **kwargs):
                raise ExecutorUnavailableError("no worker processes today")

        monkeypatch.setattr(sharding_module, "ProcessShardExecutor", BrokenExecutor)
        oracle, oracle_decisions, _ = run_stream(
            churn_scenario, make_config(kappa_guard_factor=1.8))
        config = make_config(num_shards=2, executor="processes", kappa_guard_factor=1.8)
        with caplog.at_level("WARNING", logger="repro.core.sharding"):
            driver, decisions, _ = run_stream(churn_scenario, config)
        assert driver._process_failed
        assert "falling back to serial" in caplog.text
        # The degraded run still delivers the oracle guarantee.
        assert dict(driver.sparsifier._edges) == dict(oracle.sparsifier._edges)
        assert sorted(decisions, key=repr) == sorted(oracle_decisions, key=repr)


# --------------------------------------------------------------------------- #
# Shard-count invariance (the oracle guarantee)
# --------------------------------------------------------------------------- #
class TestShardParity:
    @pytest.fixture(scope="class")
    def oracles(self, churn_scenario):
        outcomes = {}
        for hierarchy_mode in ("rebuild", "maintain"):
            config = make_config(hierarchy_mode=hierarchy_mode, kappa_guard_factor=1.8)
            outcomes[hierarchy_mode] = run_stream(churn_scenario, config)
        return outcomes

    @pytest.mark.parametrize("hierarchy_mode", ["rebuild", "maintain"])
    @pytest.mark.parametrize("num_shards,executor",
                             [(2, "serial"), (4, "serial"), (2, "threads"),
                              (1, "processes"), (2, "processes"), (4, "processes")])
    def test_stream_invariance(self, churn_scenario, oracles, hierarchy_mode, num_shards, executor):
        oracle, oracle_decisions, oracle_kappa = oracles[hierarchy_mode]
        config = make_config(num_shards=num_shards, executor=executor,
                             hierarchy_mode=hierarchy_mode, kappa_guard_factor=1.8)
        driver, decisions, kappa = run_stream(churn_scenario, config)
        # Bit-exact sparsifier: same edge set, same weights.
        assert dict(driver.sparsifier._edges) == dict(oracle.sparsifier._edges)
        # Same per-edge filter decisions (order-free comparison: the sharded
        # engine reports shard sub-batches back to back).
        assert sorted(decisions, key=repr) == sorted(oracle_decisions, key=repr)
        # Same per-iteration history and κ-guard trajectory.
        assert history_fingerprint(driver) == history_fingerprint(oracle)
        assert kappa == oracle_kappa

    def test_insertion_only_batches_match(self, churn_scenario):
        """Plain insertion lists (the paper's protocol) shard identically too."""
        insertions = [edge for batch in churn_scenario.batches for edge in batch.insertions]
        oracle = InGrassSparsifier(make_config())
        sharded = ShardedSparsifier(make_config(num_shards=3))
        processes = ShardedSparsifier(make_config(num_shards=2, executor="processes"))
        for driver in (oracle, sharded, processes):
            driver.setup(churn_scenario.graph, churn_scenario.initial_sparsifier,
                         target_condition_number=churn_scenario.initial_condition_number)
            driver.update(insertions)
        assert dict(sharded.sparsifier._edges) == dict(oracle.sparsifier._edges)
        assert dict(processes.sparsifier._edges) == dict(oracle.sparsifier._edges)

    def test_distortion_threshold_uses_global_median(self, churn_scenario):
        """The relative threshold cut is shard-count invariant (global median)."""
        insertions = [edge for batch in churn_scenario.batches for edge in batch.insertions]
        oracle = InGrassSparsifier(make_config(distortion_threshold=0.8))
        sharded = ShardedSparsifier(make_config(num_shards=3, distortion_threshold=0.8))
        results = []
        for driver in (oracle, sharded):
            driver.setup(churn_scenario.graph, churn_scenario.initial_sparsifier,
                         target_condition_number=churn_scenario.initial_condition_number)
            results.append(driver.update(insertions))
        assert results[0].dropped_low_distortion > 0
        assert results[1].dropped_low_distortion == results[0].dropped_low_distortion
        assert dict(sharded.sparsifier._edges) == dict(oracle.sparsifier._edges)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           num_shards=st.integers(min_value=2, max_value=5))
    def test_property_churn_invariance(self, seed, num_shards):
        graph = grid_circuit_2d(9, seed=5)
        scenario = build_dynamic_scenario(
            graph,
            DynamicScenarioConfig(
                initial_offtree_density=0.12, final_offtree_density=0.45,
                num_iterations=3, deletion_fraction=0.35,
                condition_dense_limit=DENSE_LIMIT, seed=seed,
            ),
        )
        oracle_cfg = make_config(hierarchy_mode="maintain")
        shard_cfg = make_config(num_shards=num_shards, hierarchy_mode="maintain")
        oracle, oracle_decisions, _ = run_stream(scenario, oracle_cfg)
        driver, decisions, _ = run_stream(scenario, shard_cfg)
        assert dict(driver.sparsifier._edges) == dict(oracle.sparsifier._edges)
        assert sorted(decisions, key=repr) == sorted(oracle_decisions, key=repr)
        assert history_fingerprint(driver) == history_fingerprint(oracle)


# --------------------------------------------------------------------------- #
# Sharded removal pipeline (deletion-heavy, splice-triggering streams)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def deletion_heavy_scenario():
    """A stream where most events delete edges — exercising the sharded drop
    stage, weight re-homing and (in maintain mode) cluster splices."""
    graph = grid_circuit_2d(13, seed=3)
    return build_dynamic_scenario(
        graph,
        DynamicScenarioConfig(
            initial_offtree_density=0.10, final_offtree_density=0.45,
            num_iterations=6, deletion_fraction=0.6,
            condition_dense_limit=DENSE_LIMIT, seed=2,
        ),
    )


class TestShardedRemoval:
    @pytest.fixture(scope="class")
    def oracles(self, deletion_heavy_scenario):
        outcomes = {}
        for hierarchy_mode in ("rebuild", "maintain"):
            config = make_config(hierarchy_mode=hierarchy_mode, kappa_guard_factor=1.8)
            outcomes[hierarchy_mode] = run_stream(deletion_heavy_scenario, config)
        return outcomes

    @pytest.mark.parametrize("hierarchy_mode", ["rebuild", "maintain"])
    @pytest.mark.parametrize("num_shards,executor",
                             [(2, "serial"), (4, "serial"), (2, "threads"), (3, "threads"),
                              (2, "processes"), (4, "processes")])
    def test_deletion_heavy_parity(self, deletion_heavy_scenario, oracles,
                                   hierarchy_mode, num_shards, executor):
        """Bit-exact oracle parity on deletion-heavy mixed streams."""
        oracle, oracle_decisions, oracle_kappa = oracles[hierarchy_mode]
        config = make_config(num_shards=num_shards, executor=executor,
                             hierarchy_mode=hierarchy_mode, kappa_guard_factor=1.8)
        driver, decisions, kappa = run_stream(deletion_heavy_scenario, config)
        assert dict(driver.sparsifier._edges) == dict(oracle.sparsifier._edges)
        assert sorted(decisions, key=repr) == sorted(oracle_decisions, key=repr)
        assert history_fingerprint(driver) == history_fingerprint(oracle)
        assert kappa == oracle_kappa
        if hierarchy_mode == "maintain":
            # The stream must actually exercise the splice path for this
            # parity statement to mean anything.
            assert driver.maintenance_stats.splices > 0

    def test_pure_deletion_batch_routes_per_shard(self, deletion_heavy_scenario):
        """``remove()`` reports per-shard routing; every pair lands somewhere."""
        driver = ShardedSparsifier(make_config(num_shards=2))
        driver.setup(deletion_heavy_scenario.graph,
                     deletion_heavy_scenario.initial_sparsifier,
                     target_condition_number=deletion_heavy_scenario.initial_condition_number)
        deletions = deletion_heavy_scenario.batches[0].deletions
        assert deletions, "scenario batch must carry deletions"
        result = driver.remove(deletions)
        assert isinstance(result, ShardedRemovalResult)
        report = result.shard_report
        assert report is not None
        assert len(report.shard_events) == driver.num_shards
        assert sum(report.shard_events) + report.escrow_events == len(result.requested)

    def test_threaded_removal_stage_matches_serial(self, deletion_heavy_scenario):
        """Forcing the drop stage onto the thread pool changes nothing."""
        outcomes = []
        for executor in ("serial", "threads"):
            driver = ShardedSparsifier(make_config(num_shards=3, executor=executor,
                                                   hierarchy_mode="maintain"))
            driver.setup(deletion_heavy_scenario.graph,
                         deletion_heavy_scenario.initial_sparsifier,
                         target_condition_number=deletion_heavy_scenario.initial_condition_number)
            for batch in deletion_heavy_scenario.batches:
                driver.update(batch)
            outcomes.append(dict(driver.sparsifier._edges))
        assert outcomes[0] == outcomes[1]

    def test_removal_weight_rehoming_matches_oracle(self, deletion_heavy_scenario):
        """Reassigned/discarded weight sums are reconstructed in request order."""
        oracle = InGrassSparsifier(make_config())
        sharded = ShardedSparsifier(make_config(num_shards=3))
        results = []
        for driver in (oracle, sharded):
            driver.setup(deletion_heavy_scenario.graph,
                         deletion_heavy_scenario.initial_sparsifier,
                         target_condition_number=deletion_heavy_scenario.initial_condition_number)
            # Build up merge-absorbed weight first, then delete.
            driver.update(deletion_heavy_scenario.batches[0].insertions)
            results.append(driver.remove(deletion_heavy_scenario.batches[0].deletions))
        assert results[1].removed_from_sparsifier == results[0].removed_from_sparsifier
        assert results[1].reassigned_weight == results[0].reassigned_weight
        assert results[1].discarded_weight == results[0].discarded_weight
        assert results[1].inflated_levels == results[0].inflated_levels


class TestFilteringLevelPinning:
    """The filtering level is a setup-time choice, frozen per setup epoch.

    Maintain-mode splices change cluster sizes, which would drift the
    level-for-target selection mid-stream; a drifted level silently orphans
    every level-keyed structure (the filter map, the shard plan), so the
    driver pins the first resolution (regression test for the divergence the
    soak found at seed 244).
    """

    def test_level_stays_pinned_under_splices(self, deletion_heavy_scenario):
        driver = InGrassSparsifier(make_config(hierarchy_mode="maintain"))
        driver.setup(deletion_heavy_scenario.graph,
                     deletion_heavy_scenario.initial_sparsifier,
                     target_condition_number=deletion_heavy_scenario.initial_condition_number)
        pinned = driver._resolved_config().filtering_level
        assert pinned is not None
        filter_object = driver._ensure_filter()
        for batch in deletion_heavy_scenario.batches:
            driver.update(batch)
        assert driver.maintenance_stats.splices > 0
        assert driver._resolved_config().filtering_level == pinned
        # The persistent filter was never silently replaced by a throwaway
        # rebuilt at a drifted level.
        assert driver._ensure_filter() is filter_object
        assert all(record.filtering_level == pinned for record in driver.history)

    def test_refresh_setup_repins(self, deletion_heavy_scenario):
        driver = InGrassSparsifier(make_config(hierarchy_mode="maintain"))
        driver.setup(deletion_heavy_scenario.graph,
                     deletion_heavy_scenario.initial_sparsifier,
                     target_condition_number=deletion_heavy_scenario.initial_condition_number)
        first = driver._resolved_config()
        driver.refresh_setup()
        # A fresh hierarchy gets a fresh resolution (possibly the same level,
        # but never the stale pinned config object).
        assert driver._pinned_config is None
        assert driver._resolved_config().filtering_level is not None
        assert first.filtering_level is not None

    def test_sharded_views_tile_fresh_reference_after_churn(self, deletion_heavy_scenario):
        """After a full churn stream the scoped views' buckets must equal a
        fresh scan of the final sparsifier (content-wise) — the invariant
        that makes maintained views interchangeable with rebuilt ones."""
        driver = ShardedSparsifier(make_config(num_shards=3, hierarchy_mode="maintain"))
        driver.setup(deletion_heavy_scenario.graph,
                     deletion_heavy_scenario.initial_sparsifier,
                     target_condition_number=deletion_heavy_scenario.initial_condition_number)
        for batch in deletion_heavy_scenario.batches:
            driver.update(batch)
        views = [context.filter for context in driver.contexts] + [driver.escrow.filter]
        merged_connectivity = {}
        merged_intra = {}
        for view in views:
            for pair, bucket in view._connectivity.items():
                if bucket:
                    merged_connectivity.setdefault(pair, set()).update(bucket)
            for cluster, bucket in view._intra_cluster_edges.items():
                if bucket:
                    merged_intra.setdefault(cluster, set()).update(bucket)
        reference = SimilarityFilter(driver.sparsifier, driver.setup_result.hierarchy,
                                     views[0].filtering_level)
        assert merged_connectivity == {pair: set(bucket) for pair, bucket
                                       in reference._connectivity.items() if bucket}
        assert merged_intra == {cluster: set(bucket) for cluster, bucket
                                in reference._intra_cluster_edges.items() if bucket}


# --------------------------------------------------------------------------- #
# Adaptive replanning
# --------------------------------------------------------------------------- #
class TestReplanPolicy:
    def test_observe_accumulates(self):
        policy = ReplanPolicy(escrow_fraction=0.5, imbalance=2.0, min_events=10,
                              shard_events=[0, 0])
        policy.observe([3, 1], 2)
        policy.observe([0, 4], 0)
        assert policy.events == 10
        assert policy.escrow_events == 2
        assert policy.shard_events == [3, 5]

    def test_escrow_fraction_arithmetic(self):
        policy = ReplanPolicy(escrow_fraction=0.25, min_events=4, shard_events=[0, 0])
        policy.observe([2, 1], 1)
        assert policy.realised_escrow_fraction() == pytest.approx(0.25)
        # Strictly-greater trigger: exactly at the threshold does not fire.
        assert policy.should_replan() is None
        policy.observe([0, 0], 1)
        assert policy.realised_escrow_fraction() == pytest.approx(0.4)
        assert "escrow fraction" in policy.should_replan()

    def test_imbalance_arithmetic(self):
        policy = ReplanPolicy(imbalance=1.5, min_events=1, shard_events=[0, 0])
        policy.observe([3, 1], 0)
        # Busiest shard holds 3 of 4 intra events -> 0.75 / 0.5 = 1.5x.
        assert policy.realised_imbalance() == pytest.approx(1.5)
        assert policy.should_replan() is None  # strictly greater
        policy.observe([2, 0], 0)
        assert policy.realised_imbalance() == pytest.approx(5 / 6 * 2)
        assert "imbalance" in policy.should_replan()

    def test_min_events_gates_triggers(self):
        policy = ReplanPolicy(escrow_fraction=0.1, min_events=100, shard_events=[0, 0])
        policy.observe([1, 0], 50)
        assert policy.realised_escrow_fraction() > 0.9
        assert policy.should_replan() is None
        policy.observe([25, 25], 0)
        assert policy.should_replan() is not None

    def test_disabled_policy_never_fires(self):
        policy = ReplanPolicy(min_events=1, shard_events=[0, 0])
        assert not policy.enabled
        policy.observe([0, 0], 1000)
        assert policy.should_replan() is None

    def test_degenerate_counts(self):
        policy = ReplanPolicy(escrow_fraction=0.5, imbalance=2.0, min_events=1,
                              shard_events=[0, 0])
        assert policy.realised_escrow_fraction() == 0.0
        assert policy.realised_imbalance() == 1.0
        single = ReplanPolicy(imbalance=1.0, min_events=1, shard_events=[0])
        single.observe([7], 0)
        assert single.realised_imbalance() == 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            InGrassConfig(replan_escrow_fraction=0.0)
        with pytest.raises(ValueError):
            InGrassConfig(replan_escrow_fraction=1.5)
        with pytest.raises(ValueError):
            InGrassConfig(replan_imbalance=0.5)
        with pytest.raises(ValueError):
            InGrassConfig(replan_min_events=0)
        InGrassConfig(replan_escrow_fraction=0.5, replan_imbalance=2.0)


class TestAdaptiveReplans:
    def _adaptive_config(self, num_shards, executor="serial", **kwargs):
        # Thresholds tuned to fire on essentially any realised escrow traffic,
        # so the short test streams replan several times.
        return make_config(num_shards=num_shards, executor=executor,
                           hierarchy_mode="maintain",
                           replan_escrow_fraction=0.01, replan_min_events=1,
                           **kwargs)

    @pytest.mark.parametrize("num_shards,executor",
                             [(3, "serial"), (2, "threads"), (2, "processes")])
    def test_replans_preserve_oracle_guarantee(self, churn_scenario, num_shards, executor):
        oracle_cfg = make_config(hierarchy_mode="maintain", kappa_guard_factor=1.8)
        oracle, oracle_decisions, oracle_kappa = run_stream(churn_scenario, oracle_cfg)
        config = self._adaptive_config(num_shards, executor, kappa_guard_factor=1.8)
        driver, decisions, kappa = run_stream(churn_scenario, config)
        assert driver.adaptive_replans > 0, "test stream must actually trigger replans"
        assert dict(driver.sparsifier._edges) == dict(oracle.sparsifier._edges)
        assert sorted(decisions, key=repr) == sorted(oracle_decisions, key=repr)
        assert history_fingerprint(driver) == history_fingerprint(oracle)
        assert kappa == oracle_kappa

    def test_rederived_plan_keeps_whole_cluster_invariant(self, churn_scenario):
        driver = ShardedSparsifier(self._adaptive_config(3))
        driver.setup(churn_scenario.graph, churn_scenario.initial_sparsifier,
                     target_condition_number=churn_scenario.initial_condition_number)
        filter_level = driver._filter_level
        for batch in churn_scenario.batches:
            driver.update(batch)
            plan = driver.plan
            hierarchy = driver.setup_result.hierarchy
            # The invariant carrying the oracle guarantee: no filtering-level
            # cluster straddles shards — whether the plan was freshly
            # re-derived (adaptive replan) or locally patched after a
            # cross-shard fusion.
            assert plan.is_consistent(hierarchy, filter_level)
            labels = hierarchy.level(filter_level).labels
            for cluster in np.unique(labels):
                members = np.flatnonzero(labels == cluster)
                assert len(set(plan.node_shard[members].tolist())) == 1
        assert driver.adaptive_replans > 0
        # A freshly re-derived plan additionally packs whole partition-level
        # clusters (the stronger invariant the Fiedler sweep starts from).
        fresh = ShardPlan.from_hierarchy(driver.setup_result.hierarchy, 3,
                                         min_level=filter_level,
                                         sparsifier=driver.graph)
        assert fresh.is_consistent(driver.setup_result.hierarchy)

    def test_backoff_doubles_arming_threshold(self, churn_scenario):
        """Each adaptive replan doubles the next policy's min_events."""
        driver = ShardedSparsifier(self._adaptive_config(3))
        driver.setup(churn_scenario.graph, churn_scenario.initial_sparsifier,
                     target_condition_number=churn_scenario.initial_condition_number)
        driver.plan  # materialise contexts + policy
        assert driver.replan_policy.min_events == 1
        driver._adaptive_replan("test trigger")
        assert driver.replan_policy.min_events == 2
        driver._adaptive_replan("test trigger")
        assert driver.replan_policy.min_events == 4
        assert driver.adaptive_replans == 2
        # A fresh setup resets the back-off.
        driver.setup(churn_scenario.graph, churn_scenario.initial_sparsifier,
                     target_condition_number=churn_scenario.initial_condition_number)
        driver.plan
        assert driver.replan_policy.min_events == 1

    def test_replans_counted_and_reported(self, churn_scenario):
        driver = ShardedSparsifier(self._adaptive_config(3))
        driver.setup(churn_scenario.graph, churn_scenario.initial_sparsifier,
                     target_condition_number=churn_scenario.initial_condition_number)
        result = driver.update(churn_scenario.batches[0])
        report = (result.insertion.shard_report if result.insertion is not None
                  else result.removal.shard_report)
        assert report is not None
        assert report.adaptive_replans <= driver.adaptive_replans
        assert driver.replans >= driver.adaptive_replans

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           num_shards=st.integers(min_value=2, max_value=4))
    def test_property_adaptive_replan_invariance(self, seed, num_shards):
        """Adaptive replans never change decisions, edges, weights or κ."""
        graph = grid_circuit_2d(9, seed=5)
        scenario = build_dynamic_scenario(
            graph,
            DynamicScenarioConfig(
                initial_offtree_density=0.12, final_offtree_density=0.45,
                num_iterations=3, deletion_fraction=0.45,
                condition_dense_limit=DENSE_LIMIT, seed=seed,
            ),
        )
        oracle_cfg = make_config(hierarchy_mode="maintain", kappa_guard_factor=1.8)
        shard_cfg = make_config(num_shards=num_shards, hierarchy_mode="maintain",
                                kappa_guard_factor=1.8,
                                replan_escrow_fraction=0.05, replan_imbalance=1.2,
                                replan_min_events=1)
        oracle, oracle_decisions, oracle_kappa = run_stream(scenario, oracle_cfg)
        driver, decisions, kappa = run_stream(scenario, shard_cfg)
        assert dict(driver.sparsifier._edges) == dict(oracle.sparsifier._edges)
        assert sorted(decisions, key=repr) == sorted(oracle_decisions, key=repr)
        assert history_fingerprint(driver) == history_fingerprint(oracle)
        assert kappa == oracle_kappa
        # The invariant the driver maintains across replans and patches:
        # filtering-level purity (a patched plan may legitimately leave
        # partition-level clusters straddling shards).
        assert driver.plan.is_consistent(driver.setup_result.hierarchy,
                                         driver._filter_level)


# --------------------------------------------------------------------------- #
# Incremental cluster→members index
# --------------------------------------------------------------------------- #
class TestClusterMembersIndex:
    def test_matches_label_scan_after_churn(self, churn_scenario):
        """After splices and merges the index equals a fresh label scan."""
        driver = InGrassSparsifier(make_config(hierarchy_mode="maintain"))
        driver.setup(churn_scenario.graph, churn_scenario.initial_sparsifier,
                     target_condition_number=churn_scenario.initial_condition_number)
        hierarchy = driver.setup_result.hierarchy
        # Touch the index before the stream so it is maintained (not lazily
        # rebuilt) through every relabel/append of the maintenance layer.
        for level_index in range(hierarchy.num_levels):
            hierarchy.cluster_members(level_index, 0)
        for batch in churn_scenario.batches:
            driver.update(batch)
        assert driver.maintenance_stats.splices + driver.maintenance_stats.merges > 0
        for level_index in range(hierarchy.num_levels):
            labels = hierarchy.level(level_index).labels
            for cluster in range(hierarchy.level(level_index).num_clusters):
                expected = np.flatnonzero(labels == cluster)
                got = hierarchy.cluster_members(level_index, cluster)
                assert np.array_equal(got, expected), (level_index, cluster)

    def test_relabel_and_append_maintain_index(self):
        graph = grid_circuit_2d(8, seed=7)
        sparsifier = GrassSparsifier(GrassConfig(target_offtree_density=0.2, seed=1)).sparsify(
            graph, evaluate_condition=False).sparsifier
        hierarchy = run_setup(sparsifier, InGrassConfig(lrd=LRDConfig(seed=0))).hierarchy
        level_index = 0
        members_before = hierarchy.cluster_members(level_index, 0).copy()
        if members_before.size < 2:
            pytest.skip("level 0 cluster 0 too small to split")
        fresh = hierarchy.append_cluster(level_index, 0.5)
        moved = members_before[: members_before.size // 2]
        hierarchy.relabel_nodes(level_index, moved, fresh)
        labels = hierarchy.level(level_index).labels
        assert np.array_equal(hierarchy.cluster_members(level_index, fresh),
                              np.flatnonzero(labels == fresh))
        assert np.array_equal(hierarchy.cluster_members(level_index, 0),
                              np.flatnonzero(labels == 0))


# --------------------------------------------------------------------------- #
# Maintenance-aware κ guard
# --------------------------------------------------------------------------- #
class TestMaintenanceAwareGuard:
    def test_drain_splice_neighbourhood(self, churn_scenario):
        driver = InGrassSparsifier(make_config(hierarchy_mode="maintain"))
        driver.setup(churn_scenario.graph, churn_scenario.initial_sparsifier,
                     target_condition_number=churn_scenario.initial_condition_number)
        maintainer = driver.maintainer or driver._ensure_maintainer()
        deletions = churn_scenario.batches[0].deletions
        if not deletions:
            pytest.skip("scenario batch carries no deletions")
        driver.remove(deletions)
        if driver.maintenance_stats.splices == 0:
            pytest.skip("no cluster was spliced by this deletion batch")
        nodes = maintainer.drain_splice_neighbourhood()
        assert nodes.size > 0
        assert np.array_equal(nodes, np.unique(nodes))
        # Drained exactly once.
        assert maintainer.drain_splice_neighbourhood().size == 0

    def test_guard_prefers_split_neighbourhood(self, churn_scenario):
        """With splice reports pending, round 0 candidates touch them."""
        config = make_config(hierarchy_mode="maintain", kappa_guard_factor=1.0)
        driver = InGrassSparsifier(config)
        driver.setup(churn_scenario.graph, churn_scenario.initial_sparsifier,
                     target_condition_number=churn_scenario.initial_condition_number)
        graph, sparsifier = driver.graph, driver.sparsifier
        maintainer = driver._ensure_maintainer()
        similarity_filter = driver._ensure_filter()
        deletions = churn_scenario.batches[0].deletions
        pairs = [pair for pair in deletions if graph.has_edge(*pair)]
        removed = graph.remove_edges(pairs)
        run_removal(sparsifier, driver.setup_result, removed, graph=graph,
                    config=config, target_condition_number=driver.target_condition_number,
                    similarity_filter=similarity_filter, maintainer=maintainer)
        splice_nodes = set(maintainer.drain_splice_neighbourhood().tolist())
        if not splice_nodes:
            pytest.skip("no cluster was spliced by this deletion batch")
        # Re-arm the pool (drain above consumed it) by re-noting the nodes.
        for node in splice_nodes:
            maintainer._splice_neighbourhood[node] = None
        from repro.core.update import _offtree_candidates

        local_pool = {(u, v) for u, v, _ in
                      _offtree_candidates(graph, sparsifier, sorted(splice_nodes))}
        report = run_kappa_guard(sparsifier, driver.setup_result, graph=graph,
                                 config=config,
                                 target_condition_number=driver.target_condition_number,
                                 similarity_filter=similarity_filter, maintainer=maintainer)
        # The pool was drained by the guard pass...
        assert maintainer.drain_splice_neighbourhood().size == 0
        # ...and whenever the guard admitted anything in a first round backed
        # by a non-empty local pool, every first-round edge came from it.
        if report.rounds >= 1 and report.added_edges and local_pool:
            first_round = report.added_edges[: config.kappa_guard_batch]
            for u, v, _ in first_round:
                key = (u, v) if u <= v else (v, u)
                assert key in local_pool, "guard ignored the splice-neighbourhood pool"
