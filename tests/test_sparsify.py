"""Tests for the baseline sparsifiers (spanning trees, GRASS, feGRASS,
sampling, random) and the quality metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, grid_circuit_2d, is_connected
from repro.sparsify import (
    FeGrassConfig,
    FeGrassSparsifier,
    GrassConfig,
    GrassSparsifier,
    RandomIncrementalUpdater,
    RandomSparsifier,
    SamplingConfig,
    SpectralSamplingSparsifier,
    distortion_statistics,
    edge_stretches,
    effective_weight_spanning_tree,
    evaluate_sparsifier,
    fegrass_sparsify,
    grass_sparsify,
    low_stretch_spanning_tree,
    maximum_weight_spanning_tree,
    off_tree_edges,
    offtree_density,
    random_sparsify,
    relative_density,
    sampling_sparsify,
    shortest_path_tree,
    total_stretch,
)
from repro.spectral import relative_condition_number


class TestSpanningTrees:
    @pytest.mark.parametrize("builder", [
        maximum_weight_spanning_tree,
        lambda g: low_stretch_spanning_tree(g, seed=0),
        lambda g: shortest_path_tree(g, root=0),
        lambda g: effective_weight_spanning_tree(g),
    ])
    def test_is_spanning_tree(self, small_grid, builder):
        tree = builder(small_grid)
        assert tree.num_edges == small_grid.num_nodes - 1
        assert is_connected(tree)
        # Every tree edge must come from the graph with its original weight.
        for u, v, w in tree.weighted_edges():
            assert small_grid.has_edge(u, v)
            assert small_grid.weight(u, v) == pytest.approx(w)

    def test_max_weight_tree_optimality(self):
        # On a triangle the max-weight tree keeps the two heaviest edges.
        graph = Graph(3, [(0, 1, 3.0), (1, 2, 2.0), (0, 2, 1.0)])
        tree = maximum_weight_spanning_tree(graph)
        assert tree.has_edge(0, 1) and tree.has_edge(1, 2)
        assert not tree.has_edge(0, 2)

    def test_stretch_of_tree_edges_is_one(self, small_grid):
        tree = maximum_weight_spanning_tree(small_grid)
        stretches = edge_stretches(small_grid, tree)
        us, vs, _ = small_grid.edge_arrays()
        for index, (u, v) in enumerate(zip(us, vs)):
            if tree.has_edge(int(u), int(v)):
                assert stretches[index] == pytest.approx(1.0, rel=1e-6)

    def test_stretches_positive(self, small_grid):
        tree = maximum_weight_spanning_tree(small_grid)
        stretches = edge_stretches(small_grid, tree)
        assert stretches.shape == (small_grid.num_edges,)
        assert np.all(stretches > 0.0)

    def test_total_stretch_counts_tree_edges(self, small_grid):
        # Tree edges each contribute exactly 1 to the total stretch.
        tree = low_stretch_spanning_tree(small_grid, seed=1)
        assert total_stretch(small_grid, tree) >= tree.num_edges - 1e-6

    def test_off_tree_edges_partition(self, small_grid):
        tree = maximum_weight_spanning_tree(small_grid)
        off = off_tree_edges(small_grid, tree)
        assert len(off) == small_grid.num_edges - tree.num_edges
        for u, v, _ in off:
            assert not tree.has_edge(u, v)

    def test_shortest_path_tree_metric_validation(self, small_grid):
        with pytest.raises(ValueError):
            shortest_path_tree(small_grid, metric="bogus")

    def test_empty_graph_trees(self):
        assert maximum_weight_spanning_tree(Graph(0)).num_nodes == 0
        assert low_stretch_spanning_tree(Graph(3)).num_edges == 0


class TestGrass:
    def test_density_budget_respected(self, medium_grid):
        config = GrassConfig(target_offtree_density=0.15, seed=0)
        result = GrassSparsifier(config).sparsify(medium_grid, evaluate_condition=False)
        budget = medium_grid.num_nodes - 1 + int(round(0.15 * medium_grid.num_nodes))
        assert result.sparsifier.num_edges <= budget
        assert is_connected(result.sparsifier)

    def test_relative_density_budget(self, medium_grid):
        config = GrassConfig(target_relative_density=0.8, target_offtree_density=None, seed=0)
        result = GrassSparsifier(config).sparsify(medium_grid, evaluate_condition=False)
        assert result.sparsifier.num_edges <= int(round(0.8 * medium_grid.num_edges)) + 1

    def test_sparsifier_subgraph_of_input(self, medium_grid):
        result = GrassSparsifier(GrassConfig(seed=0)).sparsify(medium_grid, evaluate_condition=False)
        for u, v, w in result.sparsifier.weighted_edges():
            assert medium_grid.has_edge(u, v)
            assert medium_grid.weight(u, v) == pytest.approx(w)

    def test_more_density_means_better_condition(self, medium_grid):
        sparse = GrassSparsifier(GrassConfig(target_offtree_density=0.05, seed=0)).sparsify(
            medium_grid, evaluate_condition=False).sparsifier
        dense = GrassSparsifier(GrassConfig(target_offtree_density=0.4, seed=0)).sparsify(
            medium_grid, evaluate_condition=False).sparsifier
        assert relative_condition_number(medium_grid, dense) <= relative_condition_number(medium_grid, sparse)

    def test_sparsify_to_condition_reaches_target(self, medium_grid):
        target = 2.0 * relative_condition_number(
            medium_grid,
            GrassSparsifier(GrassConfig(target_offtree_density=0.3, seed=0)).sparsify(
                medium_grid, evaluate_condition=False).sparsifier,
        )
        result = GrassSparsifier(GrassConfig(seed=0)).sparsify_to_condition(medium_grid, target)
        assert result.condition_number <= target * 1.05
        assert is_connected(result.sparsifier)

    def test_beats_random_at_same_density(self, medium_grid):
        density = 0.2
        grass = GrassSparsifier(GrassConfig(target_offtree_density=density, seed=0)).sparsify(
            medium_grid, evaluate_condition=False).sparsifier
        random_h = RandomSparsifier(target_offtree_density=density, seed=0).sparsify(medium_grid).sparsifier
        assert relative_condition_number(medium_grid, grass) <= relative_condition_number(medium_grid, random_h)

    def test_tree_methods_all_work(self, small_grid):
        for method in ("max_weight", "low_stretch", "shortest_path"):
            result = GrassSparsifier(GrassConfig(tree_method=method, seed=0)).sparsify(
                small_grid, evaluate_condition=False)
            assert is_connected(result.sparsifier)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GrassConfig(tree_method="bogus")
        with pytest.raises(ValueError):
            GrassConfig(target_condition_number=-1.0)
        with pytest.raises(ValueError):
            GrassConfig(target_offtree_density=-0.1)

    def test_convenience_wrapper(self, small_grid):
        sparsifier = grass_sparsify(small_grid, relative_density=0.5, seed=0)
        assert is_connected(sparsifier)


class TestFeGrass:
    def test_budget_and_connectivity(self, medium_grid):
        config = FeGrassConfig(target_offtree_density=0.15)
        result = FeGrassSparsifier(config).sparsify(medium_grid)
        budget = medium_grid.num_nodes - 1 + int(round(0.15 * medium_grid.num_nodes))
        assert result.sparsifier.num_edges <= budget
        assert is_connected(result.sparsifier)

    def test_subgraph_of_input(self, medium_grid):
        result = FeGrassSparsifier().sparsify(medium_grid)
        for u, v, w in result.sparsifier.weighted_edges():
            assert medium_grid.weight(u, v) == pytest.approx(w)

    def test_better_than_random(self, medium_grid):
        fe = fegrass_sparsify(medium_grid, relative_density=0.3)
        rnd = random_sparsify(medium_grid, relative_density=0.3, seed=0)
        assert relative_condition_number(medium_grid, fe) <= relative_condition_number(medium_grid, rnd)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FeGrassConfig(spread_limit=0)
        with pytest.raises(ValueError):
            FeGrassConfig(target_offtree_density=-1.0)


class TestSampling:
    def test_connectivity_guarantee(self, medium_grid):
        result = SpectralSamplingSparsifier(SamplingConfig(target_offtree_density=0.1, seed=0)).sparsify(medium_grid)
        assert is_connected(result.sparsifier)

    def test_edge_count_near_budget(self, medium_grid):
        config = SamplingConfig(target_offtree_density=0.2, ensure_connected=False, seed=0)
        result = SpectralSamplingSparsifier(config).sparsify(medium_grid)
        budget = medium_grid.num_nodes - 1 + int(round(0.2 * medium_grid.num_nodes))
        assert result.sparsifier.num_edges <= budget

    def test_exact_resistance_mode(self, small_grid):
        config = SamplingConfig(exact_resistance=True, seed=0)
        result = SpectralSamplingSparsifier(config).sparsify(small_grid)
        assert is_connected(result.sparsifier)

    def test_empty_graph(self):
        result = SpectralSamplingSparsifier().sparsify(Graph(3))
        assert result.sparsifier.num_edges == 0

    def test_wrapper(self, small_grid):
        assert is_connected(sampling_sparsify(small_grid, relative_density=0.5, seed=1))


class TestRandomBaselines:
    def test_random_sparsifier_connected(self, medium_grid):
        result = RandomSparsifier(target_offtree_density=0.1, seed=0).sparsify(medium_grid)
        assert is_connected(result.sparsifier)
        budget = medium_grid.num_nodes - 1 + int(round(0.1 * medium_grid.num_nodes))
        assert result.sparsifier.num_edges <= budget

    def test_random_updater_reaches_target(self, grid_with_sparsifier):
        graph, sparsifier = grid_with_sparsifier
        kappa0 = relative_condition_number(graph, sparsifier)
        # Stream some new edges into the graph.
        from repro.streams import random_pair_edges

        new_edges = random_pair_edges(graph, 30, seed=5)
        graph_after = graph.union_with_edges(new_edges)
        updater = RandomIncrementalUpdater(target_condition_number=kappa0 * 1.5, seed=0)
        result = updater.update(graph_after, sparsifier, new_edges)
        assert result.added_edges <= len(new_edges)
        assert result.condition_number is not None

    def test_random_updater_fraction_mode(self, grid_with_sparsifier):
        graph, sparsifier = grid_with_sparsifier
        from repro.streams import random_pair_edges

        new_edges = random_pair_edges(graph, 20, seed=6)
        updater = RandomIncrementalUpdater(None, acceptance_fraction=0.5, seed=0)
        result = updater.update(graph.union_with_edges(new_edges), sparsifier, new_edges)
        assert result.added_edges == 10

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RandomIncrementalUpdater(-1.0)
        with pytest.raises(ValueError):
            RandomIncrementalUpdater(None, condition_check_stride=0)
        with pytest.raises(ValueError):
            RandomSparsifier(target_offtree_density=-0.5)


class TestMetrics:
    def test_relative_and_offtree_density(self, grid_with_sparsifier):
        graph, sparsifier = grid_with_sparsifier
        assert 0 < relative_density(graph, sparsifier) <= 1.0
        expected_offtree = (sparsifier.num_edges - (graph.num_nodes - 1)) / graph.num_nodes
        assert offtree_density(sparsifier) == pytest.approx(expected_offtree)
        assert offtree_density(maximum_weight_spanning_tree(graph)) == 0.0

    def test_relative_density_empty_graph(self):
        with pytest.raises(ValueError):
            relative_density(Graph(3), Graph(3))

    def test_evaluate_sparsifier_report(self, grid_with_sparsifier):
        graph, sparsifier = grid_with_sparsifier
        report = evaluate_sparsifier(graph, sparsifier, seed=0)
        assert report.connected
        assert report.condition_number >= 1.0
        assert report.empirical_condition_lower_bound <= report.condition_number * 1.05
        as_dict = report.as_dict()
        assert as_dict["sparsifier_edges"] == sparsifier.num_edges
        assert "offtree_density" in as_dict

    def test_evaluate_sparsifier_node_mismatch(self, small_grid):
        with pytest.raises(ValueError):
            evaluate_sparsifier(small_grid, Graph(3, [(0, 1, 1.0), (1, 2, 1.0)]))

    def test_distortion_statistics(self, grid_with_sparsifier):
        graph, sparsifier = grid_with_sparsifier
        stats = distortion_statistics(graph, sparsifier, seed=0)
        assert stats["count"] == graph.num_edges - sparsifier.num_edges
        assert stats["max"] >= stats["mean"] >= 0.0

    def test_distortion_statistics_full_sparsifier(self, small_grid):
        stats = distortion_statistics(small_grid, small_grid)
        assert stats == {"count": 0, "max": 0.0, "mean": 0.0, "sum": 0.0}


class TestSparsifierProperties:
    @given(st.integers(min_value=6, max_value=12), st.integers(min_value=0, max_value=10**6),
           st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=15, deadline=None)
    def test_grass_output_invariants(self, size, seed, density):
        graph = grid_circuit_2d(size, seed=seed)
        result = GrassSparsifier(GrassConfig(target_offtree_density=density, seed=seed)).sparsify(
            graph, evaluate_condition=False)
        sparsifier = result.sparsifier
        assert is_connected(sparsifier)
        assert sparsifier.num_edges <= graph.num_edges
        assert sparsifier.num_edges >= graph.num_nodes - 1
        for u, v, w in sparsifier.weighted_edges():
            assert graph.weight(u, v) == pytest.approx(w)
