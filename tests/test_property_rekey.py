"""Property-based tests (hypothesis) for the bulk filter re-keying kernels.

The splice/merge protocol of the hierarchy maintainer and the removal drop
stage re-key the similarity filter's connectivity map through the vectorised
bulk kernels (:meth:`SimilarityFilter.unregister_incident_edges` /
:meth:`SimilarityFilter.register_edges`).  Their contract is byte-identical
state with the per-edge scalar protocol they replaced: one
``_unregister_edge`` / ``_register_edge`` call per incident edge, discovered
by walking the sparsifier adjacency.  These properties pin that contract for
arbitrary graphs, node subsets and churn streams:

* the bulk kernels leave the ``_connectivity`` / ``_intra_cluster_edges``
  maps equal to the scalar oracle's, and return the same pending edge set;
* the full driver produces identical sparsifiers (same edge set with
  bit-exact weights), identical decision streams and a connectivity map
  identical to one rebuilt from a fresh sparsifier scan — across both
  hierarchy modes and shard counts {1, 2, 4}, on mixed and deletion-heavy
  streams.
"""

from __future__ import annotations

import copy

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import InGrassConfig, InGrassSparsifier, LRDConfig, SimilarityFilter
from repro.core.config import LRDConfig as _LRDConfig
from repro.core.lrd import lrd_decompose
from repro.graphs import grid_circuit_2d
from repro.graphs.graph import Graph, canonical_edge
from repro.streams import DynamicScenarioConfig, build_dynamic_scenario

DENSE_LIMIT = 300


# --------------------------------------------------------------------------- #
# Scalar oracle: the per-edge protocol the bulk kernels replaced
# --------------------------------------------------------------------------- #
def oracle_unregister_incident(similarity_filter, nodes):
    """Per-edge reference for ``unregister_incident_edges``."""
    pending = {}
    adjacency = similarity_filter._sparsifier._adjacency
    for node in nodes:
        for neighbour in adjacency[int(node)]:
            pending[canonical_edge(int(node), int(neighbour))] = None
    for u, v in pending:
        similarity_filter._unregister_edge(u, v)
    return sorted(pending)


def oracle_register(similarity_filter, edges):
    """Per-edge reference for ``register_edges``."""
    for u, v in edges:
        similarity_filter._register_edge(int(u), int(v))


def filter_state(similarity_filter):
    return (copy.deepcopy(similarity_filter._connectivity),
            copy.deepcopy(dict(similarity_filter._intra_cluster_edges)))


def random_connected_graph(rng, n, extra):
    graph = Graph(n)
    perm = rng.permutation(n)
    for i in range(n - 1):
        graph.add_edge(int(perm[i]), int(perm[i + 1]), float(rng.uniform(0.2, 3.0)))
    added = 0
    while added < extra:
        u, v = rng.integers(0, n, size=2)
        if u != v and not graph.has_edge(int(u), int(v)):
            graph.add_edge(int(u), int(v), float(rng.uniform(0.2, 3.0)))
            added += 1
    return graph


kernel_params = st.fixed_dictionaries(
    {
        "num_nodes": st.integers(min_value=12, max_value=120),
        "graph_seed": st.integers(min_value=0, max_value=2**16),
        "rounds": st.integers(min_value=1, max_value=5),
    }
)


@settings(max_examples=25, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(params=kernel_params)
def test_bulk_rekey_matches_scalar_oracle(params):
    """Bulk unregister/re-register is byte-identical to the per-edge oracle."""
    rng = np.random.default_rng(params["graph_seed"])
    n = params["num_nodes"]
    graph = random_connected_graph(rng, n, int(rng.integers(n // 2, n * 2)))
    hierarchy = lrd_decompose(graph, _LRDConfig(seed=int(rng.integers(0, 1000))))
    level = int(rng.integers(0, hierarchy.num_levels))
    bulk = SimilarityFilter(graph, hierarchy, filtering_level=level)
    scalar = SimilarityFilter(graph, hierarchy, filtering_level=level)
    assert filter_state(bulk) == filter_state(scalar)

    for _round in range(params["rounds"]):
        nodes = np.unique(rng.integers(0, n, size=int(rng.integers(1, max(2, n // 3)))))
        pending_bulk = bulk.unregister_incident_edges(nodes)
        pending_scalar = oracle_unregister_incident(scalar, nodes)
        assert sorted(pending_bulk) == pending_scalar
        assert filter_state(bulk) == filter_state(scalar)
        # Re-home the pending edges, as the splice protocol does after the
        # fragments were relabelled (here labels are unchanged, which the
        # kernels cannot tell apart from a relabel).
        bulk.register_edges(pending_bulk)
        oracle_register(scalar, pending_scalar)
        assert filter_state(bulk) == filter_state(scalar)


# --------------------------------------------------------------------------- #
# Driver-level parity: hierarchy modes x shard counts on churn streams
# --------------------------------------------------------------------------- #
driver_params = st.fixed_dictionaries(
    {
        "side": st.integers(min_value=6, max_value=8),
        "graph_seed": st.integers(min_value=0, max_value=2**16),
        "stream_seed": st.integers(min_value=0, max_value=2**16),
        # Spans mixed (0.3) through deletion-heavy (0.7) streams.
        "deletion_fraction": st.floats(min_value=0.3, max_value=0.7),
    }
)


def _run_driver(scenario, *, hierarchy_mode, num_shards):
    config = InGrassConfig(
        seed=0,
        hierarchy_mode=hierarchy_mode,
        num_shards=num_shards,
        lrd=LRDConfig(seed=0),
        kappa_guard_dense_limit=DENSE_LIMIT,
    )
    driver = InGrassSparsifier.from_config(config)
    driver.setup(scenario.graph, scenario.initial_sparsifier,
                 target_condition_number=scenario.initial_condition_number)
    decisions = []
    for batch in scenario.batches:
        result = driver.update(batch)
        insertion = getattr(result, "insertion", result)
        if insertion is not None:
            for decision in insertion.decisions:
                decisions.append((decision.edge[:2], decision.action,
                                  decision.target_edge))
    return driver, decisions


def _edge_map(graph):
    """Edge set with bit-exact weights (reprs); order-insensitive — the
    sharded driver admits the same edges with identical weights but may
    insert them into the graph in a different order than the oracle."""
    return {edge: repr(weight) for edge, weight in graph._edges.items()}


@settings(max_examples=4, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(params=driver_params)
def test_driver_rekey_parity_across_modes_and_shards(params):
    """Shard counts {1, 2, 4} x hierarchy modes produce identical streams."""
    graph = grid_circuit_2d(params["side"], seed=params["graph_seed"])
    scenario = build_dynamic_scenario(
        graph,
        DynamicScenarioConfig(
            deletion_fraction=params["deletion_fraction"],
            num_iterations=4,
            condition_dense_limit=DENSE_LIMIT,
            seed=params["stream_seed"],
        ),
    )
    for hierarchy_mode in ("rebuild", "maintain"):
        oracle, oracle_decisions = _run_driver(
            scenario, hierarchy_mode=hierarchy_mode, num_shards=1)
        oracle_edges = _edge_map(oracle.sparsifier)
        # The evolved (incrementally re-keyed) filter map must equal one
        # rebuilt from a fresh scan of the final sparsifier.
        live = oracle._filter
        if live is not None:
            rebuilt = SimilarityFilter(oracle.sparsifier,
                                       oracle.setup_result.hierarchy,
                                       live.filtering_level)
            assert filter_state(live) == filter_state(rebuilt)
        for num_shards in (2, 4):
            driver, decisions = _run_driver(
                scenario, hierarchy_mode=hierarchy_mode, num_shards=num_shards)
            assert _edge_map(driver.sparsifier) == oracle_edges
            # Decision multiset parity (the sharded engine resolves cluster
            # groups in its own order).
            assert sorted(decisions, key=repr) == sorted(oracle_decisions, key=repr)
