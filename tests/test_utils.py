"""Unit tests for repro.utils (rng, timing, validation)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils import (
    Timer,
    as_rng,
    check_edge_weights_positive,
    check_node_index,
    check_positive,
    check_positive_int,
    check_probability,
    spawn_rngs,
    timed,
)
from repro.utils.rng import random_unit_vector
from repro.utils.timing import time_call


class TestRng:
    def test_as_rng_from_int_is_deterministic(self):
        a = as_rng(42).integers(0, 1000, size=5)
        b = as_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_as_rng_passes_through_generator(self):
        generator = np.random.default_rng(0)
        assert as_rng(generator) is generator

    def test_as_rng_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_rngs_are_independent(self):
        children = spawn_rngs(7, 3)
        assert len(children) == 3
        draws = [child.integers(0, 10**9) for child in children]
        assert len(set(draws)) > 1

    def test_spawn_rngs_deterministic(self):
        first = [g.integers(0, 10**9) for g in spawn_rngs(3, 4)]
        second = [g.integers(0, 10**9) for g in spawn_rngs(3, 4)]
        assert first == second

    def test_spawn_rngs_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_random_unit_vector_norm(self):
        vector = random_unit_vector(50, rng=1)
        assert np.isclose(np.linalg.norm(vector), 1.0)

    def test_random_unit_vector_orthogonal_to_ones(self):
        vector = random_unit_vector(64, rng=2, orthogonal_to_ones=True)
        assert abs(vector.sum()) < 1e-9

    def test_random_unit_vector_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            random_unit_vector(0)


class TestTimer:
    def test_timer_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        first = timer.elapsed
        with timer:
            time.sleep(0.01)
        assert timer.elapsed > first

    def test_timer_double_start_raises(self):
        timer = Timer().start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_timer_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_timer_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0

    def test_timed_context(self):
        with timed() as timer:
            time.sleep(0.005)
        assert timer.elapsed >= 0.004

    def test_time_call_returns_result_and_duration(self):
        result, seconds = time_call(lambda: 21 * 2)
        assert result == 42
        assert seconds >= 0.0


class TestValidation:
    def test_check_positive_accepts_positive(self):
        assert check_positive(0.5, "x") == 0.5

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_check_positive_rejects(self, value):
        with pytest.raises(ValueError):
            check_positive(value, "x")

    def test_check_positive_int_accepts(self):
        assert check_positive_int(3, "n") == 3

    @pytest.mark.parametrize("value", [0, -2])
    def test_check_positive_int_rejects_small(self, value):
        with pytest.raises(ValueError):
            check_positive_int(value, "n")

    @pytest.mark.parametrize("value", [1.5, "3", True])
    def test_check_positive_int_rejects_wrong_type(self, value):
        with pytest.raises(TypeError):
            check_positive_int(value, "n")

    def test_check_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")

    def test_check_node_index(self):
        assert check_node_index(3, 5) == 3
        with pytest.raises(ValueError):
            check_node_index(5, 5)
        with pytest.raises(TypeError):
            check_node_index(1.5, 5)

    def test_check_edge_weights_positive(self):
        array = check_edge_weights_positive([1.0, 2.0, 3.0])
        assert array.shape == (3,)
        with pytest.raises(ValueError):
            check_edge_weights_positive([1.0, -2.0])
        with pytest.raises(ValueError):
            check_edge_weights_positive([1.0, float("inf")])
