"""Version-epoch anchoring: every mutating op bumps the counters snapshots pin.

Two layers are covered:

* :class:`ClusterHierarchy` — ``version`` bumps on every mutation
  (diameter set, cluster append, relabel, removal-driven inflation) and
  ``labels_version`` bumps exactly on structural relabels;
* :class:`InGrassSparsifier` — ``latest_version`` bumps on every mutating
  public call (setup, update, apply_batch, remove, reweight, refresh_setup)
  and never on reads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InGrassConfig, InGrassSparsifier
from repro.core.hierarchy import ClusterHierarchy, LRDLevel
from repro.core.maintenance import HierarchyMaintainer
from repro.graphs import grid_circuit_2d
from repro.streams import DynamicScenarioConfig, build_churn_scenario, mixed_edges


def _tiny_hierarchy() -> ClusterHierarchy:
    labels0 = np.array([0, 0, 1, 1, 2, 2], dtype=np.int64)
    labels1 = np.array([0, 0, 0, 0, 1, 1], dtype=np.int64)
    return ClusterHierarchy([
        LRDLevel(labels0, np.array([0.5, 0.6, 0.7]), 1.0),
        LRDLevel(labels1, np.array([1.5, 1.7]), 2.0),
    ])


class TestHierarchyVersionCounters:
    def test_fresh_hierarchy_starts_at_zero(self):
        hierarchy = _tiny_hierarchy()
        assert hierarchy.version == 0
        assert hierarchy.labels_version == 0

    def test_set_cluster_diameter_bumps_version_only(self):
        hierarchy = _tiny_hierarchy()
        hierarchy.set_cluster_diameter(0, 1, 0.9)
        assert hierarchy.version == 1
        assert hierarchy.labels_version == 0

    def test_append_cluster_bumps_version_only(self):
        hierarchy = _tiny_hierarchy()
        new_cluster = hierarchy.append_cluster(0, 0.2)
        assert new_cluster == 3
        assert hierarchy.version == 1
        assert hierarchy.labels_version == 0

    def test_relabel_bumps_both_and_the_level_counter(self):
        hierarchy = _tiny_hierarchy()
        hierarchy.relabel_nodes(0, np.array([1]), 2)
        assert hierarchy.version == 1
        assert hierarchy.labels_version == 1
        assert hierarchy.level_labels_version(0) == 1
        assert hierarchy.level_labels_version(1) == 0

    def test_removal_inflation_bumps_version(self):
        hierarchy = _tiny_hierarchy()
        # Nodes 0 and 1 share cluster 0 at level 0: inflation must register.
        touched = hierarchy.note_edge_removed(0, 1)
        assert touched > 0
        # One bump per level whose cluster diameters inflated (both here).
        assert hierarchy.version >= 1
        assert hierarchy.labels_version == 0

    def test_reads_never_bump(self):
        hierarchy = _tiny_hierarchy()
        hierarchy.cluster_of(0, 0)
        hierarchy.embedding_matrix()
        hierarchy.cluster_members(0, 0)
        hierarchy.resistance_upper_bound(0, 5)
        hierarchy.export_state()
        assert hierarchy.version == 0
        assert hierarchy.labels_version == 0

    def test_maintainer_splice_and_merge_advance_the_epoch(self):
        """End-to-end: the PR-3 splice/merge path rides the same counters."""
        graph = grid_circuit_2d(8, seed=3)
        scenario = build_churn_scenario(
            graph, DynamicScenarioConfig(num_iterations=3, seed=3))
        driver = InGrassSparsifier(InGrassConfig(seed=3))
        driver.setup(scenario.graph, scenario.initial_sparsifier,
                     target_condition_number=scenario.initial_condition_number)
        hierarchy = driver.setup_result.hierarchy
        assert driver._maintainer is None or isinstance(
            driver._maintainer, HierarchyMaintainer)
        seen = [(hierarchy.version, hierarchy.labels_version)]
        for batch in scenario.batches:
            driver.update(batch)
            seen.append((hierarchy.version, hierarchy.labels_version))
        versions = [v for v, _ in seen]
        assert versions == sorted(versions)
        assert versions[-1] > versions[0]  # churn really touched the hierarchy


class TestDriverVersionEpochs:
    def _driver(self):
        graph = grid_circuit_2d(8, seed=7)
        scenario = build_churn_scenario(
            graph, DynamicScenarioConfig(num_iterations=4, seed=7))
        driver = InGrassSparsifier(InGrassConfig(seed=7))
        return driver, scenario

    def test_setup_moves_zero_to_one(self):
        driver, scenario = self._driver()
        assert driver.latest_version == 0
        driver.setup(scenario.graph, scenario.initial_sparsifier,
                     target_condition_number=scenario.initial_condition_number)
        assert driver.latest_version == 1

    def test_every_mutating_call_bumps(self):
        driver, scenario = self._driver()
        driver.setup(scenario.graph, scenario.initial_sparsifier,
                     target_condition_number=scenario.initial_condition_number)
        version = driver.latest_version
        driver.update(scenario.batches[0])          # mixed batch
        assert driver.latest_version == version + 1
        edges = list(mixed_edges(driver.graph, 4, seed=11))
        driver.update(edges)                        # plain insertion batch
        assert driver.latest_version == version + 2
        edge = next(iter(driver.sparsifier.edges()))
        driver.reweight([(edge[0], edge[1], 1.5)])
        assert driver.latest_version == version + 3
        driver.refresh_setup()
        assert driver.latest_version == version + 4

    def test_remove_bumps_at_least_once(self):
        driver, scenario = self._driver()
        driver.setup(scenario.graph, scenario.initial_sparsifier,
                     target_condition_number=scenario.initial_condition_number)
        version = driver.latest_version
        deletions = scenario.batches[0].deletions[:2]
        if not deletions:
            pytest.skip("scenario produced no deletions in batch 0")
        driver.remove([(e[0], e[1]) for e in deletions])
        # An internal staleness-triggered re-setup may add a second bump;
        # both outcomes advance the epoch deterministically.
        assert driver.latest_version > version

    def test_reads_never_bump(self):
        driver, scenario = self._driver()
        driver.setup(scenario.graph, scenario.initial_sparsifier,
                     target_condition_number=scenario.initial_condition_number)
        version = driver.latest_version
        driver.snapshot()
        _ = driver.graph, driver.sparsifier, driver.setup_result
        _ = driver.target_condition_number
        driver._resolved_config()
        assert driver.latest_version == version

    def test_snapshot_version_tracks_driver(self):
        driver, scenario = self._driver()
        driver.setup(scenario.graph, scenario.initial_sparsifier,
                     target_condition_number=scenario.initial_condition_number)
        for batch in scenario.batches:
            driver.update(batch)
            assert driver.snapshot().version == driver.latest_version
