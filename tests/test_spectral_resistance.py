"""Tests for effective-resistance computation (exact, JL, Krylov, tree paths)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import spearmanr

from repro.graphs import Graph, complete_graph, cycle_graph, path_graph
from repro.spectral import (
    ApproxResistanceCalculator,
    ExactResistanceCalculator,
    JLResistanceCalculator,
    edge_effective_resistances,
    effective_resistance,
    make_resistance_calculator,
    spectral_distortions,
    tree_path_resistances,
)


class TestExactResistance:
    def test_single_edge(self):
        graph = Graph(2, [(0, 1, 2.0)])
        assert effective_resistance(graph, 0, 1) == pytest.approx(0.5)

    def test_series_path(self):
        # Series resistors add: 3 unit-weight edges -> R = 3.
        graph = path_graph(4, weight=1.0)
        assert effective_resistance(graph, 0, 3) == pytest.approx(3.0)

    def test_parallel_paths(self):
        # Two parallel 2-edge paths between the endpoints -> R = 1.
        graph = Graph(4, [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0)])
        assert effective_resistance(graph, 0, 3) == pytest.approx(1.0)

    def test_cycle(self):
        # On a unit cycle of length n, R(i, j) = d*(n-d)/n for hop distance d.
        graph = cycle_graph(6)
        calc = ExactResistanceCalculator(graph)
        assert calc.resistance(0, 3) == pytest.approx(3 * 3 / 6)
        assert calc.resistance(0, 1) == pytest.approx(1 * 5 / 6)

    def test_complete_graph(self):
        # Complete graph on n nodes: R = 2/n for every pair.
        graph = complete_graph(8)
        calc = ExactResistanceCalculator(graph)
        assert calc.resistance(0, 5) == pytest.approx(2 / 8)

    def test_self_pair_zero(self, small_grid):
        assert ExactResistanceCalculator(small_grid).resistance(3, 3) == 0.0

    def test_symmetry(self, small_grid):
        calc = ExactResistanceCalculator(small_grid)
        assert calc.resistance(1, 17) == pytest.approx(calc.resistance(17, 1))

    def test_edge_resistance_below_direct(self, small_grid):
        # R_eff(u, v) <= 1/w_uv for every edge (parallel paths only reduce it).
        calc = ExactResistanceCalculator(small_grid)
        for u, v, w in small_grid.weighted_edges():
            assert calc.resistance(u, v) <= 1.0 / w + 1e-9

    def test_triangle_inequality(self, small_grid):
        # Effective resistance is a metric: R(a,c) <= R(a,b) + R(b,c).
        calc = ExactResistanceCalculator(small_grid)
        rng = np.random.default_rng(0)
        for _ in range(20):
            a, b, c = rng.choice(small_grid.num_nodes, size=3, replace=False)
            assert calc.resistance(a, c) <= calc.resistance(a, b) + calc.resistance(b, c) + 1e-9

    def test_rejects_tiny_graph(self):
        with pytest.raises(ValueError):
            ExactResistanceCalculator(Graph(1))

    def test_rejects_bad_nodes(self, small_grid):
        calc = ExactResistanceCalculator(small_grid)
        with pytest.raises(ValueError):
            calc.resistance(0, small_grid.num_nodes)


class TestJLResistance:
    def test_close_to_exact(self, small_grid, rng):
        exact = ExactResistanceCalculator(small_grid)
        approx = JLResistanceCalculator(small_grid, dimensions=128, seed=1)
        pairs = [tuple(rng.choice(small_grid.num_nodes, 2, replace=False)) for _ in range(50)]
        e = exact.resistances(pairs)
        a = approx.resistances(pairs)
        # With 128 projection dimensions the relative error should be modest.
        assert np.median(np.abs(a - e) / np.maximum(e, 1e-12)) < 0.25

    def test_ranking_quality_on_edges(self, small_grid):
        exact = ExactResistanceCalculator(small_grid).edge_resistances()
        approx = JLResistanceCalculator(small_grid, seed=0).edge_resistances()
        assert spearmanr(exact, approx).statistic > 0.8

    def test_embedding_shape(self, small_grid):
        calc = JLResistanceCalculator(small_grid, dimensions=16, seed=0)
        assert calc.embedding.shape == (small_grid.num_nodes, 16)
        assert calc.order == 16

    def test_zero_for_same_node(self, small_grid):
        assert JLResistanceCalculator(small_grid, seed=0).resistance(4, 4) == 0.0


class TestKrylovResistance:
    def test_ranking_correlates_with_exact(self, small_grid):
        exact = ExactResistanceCalculator(small_grid).edge_resistances()
        approx = ApproxResistanceCalculator(small_grid, seed=0).edge_resistances()
        assert spearmanr(exact, approx).statistic > 0.5

    def test_resistances_nonnegative(self, small_grid, rng):
        calc = ApproxResistanceCalculator(small_grid, seed=0)
        pairs = [tuple(rng.choice(small_grid.num_nodes, 2, replace=False)) for _ in range(30)]
        assert np.all(calc.resistances(pairs) >= 0.0)

    def test_empty_pairs(self, small_grid):
        assert ApproxResistanceCalculator(small_grid, seed=0).resistances([]).shape == (0,)


class TestFactoryAndHelpers:
    def test_make_resistance_calculator_dispatch(self, small_grid):
        assert isinstance(make_resistance_calculator(small_grid, "exact"), ExactResistanceCalculator)
        assert isinstance(make_resistance_calculator(small_grid, "jl", seed=0), JLResistanceCalculator)
        assert isinstance(make_resistance_calculator(small_grid, "krylov", seed=0), ApproxResistanceCalculator)
        with pytest.raises(ValueError):
            make_resistance_calculator(small_grid, "bogus")

    def test_edge_effective_resistances_modes(self, small_grid):
        exact = edge_effective_resistances(small_grid, exact=True)
        approx = edge_effective_resistances(small_grid, exact=False, seed=0)
        assert exact.shape == approx.shape == (small_grid.num_edges,)

    def test_spectral_distortions(self, small_grid):
        candidates = [(0, small_grid.num_nodes - 1, 2.0), (0, 1, 2.0)]
        distortions = spectral_distortions(small_grid, candidates, exact=True)
        # A long-range edge distorts more than a short-range one of equal weight.
        assert distortions[0] > distortions[1]


class TestTreePathResistance:
    def test_path_graph(self):
        tree = path_graph(5, weight=2.0)
        resistances = tree_path_resistances(tree, [(0, 4), (1, 3), (2, 2)])
        assert resistances[0] == pytest.approx(4 * 0.5)
        assert resistances[1] == pytest.approx(2 * 0.5)
        assert resistances[2] == 0.0

    def test_matches_exact_on_tree(self, small_grid):
        from repro.sparsify import maximum_weight_spanning_tree

        tree = maximum_weight_spanning_tree(small_grid)
        pairs = [(0, 10), (3, 40), (7, 55)]
        via_paths = tree_path_resistances(tree, pairs)
        exact = ExactResistanceCalculator(tree).resistances(pairs)
        assert np.allclose(via_paths, exact, rtol=1e-6, atol=1e-8)

    def test_requires_spanning_tree(self):
        disconnected = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ValueError):
            tree_path_resistances(disconnected, [(0, 3)])


class TestResistanceProperties:
    @given(st.integers(min_value=4, max_value=12), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_rayleigh_monotonicity(self, n, seed):
        """Adding an edge can only decrease effective resistances (Rayleigh)."""
        rng = np.random.default_rng(seed)
        graph = cycle_graph(n)
        calc_before = ExactResistanceCalculator(graph)
        u, v = rng.choice(n, size=2, replace=False)
        pairs = [(int(a), int(b)) for a in range(0, n, 2) for b in range(1, n, 2) if a != b]
        before = calc_before.resistances(pairs)
        augmented = graph.copy()
        augmented.add_edge(int(u), int(v), 1.0, merge="add")
        after = ExactResistanceCalculator(augmented).resistances(pairs)
        assert np.all(after <= before + 1e-9)

    @given(st.integers(min_value=2, max_value=30), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_series_law(self, length, weight):
        graph = path_graph(length + 1, weight=weight)
        assert effective_resistance(graph, 0, length) == pytest.approx(length / weight, rel=1e-6)
