"""Tests for SparsifierService: retention, caching, and concurrent reads.

The centrepiece is the stress test the snapshot layer was built for: four
reader threads hammer :meth:`SparsifierService.snapshot` while the writer
streams a 50-batch mixed churn workload, and every recorded answer is then
replayed offline — same op sequence, batch by batch — and must match **bit
for bit** at the same version epoch.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import InGrassConfig
from repro.graphs import grid_circuit_2d
from repro.service import SparsifierService
from repro.streams import DynamicScenarioConfig, build_churn_scenario

NUM_READERS = 4
NUM_BATCHES = 50


def _make_scenario(num_batches: int = 6, side: int = 8, seed: int = 5):
    graph = grid_circuit_2d(side, seed=seed)
    return build_churn_scenario(
        graph, DynamicScenarioConfig(num_iterations=num_batches, seed=seed))


def _service_for(scenario, **kwargs) -> SparsifierService:
    service = SparsifierService(InGrassConfig(seed=5), **kwargs)
    service.setup(scenario.graph, scenario.initial_sparsifier,
                  target_condition_number=scenario.initial_condition_number)
    return service


def _query_pairs(version: int, num_nodes: int):
    """Deterministic query pairs per epoch — replayable without shared RNG."""
    u = (version * 7) % num_nodes
    v = (version * 13 + 1) % num_nodes
    if u == v:
        v = (v + 1) % num_nodes
    return [(u, v), (0, num_nodes - 1)]


class TestServiceBasics:
    def test_rejects_bad_retention(self):
        with pytest.raises(ValueError):
            SparsifierService(InGrassConfig(), max_snapshots=0)

    def test_versions_and_counters(self):
        scenario = _make_scenario()
        service = _service_for(scenario)
        assert service.latest_version == 1
        assert service.applied_batches == 0
        for batch in scenario.batches:
            service.apply(batch)
        assert service.applied_batches == len(scenario.batches)
        assert service.latest_version == 1 + len(scenario.batches)

    def test_snapshot_handout_is_cached_per_epoch(self):
        scenario = _make_scenario()
        service = _service_for(scenario)
        first = service.snapshot()
        assert service.snapshot() is first          # O(1): same object
        service.apply(scenario.batches[0])
        second = service.snapshot()
        assert second is not first
        assert second.version == first.version + 1
        assert service.snapshot(first.version) is first

    def test_retention_is_bounded_lru(self):
        scenario = _make_scenario()
        service = _service_for(scenario, max_snapshots=2)
        evicted = service.snapshot()
        for batch in scenario.batches[:3]:
            service.apply(batch)
            service.snapshot()
        assert len(service.retained_versions) == 2
        assert evicted.version not in service.retained_versions
        with pytest.raises(KeyError):
            service.snapshot(evicted.version)
        # The evicted snapshot itself keeps answering (readers own it).
        assert evicted.effective_resistance(0, 5) > 0.0

    def test_remove_reweight_refresh_paths(self):
        scenario = _make_scenario()
        service = _service_for(scenario)
        edge = next(iter(service.driver.sparsifier.edges()))
        version = service.latest_version
        service.reweight([(edge[0], edge[1], 2.0)])
        assert service.latest_version == version + 1
        service.refresh()
        assert service.latest_version == version + 2
        assert service.applied_batches == 1

    def test_describe_round_trips(self):
        scenario = _make_scenario()
        service = _service_for(scenario)
        description = service.describe()
        assert description["latest_version"] == 1
        assert description["snapshot"]["version"] == 1
        assert description["retained_versions"] == [1]


class TestConcurrentStress:
    """Four readers vs a 50-batch churn writer, verified by offline replay."""

    @pytest.fixture(scope="class")
    def stress_run(self):
        scenario = _make_scenario(num_batches=NUM_BATCHES, side=10)
        service = _service_for(scenario, max_snapshots=4)
        num_nodes = scenario.graph.num_nodes

        records = [[] for _ in range(NUM_READERS)]
        handouts = [[] for _ in range(NUM_READERS)]
        errors = []
        stop = threading.Event()

        def reader(reader_id: int) -> None:
            try:
                while not stop.is_set():
                    snap = service.snapshot()
                    handouts[reader_id].append(snap)
                    for u, v in _query_pairs(snap.version, num_nodes):
                        records[reader_id].append(
                            (snap.version, u, v, snap.effective_resistance(u, v)))
            except Exception as exc:  # pragma: no cover - surfaced in asserts
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(NUM_READERS)]
        for thread in threads:
            thread.start()
        for batch in scenario.batches:
            service.apply(batch)
        stop.set()
        for thread in threads:
            thread.join(timeout=60.0)

        return {
            "scenario": scenario,
            "service": service,
            "records": records,
            "handouts": handouts,
            "errors": errors,
            "num_nodes": num_nodes,
        }

    def test_no_reader_errors_and_real_concurrency(self, stress_run):
        assert stress_run["errors"] == []
        total = sum(len(r) for r in stress_run["records"])
        assert total >= 2 * NUM_READERS  # every reader got answers
        versions = {v for reader in stress_run["records"] for v, *_ in reader}
        final = stress_run["service"].latest_version
        assert final == 1 + NUM_BATCHES
        assert versions <= set(range(1, final + 1))

    def test_every_concurrent_answer_is_bit_exact_vs_offline_replay(self, stress_run):
        scenario = stress_run["scenario"]
        num_nodes = stress_run["num_nodes"]
        # Offline replay: a fresh driver runs the identical op sequence with
        # no concurrency; after setup and after every batch we compute the
        # deterministic per-epoch queries.
        replay = SparsifierService(InGrassConfig(seed=5))
        replay.setup(scenario.graph.copy(), scenario.initial_sparsifier.copy(),
                     target_condition_number=scenario.initial_condition_number)
        truth = {}

        def record_epoch():
            snap = replay.snapshot()
            answers = {}
            for u, v in _query_pairs(snap.version, num_nodes):
                answers[(u, v)] = snap.effective_resistance(u, v)
            truth[snap.version] = answers

        record_epoch()
        for batch in scenario.batches:
            replay.apply(batch)
            record_epoch()

        checked = 0
        for reader in stress_run["records"]:
            for version, u, v, answer in reader:
                assert version in truth
                assert answer == truth[version][(u, v)], (
                    f"reader answer at version {version} for ({u},{v}) "
                    f"diverged from offline replay")
                checked += 1
        assert checked >= 2 * NUM_READERS

    def test_snapshot_handout_was_o1_shared_objects(self, stress_run):
        # Readers at the same epoch must have received the *same* snapshot
        # object — the service materialises one snapshot per epoch, ever.
        by_version = {}
        for handout in stress_run["handouts"]:
            for snap in handout:
                by_version.setdefault(snap.version, set()).add(id(snap))
        assert by_version  # readers actually observed epochs
        for version, identities in by_version.items():
            assert len(identities) == 1, f"epoch {version} was materialised twice"

    def test_hot_path_never_deep_copied_the_graph(self, stress_run):
        service = stress_run["service"]
        snap = service.snapshot()
        # The current epoch's snapshot shares the driver's cached edge
        # buffers — capture is reference handout, not a graph copy.
        for mine, live in zip(snap.graph_arrays(),
                              service.driver.graph.edge_arrays()):
            assert np.shares_memory(mine, live)
        # And the hierarchy detached at most once per exported epoch.
        hierarchy = service.driver.setup_result.hierarchy
        assert hierarchy.cow_copies <= 1 + NUM_BATCHES
