"""Property-based tests (hypothesis) for the fully dynamic update path.

For arbitrary random churn streams the maintained sparsifier must uphold the
structural invariants regardless of seed, deletion mix or batch shape:

* ``H(k)`` stays connected after every batch;
* ``H(k)`` supports ``G(k)``: same node set, and every sparsifier edge still
  exists in the evolving graph (deletions are honoured, repairs only re-use
  surviving edges);
* with the κ guard enabled, κ(G(k), H(k)) stays within the configured bound
  at every iteration (up to the guard's round budget).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import InGrassConfig, InGrassSparsifier
from repro.graphs import grid_circuit_2d, is_connected
from repro.streams import DynamicScenarioConfig, build_dynamic_scenario

GUARD_FACTOR = 1.8
DENSE_LIMIT = 300

churn_params = st.fixed_dictionaries(
    {
        "side": st.integers(min_value=6, max_value=9),
        "graph_seed": st.integers(min_value=0, max_value=2**16),
        "stream_seed": st.integers(min_value=0, max_value=2**16),
        "deletion_fraction": st.floats(min_value=0.2, max_value=0.7),
        "num_iterations": st.integers(min_value=4, max_value=8),
    }
)


def _run_churn(params):
    graph = grid_circuit_2d(params["side"], seed=params["graph_seed"])
    scenario = build_dynamic_scenario(
        graph,
        DynamicScenarioConfig(
            deletion_fraction=params["deletion_fraction"],
            num_iterations=params["num_iterations"],
            condition_dense_limit=DENSE_LIMIT,
            seed=params["stream_seed"],
        ),
    )
    ingrass = InGrassSparsifier(
        InGrassConfig(seed=0, kappa_guard_factor=GUARD_FACTOR,
                      kappa_guard_dense_limit=DENSE_LIMIT)
    )
    ingrass.setup(scenario.graph, scenario.initial_sparsifier,
                  target_condition_number=scenario.initial_condition_number)
    return scenario, ingrass


@settings(max_examples=10, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(params=churn_params)
def test_churn_preserves_connectivity_and_support(params):
    scenario, ingrass = _run_churn(params)
    for batch in scenario.batches:
        ingrass.update(batch)
        sparsifier = ingrass.sparsifier
        graph = ingrass.graph
        # Connected on the full node set.
        assert sparsifier.num_nodes == graph.num_nodes
        assert is_connected(sparsifier)
        # Support: every sparsifier edge survives in the evolving graph, so
        # deleted edges can never linger and repairs never invent edges.
        for u, v in sparsifier.edges():
            assert graph.has_edge(u, v)
        # Deletions were honoured on the sparsifier side too.
        for u, v in batch.deletions:
            assert not sparsifier.has_edge(u, v)


@settings(max_examples=6, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(params=churn_params)
def test_churn_kappa_stays_within_guard_bound(params):
    scenario, ingrass = _run_churn(params)
    target = scenario.initial_condition_number
    guards_ran = 0
    for batch in scenario.batches:
        result = ingrass.update(batch)
        guard = getattr(result, "kappa_guard", None)
        if guard is not None:
            guards_ran += 1
            # The guard never makes things worse, and when it reports success
            # the measured κ really is within the bound.
            assert guard.kappa_after <= guard.kappa_before + 1e-9
            if guard.satisfied:
                assert guard.kappa_after <= GUARD_FACTOR * target * (1 + 1e-9)
            # A guarded iteration ends within 2x target unless the guard
            # exhausted its round budget (it reports that honestly).
            if not guard.satisfied:
                assert guard.rounds == ingrass.config.kappa_guard_max_rounds or not guard.added_edges
    assert guards_ran == len([b for b in scenario.batches if b])
    # End state: quality within 2x target (the acceptance bound) — the guard
    # had the whole stream to keep the trajectory in check.
    final = ingrass.condition_number(dense_limit=DENSE_LIMIT)
    assert final <= 2.0 * target


@settings(max_examples=8, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(params=churn_params)
def test_churn_history_accounting_is_exact(params):
    scenario, ingrass = _run_churn(params)
    for batch in scenario.batches:
        ingrass.update(batch)
    assert len(ingrass.history) == len(scenario.batches)
    for record, batch in zip(ingrass.history, scenario.batches):
        assert record.streamed_edges == len(batch.insertions)
        assert record.removed_edges == len(batch.deletions)
        total = (record.added_edges + record.merged_edges
                 + record.redistributed_edges + record.dropped_edges)
        assert total == len(batch.insertions)
    assert ingrass.graph.num_edges == scenario.final_graph.num_edges
