"""Cross-module integration tests.

These tests exercise the public API the way the examples and the benchmark
harness do, checking the invariants that hold across module boundaries:
consistency between the incremental driver and the standalone phases, the
downstream preconditioner payoff, and the runnability of the example scripts.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

from repro import (
    InGrassConfig,
    InGrassSparsifier,
    build_scenario,
    relative_condition_number,
)
from repro.core import run_setup, run_update
from repro.graphs import grid_circuit_2d, is_connected
from repro.sparsify import GrassConfig, GrassSparsifier, offtree_density
from repro.spectral import PCGSolver
from repro.streams import ScenarioConfig, mixed_edges

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestDriverConsistency:
    def test_driver_matches_standalone_phases(self):
        """InGrassSparsifier.update must produce the same sparsifier as calling
        run_setup + run_update manually with the same inputs."""
        graph = grid_circuit_2d(12, seed=0)
        sparsifier = GrassSparsifier(GrassConfig(target_offtree_density=0.15, seed=0)).sparsify(
            graph, evaluate_condition=False).sparsifier
        target = relative_condition_number(graph, sparsifier)
        stream = mixed_edges(graph, 30, long_range_fraction=0.3, seed=1)

        driver = InGrassSparsifier(InGrassConfig())
        driver.setup(graph, sparsifier, target_condition_number=target)
        driver.update(stream)

        manual = sparsifier.copy()
        setup = run_setup(manual, InGrassConfig())
        run_update(manual, setup, stream, InGrassConfig(), target_condition_number=target)

        assert driver.sparsifier == manual

    def test_graph_tracking_matches_union(self):
        graph = grid_circuit_2d(10, seed=1)
        driver = InGrassSparsifier(InGrassConfig())
        driver.setup(graph, initial_offtree_density=0.1)
        stream = mixed_edges(graph, 20, seed=2)
        driver.update(stream)
        assert driver.graph == graph.union_with_edges(stream)

    def test_scenario_protocol_end_to_end(self):
        """The Table II protocol in miniature: inGRASS stays connected, stays
        sparse, and beats the never-update baseline on condition number."""
        graph = grid_circuit_2d(14, seed=3)
        scenario = build_scenario(graph, ScenarioConfig(num_iterations=4, condition_dense_limit=400, seed=3))
        driver = InGrassSparsifier(InGrassConfig())
        driver.setup(scenario.graph, scenario.initial_sparsifier,
                     target_condition_number=scenario.initial_condition_number)
        for batch in scenario.batches:
            driver.update(batch)
        assert is_connected(driver.sparsifier)
        blind = offtree_density(scenario.initial_sparsifier.union_with_edges(scenario.all_new_edges))
        assert offtree_density(driver.sparsifier) <= blind
        never_updated = relative_condition_number(scenario.final_graph, scenario.initial_sparsifier,
                                                  dense_limit=400)
        updated = relative_condition_number(scenario.final_graph, driver.sparsifier, dense_limit=400)
        assert updated <= never_updated * 1.2


class TestDownstreamPreconditioner:
    def test_maintained_sparsifier_is_a_good_preconditioner(self, rng):
        graph = grid_circuit_2d(16, seed=4)
        sparsifier = GrassSparsifier(GrassConfig(target_offtree_density=0.15, seed=0)).sparsify(
            graph, evaluate_condition=False).sparsifier
        kappa0 = relative_condition_number(graph, sparsifier)

        stream = mixed_edges(graph, int(0.2 * graph.num_nodes), long_range_fraction=0.3, seed=5)
        driver = InGrassSparsifier(InGrassConfig())
        driver.setup(graph, sparsifier, target_condition_number=kappa0)
        driver.update(stream)
        updated_graph = driver.graph

        b = rng.standard_normal(graph.num_nodes)
        plain = PCGSolver(updated_graph).solve(b)
        preconditioned = PCGSolver(updated_graph, driver.sparsifier).solve(b)
        assert preconditioned.converged
        assert preconditioned.iterations < plain.iterations


class TestExamplesRun:
    """Smoke-run the lightweight example scripts end to end."""

    @pytest.mark.parametrize("script", ["lrd_walkthrough.py", "filtering_walkthrough.py"])
    def test_walkthrough_examples(self, script, capsys):
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
        output = capsys.readouterr().out
        assert "level" in output.lower()

    @pytest.mark.slow
    def test_quickstart_example(self, capsys):
        runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
        output = capsys.readouterr().out
        assert "final sparsifier" in output

    @pytest.mark.slow
    def test_fem_example_with_small_args(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["fem_mesh_updates.py", "--nodes", "300", "--refinements", "2"])
        runpy.run_path(str(EXAMPLES_DIR / "fem_mesh_updates.py"), run_name="__main__")
        output = capsys.readouterr().out
        assert "kappa after refinements" in output
