"""Tests for the fully dynamic update subsystem: deletion events, mixed
batches, the sparsifier repair path, cache invalidation hooks and the κ
guard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    InGrassConfig,
    InGrassSparsifier,
    LRDConfig,
    MixedUpdateResult,
    SimilarityFilter,
    lrd_decompose,
    run_kappa_guard,
    run_removal,
    run_setup,
)
from repro.graphs import (
    Graph,
    GraphValidationError,
    bridge_edges,
    cycle_graph,
    grid_circuit_2d,
    is_connected,
    non_bridge_edges,
    path_graph,
    removals_keep_connected,
    validate_removals,
)
from repro.spectral import relative_condition_number
from repro.spectral.effective_resistance import (
    ApproxResistanceCalculator,
    ExactResistanceCalculator,
    JLResistanceCalculator,
)
from repro.streams import (
    DeletionEvent,
    DynamicScenarioConfig,
    InsertionEvent,
    MixedBatch,
    build_churn_scenario,
    build_deletion_scenario,
    removable_edges,
)


class TestBridges:
    def test_path_is_all_bridges(self):
        graph = path_graph(6)
        assert sorted(bridge_edges(graph)) == sorted(graph.edges())
        assert non_bridge_edges(graph) == []

    def test_cycle_has_no_bridges(self):
        graph = cycle_graph(6)
        assert bridge_edges(graph) == []
        assert sorted(non_bridge_edges(graph)) == sorted(graph.edges())

    def test_bridge_between_two_cycles(self):
        # Two triangles joined by one bridge edge (2, 3).
        graph = Graph(6, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0),
                          (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0), (2, 3, 1.0)])
        assert bridge_edges(graph) == [(2, 3)]


class TestRemovalValidation:
    def test_validate_removals_cleans_and_dedupes(self, small_grid):
        edge = next(iter(small_grid.edges()))
        pairs = validate_removals(small_grid, [edge, (edge[1], edge[0]), edge])
        assert pairs == [edge]

    def test_validate_removals_missing_policies(self, small_grid):
        with pytest.raises(GraphValidationError):
            validate_removals(small_grid, [(0, 0)])
        with pytest.raises(GraphValidationError):
            validate_removals(small_grid, [(0, small_grid.num_nodes + 5)])
        missing = (0, small_grid.num_nodes - 1)
        if not small_grid.has_edge(*missing):
            with pytest.raises(GraphValidationError):
                validate_removals(small_grid, [missing])
            assert validate_removals(small_grid, [missing], missing="skip") == []

    def test_removals_keep_connected(self):
        graph = cycle_graph(5)
        one = [(0, 1)]
        assert removals_keep_connected(graph, one)
        # Removing two edges of a cycle always disconnects it.
        assert not removals_keep_connected(graph, [(0, 1), (2, 3)])


class TestRemovableEdges:
    def test_sequential_removal_keeps_connectivity(self, medium_grid):
        edges = removable_edges(medium_grid, 30, seed=0)
        assert len(edges) == 30
        working = medium_grid.copy()
        for u, v in edges:
            working.remove_edge(u, v)
            assert is_connected(working)

    def test_tree_offers_no_removable_edges(self):
        assert removable_edges(path_graph(8), 3, seed=0) == []

    def test_protect_is_honoured(self, small_grid):
        protect = set(list(small_grid.edges())[:20])
        edges = removable_edges(small_grid, 10, seed=1, protect=protect)
        assert not protect & set(edges)


class TestMixedBatchModel:
    def test_counts_and_fraction(self):
        batch = MixedBatch(insertions=[(0, 1, 1.0), (1, 2, 2.0)], deletions=[(3, 4)])
        assert batch.num_events == 3
        assert len(batch) == 3
        assert batch.deletion_fraction == pytest.approx(1 / 3)
        assert bool(batch)
        assert not MixedBatch()
        assert MixedBatch().deletion_fraction == 0.0

    def test_events_order_deletions_first(self):
        batch = MixedBatch(insertions=[(0, 1, 1.0)], deletions=[(3, 4)])
        events = list(batch.events())
        assert isinstance(events[0], DeletionEvent)
        assert isinstance(events[1], InsertionEvent)
        assert events[0].edge == (3, 4)
        assert events[1].edge == (0, 1, 1.0)

    def test_from_events_roundtrip(self):
        events = [InsertionEvent(5, 2, 1.5), DeletionEvent(7, 3)]
        batch = MixedBatch.from_events(events)
        assert batch.insertions == [(2, 5, 1.5)]
        assert batch.deletions == [(3, 7)]
        with pytest.raises(TypeError):
            MixedBatch.from_events([object()])

    def test_from_events_rejects_insert_then_delete(self):
        # Insert-then-delete of the same edge cannot be represented by one
        # batch (deletions apply first) — must be rejected, not reordered.
        events = [InsertionEvent(1, 2, 1.0), DeletionEvent(2, 1)]
        with pytest.raises(ValueError, match="inserted and then deleted"):
            MixedBatch.from_events(events)

    def test_from_events_allows_delete_then_insert(self):
        # A switch swap — delete the old strap, wire a replacement on the
        # same pair — matches the batch's deletions-first order exactly.
        batch = MixedBatch.from_events([DeletionEvent(1, 2), InsertionEvent(1, 2, 2.0)])
        assert batch.deletions == [(1, 2)]
        assert batch.insertions == [(1, 2, 2.0)]


class TestDynamicScenarios:
    def test_churn_scenario_structure(self):
        graph = grid_circuit_2d(12, seed=0)
        config = DynamicScenarioConfig(deletion_fraction=0.4, num_iterations=8,
                                       condition_dense_limit=400, seed=0)
        scenario = build_churn_scenario(graph, config)
        assert len(scenario.batches) == 8
        assert scenario.deletion_fraction == pytest.approx(0.4, abs=0.05)
        # Batch-by-batch application never disconnects the evolving graph.
        working = graph.copy()
        for batch in scenario.batches:
            for u, v in batch.deletions:
                working.remove_edge(u, v)
            working.add_edges(batch.insertions, merge="add")
            assert is_connected(working)
        assert working.num_edges == scenario.final_graph.num_edges

    def test_deletion_heavy_scenario(self):
        graph = grid_circuit_2d(10, seed=1)
        scenario = build_deletion_scenario(
            graph, DynamicScenarioConfig(deletion_fraction=0.75, num_iterations=5,
                                         condition_dense_limit=400, seed=1))
        assert scenario.deletion_fraction >= 0.6
        assert is_connected(scenario.final_graph)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DynamicScenarioConfig(deletion_fraction=1.5)
        with pytest.raises(ValueError):
            DynamicScenarioConfig(initial_offtree_density=0.4, final_offtree_density=0.3)


class TestFilterInvalidation:
    def _filter_at_level_zero(self, sparsifier):
        hierarchy = lrd_decompose(sparsifier, LRDConfig(seed=0))
        return SimilarityFilter(sparsifier, hierarchy, 0), hierarchy

    def test_removed_representative_keeps_map_consistent(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        working = sparsifier.copy()
        similarity_filter, hierarchy = self._filter_at_level_zero(working)
        labels = hierarchy.level(0).labels
        # Find a cluster pair connected by exactly one sparsifier edge.
        from collections import Counter

        pair_counts = Counter()
        pair_edge = {}
        for u, v in working.edges():
            if labels[u] != labels[v]:
                pair = tuple(sorted((int(labels[u]), int(labels[v]))))
                pair_counts[pair] += 1
                pair_edge[pair] = (u, v)
        single = next((pair for pair, count in pair_counts.items() if count == 1), None)
        if single is None:
            pytest.skip("no singly-connected cluster pair at level 0")
        u, v = pair_edge[single]
        assert similarity_filter.connects_clusters(u, v)
        working.remove_edge(u, v)
        similarity_filter.notify_edge_removed(u, v)
        assert not similarity_filter.connects_clusters(u, v)
        # Re-adding restores the connection.
        working.add_edge(u, v, 1.0)
        similarity_filter.notify_edge_added(u, v)
        assert similarity_filter.connects_clusters(u, v)

    def test_multi_edge_pair_survives_one_removal(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        working = sparsifier.copy()
        similarity_filter, hierarchy = self._filter_at_level_zero(working)
        labels = hierarchy.level(0).labels
        from collections import Counter, defaultdict

        pair_edges = defaultdict(list)
        for u, v in working.edges():
            if labels[u] != labels[v]:
                pair = tuple(sorted((int(labels[u]), int(labels[v]))))
                pair_edges[pair].append((u, v))
        multi = next((edges for edges in pair_edges.values() if len(edges) >= 2), None)
        if multi is None:
            pytest.skip("no doubly-connected cluster pair at level 0")
        first, second = multi[0], multi[1]
        working.remove_edge(*first)
        similarity_filter.notify_edge_removed(*first)
        # The other edge still realises the connection.
        assert similarity_filter.connects_clusters(second[0], second[1])


class TestHierarchyInvalidation:
    def test_note_edge_removed_inflates_diameters(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        hierarchy = lrd_decompose(sparsifier, LRDConfig(seed=0))
        u, v = next(iter(sparsifier.edges()))
        level_index = hierarchy.first_common_level(u, v)
        assert level_index is not None
        cluster = hierarchy.cluster_of(u, level_index)
        before = float(hierarchy.level(level_index).cluster_diameters[cluster])
        touched = hierarchy.note_edge_removed(u, v, inflation_factor=1.5)
        assert touched >= 1
        after = float(hierarchy.level(level_index).cluster_diameters[cluster])
        assert after >= before * 1.5 - 1e-12 or after == pytest.approx(1e-12)
        assert hierarchy.noted_removals == 1
        assert hierarchy.needs_refresh(1)
        assert not hierarchy.needs_refresh(2)
        hierarchy.reset_staleness()
        assert hierarchy.noted_removals == 0

    def test_invalid_inflation_rejected(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        hierarchy = lrd_decompose(sparsifier, LRDConfig(seed=0))
        with pytest.raises(ValueError):
            hierarchy.note_edge_removed(0, 1, inflation_factor=0.5)
        with pytest.raises(ValueError):
            hierarchy.needs_refresh(0)


class TestResistanceRefresh:
    def test_exact_refresh_tracks_mutation(self, small_grid):
        graph = small_grid.copy()
        calc = ExactResistanceCalculator(graph)
        pair = next(iter(non_bridge_edges(graph)))
        before = calc.resistance(*pair)
        graph.remove_edge(*pair)
        calc.refresh()
        after = calc.resistance(*pair)
        fresh = ExactResistanceCalculator(graph).resistance(*pair)
        assert after == pytest.approx(fresh, rel=1e-9)
        assert after > before  # removing an edge can only raise resistance

    @pytest.mark.parametrize("calculator_cls", [ApproxResistanceCalculator, JLResistanceCalculator])
    def test_embedding_refresh_rebuilds(self, small_grid, calculator_cls):
        graph = small_grid.copy()
        calc = calculator_cls(graph, seed=0)
        pair = next(iter(non_bridge_edges(graph)))
        graph.remove_edge(*pair)
        old_embedding = calc.embedding.copy()
        calc.refresh()
        assert calc.embedding.shape[0] == graph.num_nodes
        assert not np.allclose(calc.embedding, old_embedding)


class TestRunRemoval:
    @pytest.fixture
    def dynamic_pair(self, grid_with_sparsifier):
        graph, sparsifier = grid_with_sparsifier
        working_graph = graph.copy()
        working = sparsifier.copy()
        setup = run_setup(working, InGrassConfig(lrd=LRDConfig(seed=0)))
        return working_graph, working, setup

    def test_requires_graph_side_removal_first(self, dynamic_pair):
        graph, sparsifier, setup = dynamic_pair
        edge = next(iter(sparsifier.edges()))
        with pytest.raises(GraphValidationError):
            run_removal(sparsifier, setup, [edge], graph=graph,
                        target_condition_number=20.0)

    def test_graph_only_removal_is_a_noop_for_sparsifier(self, dynamic_pair):
        graph, sparsifier, setup = dynamic_pair
        only_graph = next(edge for edge in graph.edges() if not sparsifier.has_edge(*edge))
        graph.remove_edge(*only_graph)
        before = sparsifier.num_edges
        result = run_removal(sparsifier, setup, [only_graph], graph=graph,
                             target_condition_number=20.0)
        assert result.removed_from_sparsifier == []
        assert result.num_repairs == 0
        assert sparsifier.num_edges == before

    def test_sparsifier_removal_triggers_repair_and_stays_connected(self, dynamic_pair):
        graph, sparsifier, setup = dynamic_pair
        shared = [edge for edge in removable_edges(graph, 12, seed=2)
                  if sparsifier.has_edge(*edge)]
        if not shared:
            pytest.skip("no removable edge shared between graph and sparsifier")
        pairs = shared[:4]
        for u, v in pairs:
            graph.remove_edge(u, v)
        # Pin rebuild mode: this test exercises the diameter-inflation
        # bookkeeping, which maintain mode (the default) replaces with
        # structural splices.
        result = run_removal(sparsifier, setup, pairs, graph=graph,
                             config=InGrassConfig(hierarchy_mode="rebuild"),
                             target_condition_number=20.0)
        assert len(result.removed_from_sparsifier) == len(pairs)
        assert is_connected(sparsifier)
        for u, v in pairs:
            assert not sparsifier.has_edge(u, v)
        # Repairs only re-use surviving graph edges.
        for u, v, _ in result.repaired_edges:
            assert graph.has_edge(u, v)
        assert result.inflated_levels >= len(pairs)

    def test_reconnection_after_cutting_a_sparsifier_bridge(self):
        # A cycle graph sparsified down to a path: removing a path edge
        # disconnects the sparsifier and the repair must re-close it from
        # the surviving cycle edges.
        graph = cycle_graph(10)
        sparsifier = path_graph(10)  # spanning tree of the cycle
        setup = run_setup(sparsifier.copy(), InGrassConfig(lrd=LRDConfig(seed=0)))
        working = sparsifier.copy()
        working_graph = graph.copy()
        working_graph.remove_edge(4, 5)
        result = run_removal(working, setup, [(4, 5)], graph=working_graph,
                             target_condition_number=50.0)
        assert result.removed_from_sparsifier == [(4, 5, 1.0)]
        assert len(result.reconnection_edges) >= 1
        assert is_connected(working)

    def test_excess_weight_rehomed_on_removal(self, dynamic_pair):
        """Weight parked on a removed sparsifier edge by earlier merges is
        re-homed onto surviving support instead of silently discarded."""
        graph, sparsifier, setup = dynamic_pair
        shared = [edge for edge in removable_edges(graph, 12, seed=7)
                  if sparsifier.has_edge(*edge)]
        if not shared:
            pytest.skip("no removable edge shared between graph and sparsifier")
        u, v = shared[0]
        sparsifier.increase_weight(u, v, 5.0)  # simulate earlier merge decisions
        carried = sparsifier.weight(u, v)
        physical = graph.remove_edge(u, v)
        result = run_removal(sparsifier, setup, [(u, v, physical)], graph=graph,
                             target_condition_number=20.0)
        excess = max(carried - physical, 0.0)
        assert result.reassigned_weight + result.discarded_weight == pytest.approx(excess)

    def test_pair_only_removals_skip_reassignment(self, dynamic_pair):
        graph, sparsifier, setup = dynamic_pair
        shared = [edge for edge in removable_edges(graph, 12, seed=8)
                  if sparsifier.has_edge(*edge)]
        if not shared:
            pytest.skip("no removable edge shared between graph and sparsifier")
        u, v = shared[0]
        graph.remove_edge(u, v)
        result = run_removal(sparsifier, setup, [(u, v)], graph=graph,
                             target_condition_number=20.0)
        assert result.reassigned_weight == 0.0
        assert result.discarded_weight == 0.0

    def test_kappa_guard_restores_quality(self, dynamic_pair):
        graph, sparsifier, setup = dynamic_pair
        target = relative_condition_number(graph, sparsifier)
        config = InGrassConfig(kappa_guard_factor=1.5, kappa_guard_dense_limit=500,
                               lrd=LRDConfig(seed=0))
        # Damage the sparsifier: delete several carried edges from both views.
        shared = [edge for edge in removable_edges(graph, 20, seed=3)
                  if sparsifier.has_edge(*edge)][:6]
        if len(shared) < 2:
            pytest.skip("not enough shared removable edges")
        for u, v in shared:
            graph.remove_edge(u, v)
        run_removal(sparsifier, setup, shared, graph=graph, config=config,
                    target_condition_number=target)
        report = run_kappa_guard(sparsifier, setup, graph=graph, config=config,
                                 target_condition_number=target)
        assert report.kappa_after <= report.kappa_before + 1e-9
        assert report.satisfied or report.rounds == config.kappa_guard_max_rounds

    def test_kappa_guard_requires_configuration(self, dynamic_pair):
        graph, sparsifier, setup = dynamic_pair
        with pytest.raises(ValueError):
            run_kappa_guard(sparsifier, setup, graph=graph,
                            config=InGrassConfig(), target_condition_number=10.0)


class TestDriverDynamics:
    def _driver(self, medium_grid, **config_kwargs):
        ingrass = InGrassSparsifier(InGrassConfig(seed=0, **config_kwargs))
        ingrass.setup(medium_grid, initial_offtree_density=0.15)
        return ingrass

    def test_update_accepts_generator(self, medium_grid):
        """Regression: a generator batch must be materialised exactly once."""
        from repro.streams import random_pair_edges

        ingrass = self._driver(medium_grid)
        edges = random_pair_edges(medium_grid, 9, seed=4)
        graph_edges_before = ingrass.graph.num_edges
        result = ingrass.update(edge for edge in edges)
        assert ingrass.graph.num_edges == graph_edges_before + 9
        assert result.summary.total == 9
        record = ingrass.history[-1]
        assert record.streamed_edges == 9

    def test_remove_updates_both_views(self, medium_grid):
        ingrass = self._driver(medium_grid)
        pairs = removable_edges(ingrass.graph, 5, seed=5)
        graph_before = ingrass.graph.num_edges
        result = ingrass.remove(pairs)
        assert ingrass.graph.num_edges == graph_before - len(pairs)
        assert is_connected(ingrass.sparsifier)
        record = ingrass.history[-1]
        assert record.removed_edges == len(pairs)
        assert record.streamed_edges == 0
        assert record.repair_edges == result.num_repairs

    def test_remove_rejects_disconnecting_batch(self):
        graph = cycle_graph(8)
        ingrass = InGrassSparsifier(InGrassConfig(seed=0))
        ingrass.setup(graph, graph.copy())
        with pytest.raises(GraphValidationError):
            ingrass.remove([(0, 1), (3, 4)])
        # Nothing was mutated by the rejected batch.
        assert ingrass.graph.num_edges == graph.num_edges

    def test_remove_rejects_unknown_edge(self, medium_grid):
        ingrass = self._driver(medium_grid)
        missing = (0, medium_grid.num_nodes - 1)
        if ingrass.graph.has_edge(*missing):
            pytest.skip("edge unexpectedly present")
        with pytest.raises(GraphValidationError):
            ingrass.remove([missing])

    def test_mixed_batch_returns_mixed_result(self, medium_grid):
        from repro.streams import random_pair_edges

        ingrass = self._driver(medium_grid)
        deletions = removable_edges(ingrass.graph, 3, seed=6)
        insertions = random_pair_edges(ingrass.graph, 4, seed=6)
        batch = MixedBatch(insertions=insertions, deletions=deletions)
        result = ingrass.update(batch)
        assert isinstance(result, MixedUpdateResult)
        assert result.removal is not None and result.insertion is not None
        assert result.seconds >= 0.0
        record = ingrass.history[-1]
        assert record.streamed_edges == 4
        assert record.removed_edges == 3
        assert is_connected(ingrass.sparsifier)

    def test_empty_mixed_batch(self, medium_grid):
        ingrass = self._driver(medium_grid)
        result = ingrass.update(MixedBatch())
        assert result.removal is None and result.insertion is None
        assert ingrass.history[-1].streamed_edges == 0

    def test_resetup_after_removals_refreshes(self, medium_grid):
        # resetup_after_removals is only honoured in rebuild mode (maintain,
        # the default, keeps the hierarchy accurate structurally instead).
        ingrass = self._driver(medium_grid, resetup_after_removals=2,
                               hierarchy_mode="rebuild")
        setup_before = ingrass.setup_result
        removed = 0
        for _ in range(6):
            pairs = [edge for edge in removable_edges(ingrass.graph, 4, seed=removed)
                     if ingrass.sparsifier.has_edge(*edge)][:2]
            if not pairs:
                continue
            ingrass.remove(pairs)
            removed += len(pairs)
            if removed >= 2:
                break
        if removed < 2:
            pytest.skip("could not remove enough sparsifier edges")
        assert ingrass.setup_result is not setup_before
        assert ingrass.removals_since_setup == 0

    def test_churn_acceptance_protocol(self, medium_grid):
        """Acceptance: >=30% deletions over >=10 iterations, sparsifier stays
        connected and within 2x the target condition number throughout."""
        scenario = build_churn_scenario(
            medium_grid,
            DynamicScenarioConfig(deletion_fraction=0.35, num_iterations=10,
                                  condition_dense_limit=400, seed=0))
        assert scenario.deletion_fraction >= 0.30
        target = scenario.initial_condition_number
        ingrass = InGrassSparsifier(
            InGrassConfig(seed=0, kappa_guard_factor=1.8, kappa_guard_dense_limit=400))
        ingrass.setup(scenario.graph, scenario.initial_sparsifier,
                      target_condition_number=target)
        for batch in scenario.batches:
            ingrass.update(batch)
            assert is_connected(ingrass.sparsifier)
            kappa = ingrass.condition_number(dense_limit=400)
            assert kappa <= 2.0 * target
        assert len(ingrass.history) == 10
        # The sparsifier tracked the graph: every edge it carries survives in G.
        for u, v in ingrass.sparsifier.edges():
            assert ingrass.graph.has_edge(u, v)
