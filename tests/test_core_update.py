"""Tests for the inGRASS update machinery: distortion estimation, similarity
filtering, setup/update phases and the incremental driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FilterAction,
    InGrassConfig,
    InGrassSparsifier,
    LRDConfig,
    ResistanceEmbedding,
    SimilarityFilter,
    estimate_distortions,
    filter_by_threshold,
    lrd_decompose,
    run_setup,
    run_update,
    sort_by_distortion,
)
from repro.graphs import Graph, is_connected, paper_figure2_graph
from repro.spectral import relative_condition_number
from repro.sparsify import offtree_density
from repro.streams import mixed_edges, random_pair_edges, split_into_batches


@pytest.fixture
def setup_pair(grid_with_sparsifier):
    """(graph, sparsifier, SetupResult) on the medium grid."""
    graph, sparsifier = grid_with_sparsifier
    working = sparsifier.copy()
    setup = run_setup(working, InGrassConfig(lrd=LRDConfig(seed=0)))
    return graph, working, setup


class TestDistortionEstimation:
    def test_empty_batch(self, setup_pair):
        _, _, setup = setup_pair
        assert estimate_distortions(setup.embedding, []) == []

    def test_distortion_is_weight_times_bound(self, setup_pair):
        _, sparsifier, setup = setup_pair
        edges = [(0, sparsifier.num_nodes - 1, 2.0), (0, 1, 2.0)]
        estimates = estimate_distortions(setup.embedding, edges)
        for estimate in estimates:
            assert estimate.distortion == pytest.approx(estimate.edge[2] * estimate.resistance_bound)

    def test_long_range_ranks_above_local(self, setup_pair):
        _, sparsifier, setup = setup_pair
        n = sparsifier.num_nodes
        edges = [(0, 1, 1.0), (0, n - 1, 1.0)]
        estimates = sort_by_distortion(estimate_distortions(setup.embedding, edges))
        assert estimates[0].edge == (0, n - 1, 1.0)

    def test_sorting_is_descending(self, setup_pair):
        _, sparsifier, setup = setup_pair
        edges = random_pair_edges(sparsifier, 20, seed=3)
        estimates = sort_by_distortion(estimate_distortions(setup.embedding, edges))
        values = [e.distortion for e in estimates]
        assert values == sorted(values, reverse=True)

    def test_threshold_filtering(self, setup_pair):
        _, sparsifier, setup = setup_pair
        edges = random_pair_edges(sparsifier, 20, seed=4)
        estimates = estimate_distortions(setup.embedding, edges)
        kept, dropped = filter_by_threshold(estimates, 0.0)
        assert len(kept) == 20 and not dropped
        kept, dropped = filter_by_threshold(estimates, 1.0)
        assert len(kept) + len(dropped) == 20
        assert all(k.distortion >= d.distortion for k in kept for d in dropped)


class TestSimilarityFilter:
    def _make_filter(self, sparsifier, level_override=None, **kwargs):
        hierarchy = lrd_decompose(sparsifier, LRDConfig(seed=0))
        level = hierarchy.num_levels - 2 if level_override is None else level_override
        level = max(0, min(level, hierarchy.num_levels - 1))
        return SimilarityFilter(sparsifier, hierarchy, level, **kwargs), hierarchy

    def test_intra_cluster_edge_redistributed(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        working = sparsifier.copy()
        similarity_filter, hierarchy = self._make_filter(working)
        level = similarity_filter.filtering_level
        labels = hierarchy.level(level).labels
        # Find a non-edge inside one cluster.
        cluster_nodes = np.flatnonzero(labels == labels[0])
        candidate = None
        for p in cluster_nodes:
            for q in cluster_nodes:
                if p < q and not working.has_edge(int(p), int(q)):
                    candidate = (int(p), int(q))
                    break
            if candidate:
                break
        if candidate is None:
            pytest.skip("no intra-cluster non-edge available")
        total_before = working.total_weight()
        edges_before = working.num_edges
        estimates = estimate_distortions(ResistanceEmbedding(hierarchy), [(candidate[0], candidate[1], 2.0)])
        decisions, summary = similarity_filter.apply(estimates)
        assert summary.redistributed == 1
        assert working.num_edges == edges_before
        # Weight was spread over the cluster's internal edges (if any exist).
        assert working.total_weight() >= total_before

    def test_inter_cluster_merge(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        working = sparsifier.copy()
        similarity_filter, hierarchy = self._make_filter(working, level_override=0)
        labels = hierarchy.level(0).labels
        # Find an existing sparsifier edge crossing two clusters, then stream a
        # different node pair with the same cluster pair.
        target = None
        for u, v in working.edges():
            if labels[u] != labels[v]:
                target = (u, v)
                break
        assert target is not None
        u, v = target
        same_pair = None
        for p in np.flatnonzero(labels == labels[u]):
            for q in np.flatnonzero(labels == labels[v]):
                if (int(p), int(q)) != (u, v) and int(p) != int(q) and not working.has_edge(int(p), int(q)):
                    same_pair = (int(p), int(q))
                    break
            if same_pair:
                break
        if same_pair is None:
            pytest.skip("no alternative cluster-pair edge available")
        weight_before = working.weight(u, v)
        edges_before = working.num_edges
        estimates = estimate_distortions(ResistanceEmbedding(hierarchy), [(same_pair[0], same_pair[1], 1.5)])
        decisions, summary = similarity_filter.apply(estimates)
        assert summary.merged == 1
        assert working.num_edges == edges_before
        assert working.weight(u, v) == pytest.approx(weight_before + 1.5)

    def test_unique_edge_added_and_registered(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        working = sparsifier.copy()
        similarity_filter, hierarchy = self._make_filter(working, level_override=0)
        labels = hierarchy.level(0).labels
        # Find two clusters not currently connected by any sparsifier edge.
        connected_pairs = {tuple(sorted((int(labels[u]), int(labels[v])))) for u, v in working.edges()}
        found = None
        num_clusters = int(labels.max()) + 1
        for a in range(num_clusters):
            for b in range(a + 1, num_clusters):
                if (a, b) not in connected_pairs:
                    p = int(np.flatnonzero(labels == a)[0])
                    q = int(np.flatnonzero(labels == b)[0])
                    if not working.has_edge(p, q):
                        found = (p, q)
                        break
            if found:
                break
        if found is None:
            pytest.skip("all cluster pairs already connected at level 0")
        edges_before = working.num_edges
        estimates = estimate_distortions(ResistanceEmbedding(hierarchy), [(found[0], found[1], 1.0)])
        decisions, summary = similarity_filter.apply(estimates)
        assert summary.added == 1
        assert working.num_edges == edges_before + 1
        # A second edge between the same clusters must now be merged, not added.
        assert similarity_filter.connects_clusters(found[0], found[1])

    def test_max_additions_cap(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        working = sparsifier.copy()
        similarity_filter, hierarchy = self._make_filter(working, level_override=0)
        edges = random_pair_edges(working, 30, seed=9)
        estimates = sort_by_distortion(estimate_distortions(ResistanceEmbedding(hierarchy), edges))
        decisions, summary = similarity_filter.apply(estimates, max_additions=3)
        assert summary.added <= 3
        assert summary.total == 30

    def test_invalid_level_rejected(self, grid_with_sparsifier):
        _, sparsifier = grid_with_sparsifier
        hierarchy = lrd_decompose(sparsifier, LRDConfig(seed=0))
        with pytest.raises(ValueError):
            SimilarityFilter(sparsifier, hierarchy, hierarchy.num_levels)


class TestSetupAndUpdate:
    def test_setup_requires_connected_sparsifier(self):
        disconnected = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ValueError):
            run_setup(disconnected)

    def test_setup_result_contents(self, setup_pair):
        _, sparsifier, setup = setup_pair
        assert setup.num_levels == setup.hierarchy.num_levels
        assert setup.setup_seconds >= 0.0
        assert setup.filtering_level_for(1e9) == setup.hierarchy.num_levels - 1

    def test_update_requires_target_or_level(self, setup_pair):
        graph, sparsifier, setup = setup_pair
        edges = random_pair_edges(graph, 5, seed=1)
        with pytest.raises(ValueError):
            run_update(sparsifier, setup, edges, InGrassConfig())

    def test_update_mutates_sparsifier_consistently(self, setup_pair):
        graph, sparsifier, setup = setup_pair
        edges = random_pair_edges(graph, 25, seed=2)
        before = sparsifier.num_edges
        result = run_update(sparsifier, setup, edges, target_condition_number=20.0)
        assert sparsifier.num_edges == before + result.summary.added
        assert result.summary.total == len(edges)
        assert is_connected(sparsifier)
        assert len(result.added_edges) == result.summary.added

    def test_update_distortion_threshold_drops_edges(self, setup_pair):
        graph, sparsifier, setup = setup_pair
        edges = mixed_edges(graph, 30, long_range_fraction=0.2, seed=3)
        config = InGrassConfig(distortion_threshold=1.0)
        result = run_update(sparsifier, setup, edges, config, target_condition_number=20.0)
        assert result.dropped_low_distortion > 0

    def test_update_fill_cap(self, setup_pair):
        graph, sparsifier, setup = setup_pair
        edges = random_pair_edges(graph, 40, seed=4)
        config = InGrassConfig(max_fill_fraction=0.1)
        result = run_update(sparsifier, setup, edges, config, target_condition_number=1e6)
        assert result.summary.added <= max(1, int(round(0.1 * len(edges))))


class TestInGrassSparsifier:
    def test_requires_setup_before_use(self):
        ingrass = InGrassSparsifier()
        with pytest.raises(RuntimeError):
            _ = ingrass.sparsifier
        with pytest.raises(RuntimeError):
            ingrass.update([])

    def test_setup_builds_sparsifier_when_missing(self, medium_grid):
        ingrass = InGrassSparsifier(InGrassConfig(seed=0))
        ingrass.setup(medium_grid, initial_offtree_density=0.15)
        assert is_connected(ingrass.sparsifier)
        assert ingrass.target_condition_number is not None

    def test_full_incremental_run_keeps_quality(self, medium_grid):
        """End-to-end: the updated sparsifier must stay connected, stay much
        sparser than blind inclusion, and keep kappa well below the
        never-update baseline."""
        ingrass = InGrassSparsifier(InGrassConfig(seed=0))
        from repro.sparsify import GrassConfig, GrassSparsifier

        initial = GrassSparsifier(GrassConfig(target_offtree_density=0.1, seed=0)).sparsify(
            medium_grid, evaluate_condition=False).sparsifier
        kappa0 = relative_condition_number(medium_grid, initial)
        ingrass.setup(medium_grid, initial, target_condition_number=kappa0)

        stream = mixed_edges(medium_grid, int(0.24 * medium_grid.num_nodes), long_range_fraction=0.3, seed=1)
        batches = split_into_batches(stream, 5)
        results = ingrass.update_many(batches)
        assert len(results) == 5
        assert len(ingrass.history) == 5

        final_graph = ingrass.graph
        assert final_graph.num_edges == medium_grid.num_edges + len(stream)
        # Sparsifier stayed connected and sparser than including everything.
        assert is_connected(ingrass.sparsifier)
        blind_density = offtree_density(initial.union_with_edges(stream))
        assert offtree_density(ingrass.sparsifier) <= blind_density + 1e-9
        # Quality: much better than never updating the sparsifier at all.
        kappa_never = relative_condition_number(final_graph, initial)
        kappa_updated = ingrass.condition_number()
        assert kappa_updated <= kappa_never * 1.2
        # Report is consistent.
        report = ingrass.report()
        assert report.sparsifier_edges == ingrass.sparsifier.num_edges

    def test_history_records_accumulate(self, medium_grid):
        ingrass = InGrassSparsifier(InGrassConfig(seed=0))
        ingrass.setup(medium_grid, initial_offtree_density=0.1)
        edges = random_pair_edges(medium_grid, 12, seed=2)
        ingrass.update(edges)
        record = ingrass.history[0]
        assert record.iteration == 1
        assert record.streamed_edges == 12
        assert record.added_edges + record.merged_edges + record.redistributed_edges + record.dropped_edges == 12
        assert ingrass.total_update_seconds >= record.update_seconds * 0.5

    def test_explicit_filtering_level(self, medium_grid):
        config = InGrassConfig(filtering_level=0, seed=0)
        ingrass = InGrassSparsifier(config)
        ingrass.setup(medium_grid, initial_offtree_density=0.1, target_condition_number=10.0)
        result = ingrass.update(random_pair_edges(medium_grid, 10, seed=3))
        assert result.filtering_level == 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            InGrassConfig(max_fill_fraction=0.0)
        with pytest.raises(ValueError):
            InGrassConfig(filtering_level=-1)
        with pytest.raises(ValueError):
            InGrassConfig(distortion_threshold=-0.5)
        with pytest.raises(ValueError):
            InGrassConfig(filtering_size_divisor=0.0)


class TestPaperFigure3Walkthrough:
    """The qualitative behaviour sketched in Figure 3 of the paper: of three
    new edges, one is merged into an existing inter-cluster edge, one is
    discarded inside a cluster, and one genuinely new connection is added."""

    def test_three_edge_filtering_story(self):
        graph = paper_figure2_graph()
        sparsifier = graph.copy()
        hierarchy = lrd_decompose(sparsifier, LRDConfig(resistance_method="exact", seed=0))
        # Pick the coarsest level that still separates the two 7-node halves.
        level = None
        for index in range(hierarchy.num_levels - 1, -1, -1):
            labels = hierarchy.level(index).labels
            if labels[0] != labels[9]:
                level = index
                break
        assert level is not None
        similarity_filter = SimilarityFilter(sparsifier, hierarchy, level)
        embedding = ResistanceEmbedding(hierarchy)
        labels = hierarchy.level(level).labels

        # Edge 1: same cluster pair as the existing weak bridge (3, 9).
        bridge_pair = tuple(sorted((int(labels[3]), int(labels[9]))))
        merge_candidate = None
        for p in range(graph.num_nodes):
            for q in range(graph.num_nodes):
                if p < q and not sparsifier.has_edge(p, q):
                    if tuple(sorted((int(labels[p]), int(labels[q])))) == bridge_pair and labels[p] != labels[q]:
                        merge_candidate = (p, q)
                        break
            if merge_candidate:
                break
        # Edge 2: inside one cluster.
        cluster_nodes = np.flatnonzero(labels == labels[0])
        intra_candidate = None
        for p in cluster_nodes:
            for q in cluster_nodes:
                if p < q and not sparsifier.has_edge(int(p), int(q)):
                    intra_candidate = (int(p), int(q))
                    break
            if intra_candidate:
                break
        candidates = []
        if merge_candidate:
            candidates.append((merge_candidate[0], merge_candidate[1], 1.0))
        if intra_candidate:
            candidates.append((intra_candidate[0], intra_candidate[1], 1.0))
        assert candidates, "paper walkthrough graph should offer candidates"
        estimates = sort_by_distortion(estimate_distortions(embedding, candidates))
        decisions, summary = similarity_filter.apply(estimates)
        actions = {d.edge[:2]: d.action for d in decisions}
        if merge_candidate:
            assert actions[merge_candidate] is FilterAction.MERGED_INTO_EXISTING
        if intra_candidate:
            assert actions[intra_candidate] is FilterAction.REDISTRIBUTED_INTRA_CLUSTER
