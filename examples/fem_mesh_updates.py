"""Finite-element mesh refinement scenario.

Adaptive mesh refinement adds new elements — and therefore new graph edges —
to a finite-element stiffness graph between solver calls.  This example keeps
a spectral sparsifier of a 2-D FE mesh up to date through several refinement
rounds with inGRASS and shows what each refinement did to the sparsifier
(edges admitted vs merged vs redistributed), plus the final spectral quality.

Run with::

    python examples/fem_mesh_updates.py [--nodes 1500]
"""

from __future__ import annotations

import argparse

from repro.api import (
    GrassConfig,
    GrassSparsifier,
    InGrassConfig,
    InGrassSparsifier,
    fe_mesh_2d,
    mixed_edges,
    offtree_density,
    relative_condition_number,
    split_into_batches,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=1500, help="approximate mesh size")
    parser.add_argument("--refinements", type=int, default=5, help="number of refinement rounds")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    mesh = fe_mesh_2d(args.nodes, seed=args.seed)
    print(f"FE mesh: {mesh.num_nodes} nodes, {mesh.num_edges} edges")

    grass = GrassSparsifier(GrassConfig(target_offtree_density=0.10, tree_method="shortest_path",
                                        seed=args.seed))
    sparsifier = grass.sparsify(mesh, evaluate_condition=False).sparsifier
    kappa0 = relative_condition_number(mesh, sparsifier, dense_limit=600)
    print(f"initial sparsifier: off-tree density {offtree_density(sparsifier):.1%}, kappa = {kappa0:.1f}")

    ingrass = InGrassSparsifier(InGrassConfig())
    ingrass.setup(mesh, sparsifier, target_condition_number=kappa0)
    print(f"setup: {ingrass.setup_result.num_levels} LRD levels in {ingrass.setup_seconds*1e3:.1f} ms\n")

    # Refinement edges are overwhelmingly local (new elements subdivide
    # existing ones), with the occasional longer-range constraint edge.
    refinement_edges = mixed_edges(mesh, int(0.2 * mesh.num_nodes),
                                   long_range_fraction=0.1, hops=2, seed=args.seed + 1)
    rounds = split_into_batches(refinement_edges, args.refinements)

    print(f"{'round':>5} {'new edges':>10} {'added':>7} {'merged':>7} {'redist.':>8} "
          f"{'density':>9} {'ms':>8}")
    for index, batch in enumerate(rounds, start=1):
        result = ingrass.update(batch)
        record = ingrass.history[-1]
        print(f"{index:>5} {len(batch):>10} {record.added_edges:>7} {record.merged_edges:>7} "
              f"{record.redistributed_edges:>8} {record.offtree_density:>8.1%} "
              f"{record.update_seconds*1e3:>8.2f}")

    final_kappa = ingrass.condition_number(dense_limit=600)
    degraded = relative_condition_number(ingrass.graph, sparsifier, dense_limit=600)
    print(f"\nkappa after refinements: {final_kappa:.1f} "
          f"(target {kappa0:.1f}; never updating would give {degraded:.1f})")
    print(f"final off-tree density: {offtree_density(ingrass.sparsifier):.1%} "
          f"(including every refinement edge would give "
          f"{offtree_density(sparsifier.union_with_edges(refinement_edges)):.1%})")


if __name__ == "__main__":
    main()
