"""Serve effective-resistance queries concurrently with a live update stream.

The scenario behind :class:`repro.api.SparsifierService`: one writer thread
streams churn batches (insertions + deletions) through the incremental
sparsifier while several reader threads keep answering resistance queries and
PCG solves.  Readers never block the writer — each reader grabs the immutable
:class:`~repro.api.SparsifierSnapshot` of the current version epoch (an O(1)
handout) and runs every query lock-free against that frozen view, so answers
are consistent *within* an epoch even while the writer races ahead.

Run with::

    python examples/concurrent_queries.py

(or, equivalently, ``python -m repro serve-demo`` for the CLI version).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.api import (
    DynamicScenarioConfig,
    InGrassConfig,
    SparsifierService,
    build_churn_scenario,
    grid_circuit_2d,
)

NUM_READERS = 4
SIDE = 16          # 256-node demo grid
NUM_BATCHES = 12


def main() -> None:
    # 1. A churn scenario: the graph gains and loses edges batch by batch.
    graph = grid_circuit_2d(SIDE, seed=0)
    scenario = build_churn_scenario(
        graph, DynamicScenarioConfig(num_iterations=NUM_BATCHES, seed=0))

    # 2. The service wraps the driver: writes serialise, reads never lock.
    service = SparsifierService(InGrassConfig(seed=0))
    service.setup(scenario.graph, scenario.initial_sparsifier,
                  target_condition_number=scenario.initial_condition_number)
    print(f"serving {graph.num_nodes}-node grid, "
          f"{len(scenario.batches)} churn batches, {NUM_READERS} readers")

    stop = threading.Event()
    totals = []

    # 3. Readers: query whatever epoch is current when they arrive.
    def reader(reader_id: int) -> None:
        rng = np.random.default_rng(100 + reader_id)
        queries, epochs = 0, set()
        while not stop.is_set():
            snap = service.snapshot()          # O(1): cached per epoch
            u, v = rng.choice(snap.num_nodes, size=2, replace=False)
            r = snap.effective_resistance(int(u), int(v))
            assert r > 0.0                     # sane on every epoch
            epochs.add(snap.version)
            queries += 1
        totals.append((reader_id, queries, len(epochs)))

    threads = [threading.Thread(target=reader, args=(i,), daemon=True)
               for i in range(NUM_READERS)]
    for thread in threads:
        thread.start()

    # 4. The writer streams churn; snapshots of past epochs stay valid.
    first_epoch = service.snapshot()
    reference = first_epoch.effective_resistance(0, graph.num_nodes - 1)
    for batch in scenario.batches:
        service.apply(batch)
        time.sleep(0.01)                       # let readers interleave
    stop.set()
    for thread in threads:
        thread.join()

    # 5. The old snapshot still answers with its own epoch's value.
    replay = first_epoch.effective_resistance(0, graph.num_nodes - 1)
    assert replay == reference, "epoch snapshot must be immutable"
    print(f"epoch {first_epoch.version} answer unchanged after "
          f"{len(scenario.batches)} batches: R_eff = {reference:.4f}")

    for reader_id, queries, epochs in sorted(totals):
        print(f"reader {reader_id}: {queries} queries across {epochs} epochs")
    final = service.snapshot()
    print(f"final epoch {final.version}: |E_H| = {final.num_sparsifier_edges}, "
          f"kappa = {final.condition_number():.1f}")


if __name__ == "__main__":
    main()
