"""Downstream application: sparsifier-preconditioned conjugate gradient.

Spectral sparsifiers exist to accelerate linear solves: a sparsifier with a
small relative condition number is an excellent preconditioner for the
original graph Laplacian.  This example solves ``L_G x = b`` with plain CG,
with Jacobi-preconditioned CG, and with PCG preconditioned by (a) the initial
sparsifier and (b) the inGRASS-maintained sparsifier after a stream of edge
insertions — demonstrating that keeping the sparsifier up to date preserves
the iteration count that a stale sparsifier loses.

Run with::

    python examples/preconditioner_quality.py
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    GrassConfig,
    GrassSparsifier,
    InGrassConfig,
    InGrassSparsifier,
    PCGSolver,
    conjugate_gradient,
    grid_circuit_2d,
    jacobi_preconditioner,
    mixed_edges,
    relative_condition_number,
)


def iteration_count(graph, preconditioner_graph, b):
    solver = PCGSolver(graph, preconditioner_graph, tol=1e-8)
    report = solver.solve(b)
    return report.iterations, report.converged


def main() -> None:
    rng = np.random.default_rng(0)
    graph = grid_circuit_2d(30, seed=0)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    grass = GrassSparsifier(GrassConfig(target_offtree_density=0.15, tree_method="shortest_path", seed=0))
    sparsifier0 = grass.sparsify(graph, evaluate_condition=False).sparsifier
    kappa0 = relative_condition_number(graph, sparsifier0)
    print(f"initial sparsifier: kappa = {kappa0:.1f}")

    # Stream new edges into the graph (the system being simulated changed).
    new_edges = mixed_edges(graph, int(0.25 * graph.num_nodes), long_range_fraction=0.3, seed=1)
    updated_graph = graph.union_with_edges(new_edges)

    # Maintain the sparsifier with inGRASS.
    ingrass = InGrassSparsifier(InGrassConfig())
    ingrass.setup(graph, sparsifier0, target_condition_number=kappa0)
    ingrass.update(new_edges)
    maintained = ingrass.sparsifier

    b = rng.standard_normal(graph.num_nodes)
    b -= b.mean()

    laplacian = updated_graph.laplacian_matrix()
    plain = conjugate_gradient(lambda x: laplacian @ x, b, tol=1e-8)
    jacobi = conjugate_gradient(lambda x: laplacian @ x, b,
                                preconditioner=jacobi_preconditioner(laplacian), tol=1e-8)
    stale_iters, stale_ok = iteration_count(updated_graph, sparsifier0, b)
    fresh_iters, fresh_ok = iteration_count(updated_graph, maintained, b)

    print(f"\nCG iterations to solve L_G x = b on the UPDATED graph (tol 1e-8):")
    print(f"  plain CG                         : {plain.iterations}")
    print(f"  Jacobi-preconditioned CG         : {jacobi.iterations}")
    print(f"  PCG with stale sparsifier H(0)   : {stale_iters} (converged={stale_ok})")
    print(f"  PCG with inGRASS-maintained H    : {fresh_iters} (converged={fresh_ok})")

    stale_kappa = relative_condition_number(updated_graph, sparsifier0)
    fresh_kappa = relative_condition_number(updated_graph, maintained)
    print(f"\nkappa(updated G, stale H)      = {stale_kappa:.1f}")
    print(f"kappa(updated G, maintained H) = {fresh_kappa:.1f}")
    print("\nKeeping the sparsifier current with inGRASS preserves the preconditioner")
    print("quality without ever re-running the from-scratch sparsifier.")


if __name__ == "__main__":
    main()
