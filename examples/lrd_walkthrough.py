"""Walkthrough of the multilevel LRD decomposition (the paper's Figure 2).

The paper illustrates the resistance embedding on a 14-node sparsifier: each
LRD level contracts low-resistance clusters, the cluster indices across levels
form each node's embedding vector, and the effective resistance between two
nodes is bounded by the diameter of the first cluster they share.  This script
reproduces that story on the same kind of graph and prints the embedding
vectors, the per-level cluster structure, and the bound-vs-exact comparison
for a few node pairs.

Run with::

    python examples/lrd_walkthrough.py
"""

from __future__ import annotations

from repro.core import LRDConfig, ResistanceEmbedding, lrd_decompose
from repro.graphs import paper_figure2_graph
from repro.spectral import ExactResistanceCalculator


def main() -> None:
    sparsifier = paper_figure2_graph()
    print(f"example sparsifier: {sparsifier.num_nodes} nodes, {sparsifier.num_edges} edges "
          "(two 7-node clusters joined by a weak bridge)\n")

    hierarchy = lrd_decompose(sparsifier, LRDConfig(resistance_method="exact", seed=0))
    embedding = ResistanceEmbedding(hierarchy)

    print("per-level cluster structure:")
    for row in hierarchy.summary():
        print(f"  level {row['level']}: {row['num_clusters']:2d} clusters, "
              f"largest has {row['max_cluster_size']:2d} nodes, "
              f"diameter threshold {row['diameter_threshold']:.3f}, "
              f"max cluster diameter {row['max_cluster_diameter']:.3f}")

    print("\nnode embedding vectors (cluster index per level):")
    for node in range(sparsifier.num_nodes):
        vector = ", ".join(str(int(v)) for v in embedding.vector(node))
        print(f"  node {node:2d}: [{vector}]")

    print("\nresistance estimates from the embedding vs exact values:")
    calculator = ExactResistanceCalculator(sparsifier)
    pairs = [(0, 1), (0, 6), (0, 13), (3, 9), (5, 9)]
    print(f"  {'pair':>10} {'first common level':>20} {'bound':>8} {'exact':>8}")
    for p, q in pairs:
        level = hierarchy.first_common_level(p, q)
        bound = embedding.estimate_resistance(p, q)
        exact = calculator.resistance(p, q)
        print(f"  ({p:2d}, {q:2d})   {str(level):>20} {bound:>8.3f} {exact:>8.3f}")
    print("\nNodes in the same tight cluster share an index early (small bound);")
    print("nodes on opposite sides of the bridge only meet at the coarsest level (large bound),")
    print("exactly the behaviour sketched in Figure 2 of the paper.")


if __name__ == "__main__":
    main()
