"""Quickstart: maintain a spectral sparsifier under edge insertions with inGRASS.

The script builds a synthetic power-grid style graph, sparsifies it once with
the GRASS-style baseline, runs the one-time inGRASS setup, then streams three
batches of new edges through the O(log N)-per-edge update phase and reports
how the sparsifier's density and condition number evolve.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import (
    GrassConfig,
    GrassSparsifier,
    InGrassConfig,
    InGrassSparsifier,
    grid_circuit_2d,
    mixed_edges,
    offtree_density,
    relative_condition_number,
    split_into_batches,
)


def main() -> None:
    # 1. The original graph G(0): a 30x30 resistor grid (900 nodes).
    graph = grid_circuit_2d(30, seed=0)
    print(f"original graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # 2. An initial sparsifier H(0) at ~10 % off-tree density (GRASS-style).
    grass = GrassSparsifier(GrassConfig(target_offtree_density=0.10, tree_method="shortest_path", seed=0))
    sparsifier = grass.sparsify(graph, evaluate_condition=False).sparsifier
    kappa0 = relative_condition_number(graph, sparsifier)
    print(f"initial sparsifier: {sparsifier.num_edges} edges "
          f"(off-tree density {offtree_density(sparsifier):.1%}), kappa = {kappa0:.1f}")

    # 3. One-time inGRASS setup: resistance embedding + LRD decomposition.
    ingrass = InGrassSparsifier(InGrassConfig())
    ingrass.setup(graph, sparsifier, target_condition_number=kappa0)
    print(f"setup: {ingrass.setup_result.num_levels} LRD levels in {ingrass.setup_seconds*1e3:.1f} ms")

    # 4. Stream new edges (e.g. new metal straps added to the power grid).
    stream = mixed_edges(graph, int(0.2 * graph.num_nodes), long_range_fraction=0.2, seed=1)
    batches = split_into_batches(stream, 3)
    for index, batch in enumerate(batches, start=1):
        result = ingrass.update(batch)
        print(f"iteration {index}: streamed {len(batch):3d} edges -> "
              f"added {result.summary.added}, merged {result.summary.merged}, "
              f"redistributed {result.summary.redistributed} "
              f"({result.update_seconds*1e3:.2f} ms)")

    # 5. Final quality report.
    kappa = ingrass.condition_number()
    print(f"final sparsifier: {ingrass.sparsifier.num_edges} edges "
          f"(off-tree density {offtree_density(ingrass.sparsifier):.1%}), kappa = {kappa:.1f}")
    print(f"total update time: {ingrass.total_update_seconds*1e3:.1f} ms "
          f"(vs one-time setup {ingrass.setup_seconds*1e3:.1f} ms)")


if __name__ == "__main__":
    main()
