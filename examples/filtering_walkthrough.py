"""Walkthrough of the similarity-filtering decisions (the paper's Figure 3).

Figure 3 of the paper follows three newly introduced edges through the update
phase: one is merged into an existing edge between the same pair of clusters,
one falls inside a single cluster and is discarded with its weight spread over
the cluster's edges, and one creates a genuinely new cluster connection and is
admitted.  This script replays the same three decision kinds on the 14-node
example graph and prints what happened to every edge and to the sparsifier's
weights.

Run with::

    python examples/filtering_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    LRDConfig,
    ResistanceEmbedding,
    SimilarityFilter,
    estimate_distortions,
    lrd_decompose,
    sort_by_distortion,
)
from repro.graphs import paper_figure2_graph


def main() -> None:
    sparsifier = paper_figure2_graph()
    hierarchy = lrd_decompose(sparsifier, LRDConfig(resistance_method="exact", seed=0))
    embedding = ResistanceEmbedding(hierarchy)

    # Use the coarsest level that still separates the two halves of the graph,
    # mirroring the filtering level L = (b) chosen in the paper's example.
    level = 0
    for index in range(hierarchy.num_levels - 1, -1, -1):
        if hierarchy.level(index).labels[0] != hierarchy.level(index).labels[9]:
            level = index
            break
    labels = hierarchy.level(level).labels
    print(f"filtering level: {level} "
          f"({hierarchy.level(level).num_clusters} clusters, "
          f"largest {hierarchy.level(level).max_cluster_size()} nodes)")
    print("cluster of every node:", labels.tolist(), "\n")

    # Three streamed edges chosen to trigger the three decision kinds.
    def first_missing_pair(nodes_a, nodes_b):
        for p in nodes_a:
            for q in nodes_b:
                if p != q and not sparsifier.has_edge(int(p), int(q)):
                    return int(p), int(q)
        raise RuntimeError("no candidate pair found")

    cluster_of_0 = np.flatnonzero(labels == labels[0])
    cluster_of_9 = np.flatnonzero(labels == labels[9])
    intra = first_missing_pair(cluster_of_0, cluster_of_0)          # same cluster -> redistribute
    merged = first_missing_pair(cluster_of_0, cluster_of_9)          # same cluster pair as bridge -> merge
    new_edges = [
        (merged[0], merged[1], 1.0),
        (intra[0], intra[1], 1.0),
    ]
    print("streamed edges:", new_edges, "\n")

    bridge_weight_before = sparsifier.weight(3, 9)
    similarity_filter = SimilarityFilter(sparsifier, hierarchy, level)
    estimates = sort_by_distortion(estimate_distortions(embedding, new_edges))
    decisions, summary = similarity_filter.apply(estimates)

    for decision in decisions:
        p, q, w = decision.edge
        line = f"edge ({p:2d}, {q:2d}, w={w}) -> {decision.action.value}"
        if decision.target_edge is not None:
            line += f" (weight folded into sparsifier edge {decision.target_edge})"
        print(line)
    print(f"\nsummary: added={summary.added}, merged={summary.merged}, "
          f"redistributed={summary.redistributed}")
    print(f"bridge edge (3, 9) weight: {bridge_weight_before:.2f} -> {sparsifier.weight(3, 9):.2f}")
    print("\nThese are the three outcomes illustrated in Figure 3 of the paper: redundant")
    print("edges are folded into the sparsifier's existing structure, and only edges that")
    print("connect previously unconnected clusters are admitted.")


if __name__ == "__main__":
    main()
