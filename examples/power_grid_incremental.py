"""Power-grid ECO scenario: compare inGRASS against re-running GRASS from scratch.

This example mirrors the protocol of the paper's Table II on a multi-layer
power-delivery-network analogue (the ``G3_circuit`` substitute): an initial
10 %-density sparsifier is maintained through ten batches of engineering
change orders (new straps/vias added to the grid), and the script reports the
density, condition number and runtime of

* **inGRASS** — one-time setup, then O(log N)-per-edge updates;
* **GRASS**   — a full from-scratch re-sparsification at every iteration;
* **Random**  — adding streamed edges in random order until the target
  condition number is reached.

Run with::

    python examples/power_grid_incremental.py [--nodes-side 16]
"""

from __future__ import annotations

import argparse

from repro.bench.harness import (
    HarnessConfig,
    _run_grass_incremental,
    _run_ingrass_incremental,
    _run_random_incremental,
)
from repro.graphs import grid_circuit_3d
from repro.streams import ScenarioConfig, build_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes-side", type=int, default=16, help="side length of each metal layer")
    parser.add_argument("--layers", type=int, default=4, help="number of metal layers")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    graph = grid_circuit_3d(args.nodes_side, args.nodes_side, args.layers, seed=args.seed)
    print(f"power grid: {graph.num_nodes} nodes, {graph.num_edges} edges "
          f"({args.layers} metal layers)")

    harness = HarnessConfig(scale="small", seed=args.seed, condition_dense_limit=500)
    scenario = build_scenario(
        graph,
        ScenarioConfig(initial_offtree_density=0.10, final_offtree_density=0.34, num_iterations=10,
                       condition_dense_limit=500, seed=args.seed),
    )
    print(f"initial sparsifier density {scenario.initial_offtree_density():.1%}, "
          f"kappa(G0, H0) = {scenario.initial_condition_number:.1f}")
    print(f"streamed ECO edges: {len(scenario.all_new_edges)} in {len(scenario.batches)} batches")
    print(f"kappa if the sparsifier is never updated: {scenario.degraded_condition_number():.1f}\n")

    ingrass, setup_seconds = _run_ingrass_incremental(scenario, harness)
    grass = _run_grass_incremental(scenario, harness)
    random_outcome = _run_random_incremental(scenario, harness)

    header = f"{'method':<10} {'off-tree density':>18} {'kappa':>10} {'time (s)':>12}"
    print(header)
    print("-" * len(header))
    print(f"{'GRASS':<10} {grass.offtree_density:>17.1%} {grass.condition_number:>10.1f} {grass.seconds:>12.3f}")
    print(f"{'inGRASS':<10} {ingrass.offtree_density:>17.1%} {ingrass.condition_number:>10.1f} {ingrass.seconds:>12.4f}")
    print(f"{'Random':<10} {random_outcome.offtree_density:>17.1%} {random_outcome.condition_number:>10.1f} "
          f"{random_outcome.seconds:>12.3f}")
    print(f"\ninGRASS setup (one time): {setup_seconds:.3f} s")
    print(f"speedup over GRASS-from-scratch: {grass.seconds / max(ingrass.seconds, 1e-9):.0f}x "
          f"({grass.seconds / max(ingrass.seconds + setup_seconds, 1e-9):.0f}x including setup)")


if __name__ == "__main__":
    main()
