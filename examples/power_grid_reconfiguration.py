"""Power-grid reconfiguration: fully dynamic sparsification under churn.

This example goes beyond the paper's insertion-only protocol.  A power grid
under reconfiguration both *adds* straps and *opens* switches — edges appear
and disappear.  The script streams ten mixed insert/delete batches (35 %
deletions by default) through the fully dynamic :class:`InGrassSparsifier`:

* every deletion leaves the tracked graph and, when the sparsifier carried
  the edge, triggers the repair path (connectivity restoration + local
  re-admission of the best surviving replacement edges);
* the κ guard re-measures κ(G(k), H(k)) after each batch and surgically adds
  the edges the dominant generalized eigenvector identifies as the current
  bottleneck whenever quality degrades past 1.8x the target.

The per-iteration table shows the sparsifier holding the quality bound while
staying sparse — compare the "never updated" κ column to see what churn does
to a static sparsifier.

Run with::

    python examples/power_grid_reconfiguration.py [--nodes-side 14]
                                                  [--deletion-fraction 0.35]
"""

from __future__ import annotations

import argparse

from repro.api import (
    DynamicScenarioConfig,
    InGrassConfig,
    InGrassSparsifier,
    LRDConfig,
    build_dynamic_scenario,
    grid_circuit_3d,
    is_connected,
    offtree_density,
)

DENSE_LIMIT = 500


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes-side", type=int, default=14, help="side length of each metal layer")
    parser.add_argument("--layers", type=int, default=3, help="number of metal layers")
    parser.add_argument("--deletion-fraction", type=float, default=0.35,
                        help="fraction of streamed events that open switches (delete edges)")
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    graph = grid_circuit_3d(args.nodes_side, args.nodes_side, args.layers, seed=args.seed)
    print(f"power grid: {graph.num_nodes} nodes, {graph.num_edges} edges "
          f"({args.layers} metal layers)")

    scenario = build_dynamic_scenario(
        graph,
        DynamicScenarioConfig(
            initial_offtree_density=0.10,
            final_offtree_density=0.34,
            num_iterations=args.iterations,
            deletion_fraction=args.deletion_fraction,
            condition_dense_limit=DENSE_LIMIT,
            seed=args.seed,
        ),
    )
    target = scenario.initial_condition_number
    print(f"stream: {len(scenario.all_insertions)} insertions, "
          f"{len(scenario.all_deletions)} deletions over {args.iterations} batches "
          f"({scenario.deletion_fraction:.0%} churn)")
    print(f"target condition number: {target:.1f} (guard bound: {1.8 * target:.1f})\n")

    ingrass = InGrassSparsifier(
        InGrassConfig(
            lrd=LRDConfig(seed=args.seed),
            kappa_guard_factor=1.8,
            kappa_guard_dense_limit=DENSE_LIMIT,
            seed=args.seed,
        )
    )
    ingrass.setup(scenario.graph, scenario.initial_sparsifier, target_condition_number=target)

    header = (f"{'iter':>4}  {'+ins':>4}  {'-del':>4}  {'H-rm':>4}  {'repair':>6}  "
              f"{'guard':>5}  {'kappa':>7}  {'density':>7}  {'conn':>4}")
    print(header)
    print("-" * len(header))
    for index, batch in enumerate(scenario.batches, start=1):
        result = ingrass.update(batch)
        removal = result.removal
        removed = len(removal.removed_from_sparsifier) if removal else 0
        repairs = removal.num_repairs if removal else 0
        guard_adds = len(result.kappa_guard.added_edges) if result.kappa_guard else 0
        kappa = ingrass.condition_number(dense_limit=DENSE_LIMIT)
        print(f"{index:>4}  {len(batch.insertions):>4}  {len(batch.deletions):>4}  "
              f"{removed:>4}  {repairs:>6}  {guard_adds:>5}  {kappa:>7.1f}  "
              f"{offtree_density(ingrass.sparsifier):>6.1%}  "
              f"{'yes' if is_connected(ingrass.sparsifier) else 'NO':>4}")

    never_updated = scenario.degraded_condition_number()
    print(f"\nfinal kappa (maintained): "
          f"{ingrass.condition_number(dense_limit=DENSE_LIMIT):.1f}  "
          f"vs never-updated H(0): {never_updated:.1f}")
    print(f"total update time: {ingrass.total_update_seconds:.3f}s "
          f"(setup: {ingrass.setup_seconds:.3f}s)")


if __name__ == "__main__":
    main()
