"""Edge-update streams (insertions and deletions) and experiment scenarios."""

from repro.streams.edge_stream import (
    DeletionEvent,
    InsertionEvent,
    MixedBatch,
    WeightChangeEvent,
    locality_biased_edges,
    mixed_edges,
    random_pair_edges,
    removable_edges,
    split_into_batches,
    weight_change_edges,
)
from repro.streams.scenarios import (
    DynamicScenario,
    DynamicScenarioConfig,
    IncrementalScenario,
    ScenarioConfig,
    build_churn_scenario,
    build_deletion_scenario,
    build_dynamic_scenario,
    build_scenario,
)

__all__ = [
    "random_pair_edges",
    "locality_biased_edges",
    "mixed_edges",
    "removable_edges",
    "split_into_batches",
    "InsertionEvent",
    "DeletionEvent",
    "WeightChangeEvent",
    "MixedBatch",
    "weight_change_edges",
    "IncrementalScenario",
    "ScenarioConfig",
    "build_scenario",
    "DynamicScenario",
    "DynamicScenarioConfig",
    "build_dynamic_scenario",
    "build_churn_scenario",
    "build_deletion_scenario",
]
