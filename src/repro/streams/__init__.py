"""Edge-update streams (insertions and deletions) and experiment scenarios."""

from repro.streams.edge_stream import (
    DeletionEvent,
    InsertionEvent,
    MixedBatch,
    locality_biased_edges,
    mixed_edges,
    random_pair_edges,
    removable_edges,
    split_into_batches,
)
from repro.streams.scenarios import (
    DynamicScenario,
    DynamicScenarioConfig,
    IncrementalScenario,
    ScenarioConfig,
    build_churn_scenario,
    build_deletion_scenario,
    build_dynamic_scenario,
    build_scenario,
)

__all__ = [
    "random_pair_edges",
    "locality_biased_edges",
    "mixed_edges",
    "removable_edges",
    "split_into_batches",
    "InsertionEvent",
    "DeletionEvent",
    "MixedBatch",
    "IncrementalScenario",
    "ScenarioConfig",
    "build_scenario",
    "DynamicScenario",
    "DynamicScenarioConfig",
    "build_dynamic_scenario",
    "build_churn_scenario",
    "build_deletion_scenario",
]
