"""Edge-insertion streams and incremental experiment scenarios."""

from repro.streams.edge_stream import (
    locality_biased_edges,
    mixed_edges,
    random_pair_edges,
    split_into_batches,
)
from repro.streams.scenarios import IncrementalScenario, ScenarioConfig, build_scenario

__all__ = [
    "random_pair_edges",
    "locality_biased_edges",
    "mixed_edges",
    "split_into_batches",
    "IncrementalScenario",
    "ScenarioConfig",
    "build_scenario",
]
