"""Generation of edge-update streams for incremental sparsification experiments.

The paper's evaluation streams batches of edges that are *added to the
original graph* (e.g. new metal straps added to a power grid) and asks the
sparsifier to keep up.  Real streams are not available offline, so these
generators synthesise them with two locality profiles:

* :func:`random_pair_edges` — uniformly random node pairs (long-range,
  spectrally disruptive: the worst case for a sparsifier);
* :func:`locality_biased_edges` — endpoints a few hops apart (the realistic
  "new wire between nearby nets" case, mostly redundant spectrally);
* :func:`mixed_edges` — a configurable blend of the two, which is what the
  benchmark scenarios use.

All insertion generators avoid duplicating existing graph edges and draw
weights log-uniformly from the graph's own weight range so the new edges look
like the old ones.

Beyond the paper's insertion-only protocol, this module also models *fully
dynamic* streams — real workloads (power-grid reconfiguration, FEM remeshing)
delete edges as often as they add them:

* :class:`InsertionEvent` / :class:`DeletionEvent` — the two event kinds;
* :class:`MixedBatch` — one batch of interleaved insertions and deletions
  (deletions apply before insertions, see the class docstring);
* :func:`removable_edges` — samples existing edges whose sequential removal
  provably keeps the graph connected (bridges are never chosen).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.graphs.components import non_bridge_edges
from repro.graphs.graph import Graph, canonical_edge
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive_int, check_probability

Edge = Tuple[int, int]
WeightedEdge = Tuple[int, int, float]


@dataclass(frozen=True)
class InsertionEvent:
    """One streamed edge insertion: a new ``(u, v)`` wire of given weight."""

    u: int
    v: int
    weight: float

    @property
    def edge(self) -> WeightedEdge:
        """The event as a ``(u, v, weight)`` triple (canonical orientation)."""
        key = canonical_edge(self.u, self.v)
        return (key[0], key[1], self.weight)


@dataclass(frozen=True)
class DeletionEvent:
    """One streamed edge deletion: the ``(u, v)`` wire is physically removed."""

    u: int
    v: int

    @property
    def edge(self) -> Edge:
        """The deleted edge as a canonical ``(u, v)`` pair."""
        return canonical_edge(self.u, self.v)


@dataclass(frozen=True)
class WeightChangeEvent:
    """One streamed edge re-weighting: edge ``(u, v)`` gains ``delta`` conductance.

    Models a physical reinforcement of an existing wire (a thicker strap, a
    parallel conductor on the same route).  Streaming it as its own event —
    instead of the delete-then-insert round trip — lets the driver call
    :meth:`repro.graphs.graph.Graph.increase_weights` directly: no sparsifier
    repair, no hierarchy invalidation, because added conductance can only
    *lower* effective resistances, so every cached resistance upper bound
    stays valid untouched.

    ``delta`` must be positive; weight reductions are deletions followed by a
    lighter insertion (they can raise resistances and therefore need the full
    repair machinery).
    """

    u: int
    v: int
    delta: float

    @property
    def edge(self) -> WeightedEdge:
        """The event as a canonical ``(u, v, delta)`` triple."""
        key = canonical_edge(self.u, self.v)
        return (key[0], key[1], self.delta)


StreamEvent = Union[InsertionEvent, DeletionEvent, WeightChangeEvent]


@dataclass
class MixedBatch:
    """One batch of a fully dynamic update stream.

    Semantics: within a batch, **deletions apply first, then weight changes,
    then insertions** — the scenario builders guarantee the graph stays
    connected under that order and the
    :class:`~repro.core.incremental.InGrassSparsifier` driver applies batches
    the same way.

    Attributes
    ----------
    insertions:
        Newly added ``(u, v, weight)`` edges.
    deletions:
        Removed ``(u, v)`` pairs (canonical orientation).
    weight_changes:
        ``(u, v, delta)`` conductance increases on surviving edges.
    """

    insertions: List[WeightedEdge] = field(default_factory=list)
    deletions: List[Edge] = field(default_factory=list)
    weight_changes: List[WeightedEdge] = field(default_factory=list)

    @property
    def num_events(self) -> int:
        """Total number of events in the batch (all three kinds)."""
        return len(self.insertions) + len(self.deletions) + len(self.weight_changes)

    @property
    def deletion_fraction(self) -> float:
        """Fraction of the batch's events that are deletions."""
        if self.num_events == 0:
            return 0.0
        return len(self.deletions) / self.num_events

    def events(self) -> Iterator[StreamEvent]:
        """Iterate the events in application order (deletions first)."""
        for u, v in self.deletions:
            yield DeletionEvent(u, v)
        for u, v, delta in self.weight_changes:
            yield WeightChangeEvent(u, v, delta)
        for u, v, w in self.insertions:
            yield InsertionEvent(u, v, w)

    def __len__(self) -> int:
        return self.num_events

    def __bool__(self) -> bool:
        return self.num_events > 0

    def split_by_shard(self, node_shard: "np.ndarray") -> Tuple[List["MixedBatch"], "MixedBatch"]:
        """Route the batch's events by shard (the sharded engine's view of it).

        ``node_shard`` maps every node to its shard id (a
        :class:`repro.core.sharding.ShardPlan` provides it).  Events whose
        endpoints share a shard land in that shard's batch; cross-shard
        events land in the returned *escrow* batch, preserving relative
        order within each kind.  Used by the shard benchmark and tests to
        inspect routing; the driver itself routes validated endpoint arrays
        with numpy masks.
        """
        node_shard = np.asarray(node_shard, dtype=np.int64)
        num_shards = int(node_shard.max()) + 1 if node_shard.size else 1
        shards = [MixedBatch() for _ in range(num_shards)]
        escrow = MixedBatch()

        def target(u: int, v: int) -> "MixedBatch":
            su = int(node_shard[u])
            return shards[su] if su == int(node_shard[v]) else escrow

        for u, v in self.deletions:
            target(u, v).deletions.append((u, v))
        for u, v, delta in self.weight_changes:
            target(u, v).weight_changes.append((u, v, delta))
        for u, v, w in self.insertions:
            target(u, v).insertions.append((u, v, w))
        return shards, escrow

    def routing_counts(self, node_shard: "np.ndarray") -> Tuple["np.ndarray", int]:
        """Count how this batch's events would route under ``node_shard``.

        Returns ``(per_shard_counts, escrow_count)`` over all three event
        kinds.  Useful for benches and tests that want to reason about
        escrow fractions without executing the batch.  Note that the live
        :class:`~repro.core.sharding.ReplanPolicy` observes only the phases
        the sharded engine routes per shard — deletions and insertions —
        while this helper also counts weight-change events (which the driver
        applies globally), so its totals can exceed the policy's.
        """
        node_shard = np.asarray(node_shard, dtype=np.int64)
        num_shards = int(node_shard.max()) + 1 if node_shard.size else 1
        counts = np.zeros(num_shards, dtype=np.int64)
        escrow = 0
        pairs = ([(u, v) for u, v in self.deletions]
                 + [(u, v) for u, v, _ in self.weight_changes]
                 + [(u, v) for u, v, _ in self.insertions])
        for u, v in pairs:
            su = int(node_shard[u])
            if su == int(node_shard[v]):
                counts[su] += 1
            else:
                escrow += 1
        return counts, escrow

    @classmethod
    def from_events(cls, events: Sequence[StreamEvent]) -> "MixedBatch":
        """Bundle a flat event list into a batch (order within kind preserved).

        Because a batch applies its deletions before its insertions,
        delete-then-insert of the same edge (a switch swap: remove the old
        strap, wire a replacement) is represented faithfully — but an
        *insertion followed by a deletion* of the same edge would be silently
        reordered, so such lists are rejected; split them across two batches
        instead.  The same applies to weight changes: re-weighting an edge
        deleted or inserted earlier in the list cannot survive the batch's
        fixed application order and is rejected.
        """
        batch = cls()
        inserted: Set[Edge] = set()
        deleted: Set[Edge] = set()
        reweighted: Set[Edge] = set()
        for event in events:
            if isinstance(event, DeletionEvent):
                if event.edge in inserted:
                    raise ValueError(
                        f"edge {event.edge} is inserted and then deleted within one event "
                        "list; a MixedBatch applies deletions before insertions and cannot "
                        "preserve that interleaving — split the events across two batches"
                    )
                if event.edge in reweighted:
                    raise ValueError(
                        f"edge {event.edge} is re-weighted and then deleted within one "
                        "event list; a MixedBatch applies deletions before weight changes "
                        "and cannot preserve that interleaving — split the events across "
                        "two batches"
                    )
                batch.deletions.append(event.edge)
                deleted.add(event.edge)
            elif isinstance(event, WeightChangeEvent):
                key = canonical_edge(event.u, event.v)
                if key in deleted or key in inserted:
                    raise ValueError(
                        f"edge {key} is deleted/inserted and then re-weighted within one "
                        "event list; a MixedBatch applies weight changes between deletions "
                        "and insertions — split the events across two batches"
                    )
                batch.weight_changes.append(event.edge)
                reweighted.add(key)
            elif isinstance(event, InsertionEvent):
                key = canonical_edge(event.u, event.v)
                batch.insertions.append(event.edge)
                inserted.add(key)
            else:
                raise TypeError(f"unknown stream event {event!r}")
        return batch


def _weight_sampler(graph: Graph, rng: np.random.Generator):
    """Return a callable drawing weights log-uniformly from the graph's range."""
    _, _, weights = graph.edge_arrays()
    if weights.size == 0:
        low, high = 1.0, 1.0
    else:
        low, high = float(weights.min()), float(weights.max())
    log_low, log_high = math.log(low), math.log(max(high, low * (1 + 1e-12)))

    def sample(count: int) -> np.ndarray:
        if count == 0:
            return np.zeros(0)
        return np.exp(rng.uniform(log_low, log_high, size=count))

    return sample


def random_pair_edges(graph: Graph, count: int, *, seed: SeedLike = None,
                      exclude: Optional[set] = None) -> List[WeightedEdge]:
    """Draw ``count`` new edges between uniformly random node pairs.

    Pairs already present in ``graph`` (or in ``exclude``) are rejected and
    re-drawn, so the result contains only genuinely new edges.
    """
    count = check_positive_int(count, "count") if count else 0
    if count == 0:
        return []
    rng = as_rng(seed)
    n = graph.num_nodes
    if n < 2:
        raise ValueError("graph needs at least two nodes to add edges")
    sample_weight = _weight_sampler(graph, rng)
    taken = set(exclude) if exclude else set()
    edges: List[WeightedEdge] = []
    weights = sample_weight(count)
    attempts = 0
    max_attempts = 100 * count + 1000
    while len(edges) < count and attempts < max_attempts:
        attempts += 1
        u, v = rng.integers(0, n, size=2)
        u, v = int(u), int(v)
        if u == v:
            continue
        key = canonical_edge(u, v)
        if key in taken or graph.has_edge(u, v):
            continue
        taken.add(key)
        edges.append((key[0], key[1], float(weights[len(edges)])))
    return edges


#: Count from which :func:`locality_biased_edges` switches to the vectorised
#: batched-walk sampler (below it, the per-edge walk keeps seeded streams of
#: the existing test corpus byte-identical).
_LOCALITY_VECTOR_THRESHOLD = 5000


def _locality_biased_edges_vectorized(graph: Graph, count: int, *, hops: int, rng,
                                      taken: Set[Edge]) -> List[WeightedEdge]:
    """Batched random-walk sampler for paper-scale (10⁵+) locality streams.

    Runs all walks of one round simultaneously on the CSR adjacency (one
    fancy-indexed gather per hop instead of one Python dict walk per edge)
    and detects saturation — when a round yields almost nothing new because
    the neighbourhoods are exhausted, the caller tops up with random pairs
    instead of burning millions of rejected walks.
    """
    adjacency = graph.adjacency_matrix()
    indptr, indices = adjacency.indptr, adjacency.indices
    n = graph.num_nodes
    sample_weight = _weight_sampler(graph, rng)
    edges: List[WeightedEdge] = []
    graph_edges = graph._edges  # membership probes only
    while len(edges) < count:
        want = count - len(edges)
        batch = max(2 * want, 1024)
        starts = rng.integers(0, n, size=batch)
        lengths = rng.integers(1, hops + 1, size=batch)
        nodes = starts.copy()
        for step in range(hops):
            active = np.flatnonzero(lengths > step)
            if active.size == 0:
                break
            current = nodes[active]
            degrees = indptr[current + 1] - indptr[current]
            movable = degrees > 0
            active = active[movable]
            if active.size == 0:
                break
            current = current[movable]
            draws = (rng.random(active.size) * degrees[movable]).astype(np.int64)
            nodes[active] = indices[indptr[current] + draws]
        lo = np.minimum(starts, nodes)
        hi = np.maximum(starts, nodes)
        distinct = lo != hi
        keys = lo * np.int64(n) + hi
        # In-batch dedup, first occurrence wins (keeps rounds unbiased).
        _, first_index = np.unique(keys, return_index=True)
        fresh = np.zeros(batch, dtype=bool)
        fresh[first_index] = True
        candidates = np.flatnonzero(distinct & fresh)
        accepted_before = len(edges)
        weights = sample_weight(candidates.size)
        for offset, index in enumerate(candidates.tolist()):
            key = (int(lo[index]), int(hi[index]))
            if key in taken or key in graph_edges:
                continue
            taken.add(key)
            edges.append((key[0], key[1], float(weights[offset])))
            if len(edges) >= count:
                break
        if len(edges) - accepted_before < max(1, batch // 100):
            # Saturated: nearly every nearby pair already exists.
            break
    return edges


def locality_biased_edges(graph: Graph, count: int, *, hops: int = 3, seed: SeedLike = None,
                          exclude: Optional[set] = None) -> List[WeightedEdge]:
    """Draw new edges whose endpoints lie within ``hops`` hops of each other.

    These model realistic incremental wiring: a new connection is usually
    added between electrically nearby nodes, which makes it spectrally
    redundant — exactly the kind of edge the similarity filter should absorb.

    Counts of ``_LOCALITY_VECTOR_THRESHOLD`` and above use a batched CSR
    random walk (all walks of a round advance in one numpy gather), which
    keeps 10⁵-edge stream generation in seconds where the per-edge walk
    would spend minutes rejection-sampling saturated neighbourhoods.
    """
    count = check_positive_int(count, "count") if count else 0
    if count == 0:
        return []
    if hops < 1:
        raise ValueError("hops must be >= 1")
    rng = as_rng(seed)
    n = graph.num_nodes
    taken = set(exclude) if exclude else set()
    edges: List[WeightedEdge] = []
    if count >= _LOCALITY_VECTOR_THRESHOLD:
        edges = _locality_biased_edges_vectorized(graph, count, hops=hops, rng=rng, taken=taken)
    else:
        sample_weight = _weight_sampler(graph, rng)
        weights = sample_weight(count)
        attempts = 0
        max_attempts = 200 * count + 1000
        while len(edges) < count and attempts < max_attempts:
            attempts += 1
            start = int(rng.integers(0, n))
            # Short random walk to find a nearby endpoint.
            node = start
            for _ in range(int(rng.integers(1, hops + 1))):
                neighbors = list(graph.neighbors(node).keys())
                if not neighbors:
                    break
                node = int(neighbors[int(rng.integers(0, len(neighbors)))])
            if node == start:
                continue
            key = canonical_edge(start, node)
            if key in taken or graph.has_edge(start, node):
                continue
            taken.add(key)
            edges.append((key[0], key[1], float(weights[len(edges)])))
    if len(edges) < count:
        # Top up with random pairs when the walk keeps landing on existing edges
        # (dense neighbourhoods); keeps the requested batch size exact.
        extra = random_pair_edges(graph, count - len(edges), seed=rng, exclude=taken)
        edges.extend(extra)
    return edges


def mixed_edges(graph: Graph, count: int, *, long_range_fraction: float = 0.5,
                hops: int = 3, seed: SeedLike = None) -> List[WeightedEdge]:
    """Blend of long-range random pairs and locality-biased edges."""
    check_probability(long_range_fraction, "long_range_fraction")
    if count == 0:
        return []
    rng = as_rng(seed)
    num_long = int(round(long_range_fraction * count))
    num_local = count - num_long
    taken: set = set()
    edges: List[WeightedEdge] = []
    if num_long:
        long_edges = random_pair_edges(graph, num_long, seed=rng, exclude=taken)
        taken.update(canonical_edge(u, v) for u, v, _ in long_edges)
        edges.extend(long_edges)
    if num_local:
        local_edges = locality_biased_edges(graph, num_local, hops=hops, seed=rng, exclude=taken)
        edges.extend(local_edges)
    order = rng.permutation(len(edges))
    return [edges[int(i)] for i in order]


def removable_edges(graph: Graph, count: int, *, seed: SeedLike = None,
                    protect: Optional[Set[Edge]] = None) -> List[Edge]:
    """Sample ``count`` existing edges whose sequential removal keeps ``graph`` connected.

    The sampler works on a scratch copy so removing the returned pairs *in
    order* (or all at once) provably leaves the graph connected.  Edges in
    ``protect`` are never chosen.

    One Tarjan bridge pass seeds a shuffled candidate queue; each pick is
    then validated with a single union-find sweep (an edge may have become a
    bridge since the pass) and the queue is refreshed only when it runs dry —
    after a refresh the first non-bridge pick always succeeds, so progress is
    guaranteed without re-running Tarjan per pick.

    Returns fewer than ``count`` pairs when the graph runs out of removable
    (cycle) edges — a tree has none.
    """
    from repro.graphs.validation import removals_keep_connected

    count = check_positive_int(count, "count") if count else 0
    if count == 0:
        return []
    rng = as_rng(seed)
    protected = set(protect) if protect else set()
    working = graph.copy()
    removed: List[Edge] = []

    def fresh_candidates() -> List[Edge]:
        candidates = [edge for edge in non_bridge_edges(working) if edge not in protected]
        order = rng.permutation(len(candidates))
        return [candidates[int(i)] for i in order]

    queue: List[Edge] = []
    while len(removed) < count:
        if not queue:
            # A fresh queue's first pick always succeeds (removing one
            # non-bridge edge keeps connectivity by definition), so the loop
            # is guaranteed to progress or terminate here.
            queue = fresh_candidates()
            if not queue:
                break
        edge = queue.pop()
        if not working.has_edge(*edge):
            continue
        if removals_keep_connected(working, [edge]):
            working.remove_edge(*edge)
            removed.append(edge)
        # else: the edge became a bridge after earlier removals; drop it.
    return removed


def weight_change_edges(graph: Graph, count: int, *, scale_range: Tuple[float, float] = (0.1, 1.0),
                        seed: SeedLike = None) -> List[WeightedEdge]:
    """Sample ``count`` re-weighting events ``(u, v, delta)`` on existing edges.

    Each sampled edge gains ``delta = weight * U(scale_range)`` conductance —
    the "reinforce an existing wire" workload that
    :class:`WeightChangeEvent` models.  Edges are drawn without replacement;
    fewer events are returned when the graph has fewer edges than ``count``.
    """
    count = check_positive_int(count, "count") if count else 0
    low, high = scale_range
    if not 0.0 < low <= high:
        raise ValueError(f"scale_range must satisfy 0 < low <= high, got {scale_range}")
    if count == 0 or graph.num_edges == 0:
        return []
    rng = as_rng(seed)
    edges = list(graph.weighted_edges())
    chosen = rng.choice(len(edges), size=min(count, len(edges)), replace=False)
    factors = rng.uniform(low, high, size=chosen.shape[0])
    return [
        (edges[int(index)][0], edges[int(index)][1], float(edges[int(index)][2] * factor))
        for index, factor in zip(chosen, factors)
    ]


def split_into_batches(edges: Sequence[WeightedEdge], num_batches: int) -> List[List[WeightedEdge]]:
    """Split a stream into ``num_batches`` near-equal consecutive batches."""
    check_positive_int(num_batches, "num_batches")
    edges = list(edges)
    if num_batches > max(len(edges), 1):
        num_batches = max(len(edges), 1)
    boundaries = np.linspace(0, len(edges), num_batches + 1).astype(int)
    return [edges[start:end] for start, end in zip(boundaries[:-1], boundaries[1:])]
