"""End-to-end incremental-update scenarios reproducing the paper's protocol.

Table II of the paper follows one protocol per test case:

1. sparsify ``G(0)`` down to an initial off-tree density (≈ 10 %) → ``H(0)``;
2. measure the initial condition number κ0 = κ(G(0), H(0)) and set it as the
   quality target for all methods;
3. stream a set of new edges (enough to raise the sparsifier's density to
   ≈ 34 % if they were all blindly included), split into 10 batches;
4. after all batches, compare how much density each method needed to get back
   to κ0 and how long it took.

:class:`IncrementalScenario` packages steps 1-3 so the Table II/III/Figure 4
benches and the example scripts all run the identical protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.sparsify.grass import GrassConfig, GrassSparsifier
from repro.sparsify.metrics import offtree_density
from repro.spectral.condition import relative_condition_number
from repro.streams.edge_stream import (
    MixedBatch,
    mixed_edges,
    removable_edges,
    split_into_batches,
)
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive, check_positive_int, check_probability

Edge = Tuple[int, int]
WeightedEdge = Tuple[int, int, float]


@dataclass
class ScenarioConfig:
    """Parameters of the incremental-update protocol."""

    initial_offtree_density: float = 0.10
    final_offtree_density: float = 0.34
    num_iterations: int = 10
    long_range_fraction: float = 0.15
    locality_hops: int = 2
    condition_dense_limit: int = 1500
    grass_tree_method: str = "shortest_path"
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        check_positive(self.initial_offtree_density, "initial_offtree_density")
        check_positive(self.final_offtree_density, "final_offtree_density")
        if self.final_offtree_density <= self.initial_offtree_density:
            raise ValueError("final_offtree_density must exceed initial_offtree_density")
        check_positive_int(self.num_iterations, "num_iterations")


@dataclass
class IncrementalScenario:
    """A fully prepared incremental experiment.

    Attributes
    ----------
    graph:
        The original graph ``G(0)``.
    initial_sparsifier:
        The GRASS-built initial sparsifier ``H(0)``.
    initial_condition_number:
        κ(G(0), H(0)) — the quality target every method must reach after the
        updates (the "κ → ..." column of Table II shows how it degrades when
        nothing is done).
    batches:
        The streamed edges, split into ``num_iterations`` batches.
    config:
        The protocol parameters used to build the scenario.
    """

    graph: Graph
    initial_sparsifier: Graph
    initial_condition_number: float
    batches: List[List[WeightedEdge]]
    config: ScenarioConfig

    @property
    def all_new_edges(self) -> List[WeightedEdge]:
        """The full stream, flattened."""
        return [edge for batch in self.batches for edge in batch]

    @property
    def final_graph(self) -> Graph:
        """``G`` with every streamed edge included."""
        return self.graph.union_with_edges(self.all_new_edges)

    def initial_offtree_density(self) -> float:
        """Off-tree density of ``H(0)``."""
        return offtree_density(self.initial_sparsifier)

    def degraded_condition_number(self) -> float:
        """κ(G(final), H(0)) — quality if the sparsifier is never updated.

        This is the second number of the "κ(L_G, L_H)" column of Table II
        (e.g. "88 → 353" for G3_circuit): it motivates why the sparsifier
        must be updated at all.
        """
        return relative_condition_number(self.final_graph, self.initial_sparsifier,
                                         dense_limit=self.config.condition_dense_limit)


def build_scenario(graph: Graph, config: Optional[ScenarioConfig] = None,
                   *, initial_sparsifier: Optional[Graph] = None) -> IncrementalScenario:
    """Prepare the paper's incremental protocol for ``graph``.

    Parameters
    ----------
    graph:
        Original graph ``G(0)``.
    config:
        Protocol parameters.
    initial_sparsifier:
        Optional pre-built ``H(0)``; by default a GRASS-style sparsifier at
        ``config.initial_offtree_density`` is constructed.
    """
    config = config if config is not None else ScenarioConfig()
    rng = as_rng(config.seed)

    if initial_sparsifier is None:
        grass_config = GrassConfig(target_offtree_density=config.initial_offtree_density,
                                   tree_method=config.grass_tree_method,
                                   seed=config.seed)
        initial_sparsifier = GrassSparsifier(grass_config).sparsify(graph, evaluate_condition=False).sparsifier

    initial_condition = relative_condition_number(graph, initial_sparsifier,
                                                  dense_limit=config.condition_dense_limit)

    # Stream size: enough new edges to push the sparsifier's off-tree density
    # from the initial value to the "all edges included" value of the paper.
    num_new_edges = int(round((config.final_offtree_density - config.initial_offtree_density)
                              * graph.num_nodes))
    num_new_edges = max(num_new_edges, config.num_iterations)
    stream = mixed_edges(graph, num_new_edges, long_range_fraction=config.long_range_fraction,
                         hops=config.locality_hops, seed=rng)
    batches = split_into_batches(stream, config.num_iterations)
    return IncrementalScenario(
        graph=graph,
        initial_sparsifier=initial_sparsifier,
        initial_condition_number=initial_condition,
        batches=batches,
        config=config,
    )


# --------------------------------------------------------------------------- #
# Fully dynamic scenarios (insertions + deletions)
# --------------------------------------------------------------------------- #
@dataclass
class DynamicScenarioConfig:
    """Parameters of the fully dynamic (mixed insert/delete) protocol.

    The stream size follows the same accounting as :class:`ScenarioConfig`
    (enough *events* to move the off-tree density between the two bounds if
    every insertion were blindly included), but a configurable fraction of
    the events are edge deletions drawn from the evolving graph.
    """

    initial_offtree_density: float = 0.10
    final_offtree_density: float = 0.34
    num_iterations: int = 10
    deletion_fraction: float = 0.35
    long_range_fraction: float = 0.15
    locality_hops: int = 2
    condition_dense_limit: int = 1500
    grass_tree_method: str = "shortest_path"
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        check_positive(self.initial_offtree_density, "initial_offtree_density")
        check_positive(self.final_offtree_density, "final_offtree_density")
        if self.final_offtree_density <= self.initial_offtree_density:
            raise ValueError("final_offtree_density must exceed initial_offtree_density")
        check_positive_int(self.num_iterations, "num_iterations")
        check_probability(self.deletion_fraction, "deletion_fraction")


@dataclass
class DynamicScenario:
    """A fully prepared mixed insert/delete experiment.

    Attributes
    ----------
    graph:
        The original graph ``G(0)``.
    initial_sparsifier:
        The GRASS-built initial sparsifier ``H(0)``.
    initial_condition_number:
        κ(G(0), H(0)) — the quality target the dynamic sparsifier must hold.
    batches:
        The event stream split into ``num_iterations`` :class:`MixedBatch`
        objects; each batch applies deletions before insertions, and the
        deletions were chosen so the tracked graph stays connected throughout.
    config:
        The protocol parameters used to build the scenario.
    """

    graph: Graph
    initial_sparsifier: Graph
    initial_condition_number: float
    batches: List[MixedBatch]
    config: DynamicScenarioConfig

    @property
    def all_insertions(self) -> List[WeightedEdge]:
        """Every streamed insertion, flattened in application order."""
        return [edge for batch in self.batches for edge in batch.insertions]

    @property
    def all_deletions(self) -> List[Edge]:
        """Every streamed deletion, flattened in application order."""
        return [edge for batch in self.batches for edge in batch.deletions]

    @property
    def num_events(self) -> int:
        """Total event count of the stream."""
        return sum(batch.num_events for batch in self.batches)

    @property
    def deletion_fraction(self) -> float:
        """Realised fraction of deletion events across the whole stream."""
        events = self.num_events
        if events == 0:
            return 0.0
        return len(self.all_deletions) / events

    @property
    def final_graph(self) -> Graph:
        """``G`` after the full stream: all batches applied in order."""
        working = self.graph.copy()
        for batch in self.batches:
            for u, v in batch.deletions:
                working.remove_edge(u, v)
            working.add_edges(batch.insertions, merge="add")
        return working

    def initial_offtree_density(self) -> float:
        """Off-tree density of ``H(0)``."""
        return offtree_density(self.initial_sparsifier)

    def degraded_condition_number(self) -> float:
        """κ(G(final), H(0)) — quality if the sparsifier is never maintained."""
        return relative_condition_number(self.final_graph, self.initial_sparsifier,
                                         dense_limit=self.config.condition_dense_limit)


def _tree_protected_sampler(graph: Graph, rng: np.random.Generator):
    """Deletion sampler that protects one spanning tree of ``graph``.

    Any set of *non-tree* edges can be removed — in any order, in bulk —
    without disconnecting the graph, because the protected tree keeps
    spanning it.  That turns deletion sampling into O(1) swap-pops from a
    candidate pool instead of one connectivity sweep per pick, which is what
    makes 10⁵-event stream generation feasible (the Tarjan-validated
    :func:`~repro.streams.edge_stream.removable_edges` path costs minutes at
    that scale).  The trade-off: tree edges of the *initial* graph are never
    deleted, so the stream models off-tree churn (new straps added and
    removed) rather than backbone rewiring.

    Returns ``(sample, register)``: ``sample(k)`` pops up to ``k`` deletable
    pairs, ``register(edges)`` adds freshly inserted edges to the pool.
    """
    import scipy.sparse.csgraph as csgraph

    tree = csgraph.minimum_spanning_tree(graph.adjacency_matrix()).tocoo()
    protected = {(int(u), int(v)) if u <= v else (int(v), int(u))
                 for u, v in zip(tree.row, tree.col)}
    pool: List[Edge] = [edge for edge in graph.edges() if edge not in protected]

    def sample(count: int) -> List[Edge]:
        chosen: List[Edge] = []
        for _ in range(min(count, len(pool))):
            index = int(rng.integers(0, len(pool)))
            pool[index], pool[-1] = pool[-1], pool[index]
            chosen.append(pool.pop())
        return chosen

    def register(edges: List[WeightedEdge]) -> None:
        pool.extend((u, v) for u, v, _ in edges)

    return sample, register


def simulate_event_stream(graph: Graph, num_events: int, num_batches: int, *,
                          deletion_fraction: float = 0.35,
                          long_range_fraction: float = 0.15,
                          locality_hops: int = 2,
                          protect_spanning_tree: bool = False,
                          seed: SeedLike = None) -> List[MixedBatch]:
    """Generate a mixed insert/delete stream with an explicit event budget.

    The building block behind :func:`build_dynamic_scenario`, exposed for
    benchmarks that size their stream in events rather than in off-tree
    density deltas (the sharded-removal gate and the nightly soak stream
    10⁴–10⁵ events over arbitrarily many batches).  The stream is simulated
    on a scratch copy of ``graph``, which guarantees every deletion targets
    an edge that still exists (possibly one inserted by an earlier batch) and
    never disconnects the graph, and every insertion is genuinely new at the
    moment it streams in.

    With ``protect_spanning_tree`` the deletions are drawn uniformly from the
    non-tree edges of the evolving graph (O(1) per pick, see
    :func:`_tree_protected_sampler`); the default runs the Tarjan-validated
    :func:`~repro.streams.edge_stream.removable_edges` sampler, which can
    also delete backbone edges but pays a connectivity check per pick.
    """
    check_positive_int(num_batches, "num_batches")
    check_probability(deletion_fraction, "deletion_fraction")
    rng = as_rng(seed)
    # Near-equal split of the event budget over the iterations.
    boundaries = np.linspace(0, max(int(num_events), 0), num_batches + 1).astype(int)
    working = graph.copy()
    sample_deletions = register_insertions = None
    if protect_spanning_tree:
        sample_deletions, register_insertions = _tree_protected_sampler(working, rng)
    batches: List[MixedBatch] = []
    deletion_debt = 0.0  # carries fractional deletion quota across batches
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        size = int(end - start)
        if size <= 0:
            batches.append(MixedBatch())
            continue
        deletion_debt += deletion_fraction * size
        num_deletions = min(int(deletion_debt), size)
        if sample_deletions is not None:
            deletions = sample_deletions(num_deletions)
        else:
            deletions = removable_edges(working, num_deletions, seed=rng)
        # Only count what was actually deletable: when the graph runs low on
        # cycle edges the shortfall stays owed, so later batches (enriched by
        # fresh insertions) can catch the realised fraction back up.
        deletion_debt -= len(deletions)
        for u, v in deletions:
            working.remove_edge(u, v)
        num_insertions = size - len(deletions)
        insertions = (mixed_edges(working, num_insertions,
                                  long_range_fraction=long_range_fraction,
                                  hops=locality_hops, seed=rng)
                      if num_insertions else [])
        working.add_edges(insertions, merge="add")
        if register_insertions is not None:
            register_insertions(insertions)
        batches.append(MixedBatch(insertions=insertions, deletions=deletions))
    return batches


def _simulate_dynamic_stream(graph: Graph, config: DynamicScenarioConfig,
                             rng: np.random.Generator) -> List[MixedBatch]:
    """Generate the density-accounted event stream of a dynamic scenario."""
    num_events = int(round((config.final_offtree_density - config.initial_offtree_density)
                           * graph.num_nodes))
    num_events = max(num_events, config.num_iterations)
    return simulate_event_stream(
        graph, num_events, config.num_iterations,
        deletion_fraction=config.deletion_fraction,
        long_range_fraction=config.long_range_fraction,
        locality_hops=config.locality_hops,
        seed=rng,
    )


def build_dynamic_scenario(graph: Graph, config: Optional[DynamicScenarioConfig] = None,
                           *, initial_sparsifier: Optional[Graph] = None) -> DynamicScenario:
    """Prepare a fully dynamic (mixed insert/delete) experiment for ``graph``.

    Parameters
    ----------
    graph:
        Original graph ``G(0)``; must be connected.
    config:
        Protocol parameters (deletion fraction, batch count, densities).
    initial_sparsifier:
        Optional pre-built ``H(0)``; by default a GRASS-style sparsifier at
        ``config.initial_offtree_density`` is constructed.
    """
    config = config if config is not None else DynamicScenarioConfig()
    rng = as_rng(config.seed)

    if initial_sparsifier is None:
        grass_config = GrassConfig(target_offtree_density=config.initial_offtree_density,
                                   tree_method=config.grass_tree_method,
                                   seed=config.seed)
        initial_sparsifier = GrassSparsifier(grass_config).sparsify(
            graph, evaluate_condition=False).sparsifier

    initial_condition = relative_condition_number(graph, initial_sparsifier,
                                                  dense_limit=config.condition_dense_limit)
    batches = _simulate_dynamic_stream(graph, config, rng)
    return DynamicScenario(
        graph=graph,
        initial_sparsifier=initial_sparsifier,
        initial_condition_number=initial_condition,
        batches=batches,
        config=config,
    )


def build_churn_scenario(graph: Graph, config: Optional[DynamicScenarioConfig] = None,
                         *, initial_sparsifier: Optional[Graph] = None) -> DynamicScenario:
    """Churn workload: a substantial share of events (default 35 %) delete edges.

    Models power-grid reconfiguration — switches open while new straps are
    added — which is the acceptance scenario for the fully dynamic driver.
    """
    if config is None:
        config = DynamicScenarioConfig(deletion_fraction=0.35)
    return build_dynamic_scenario(graph, config, initial_sparsifier=initial_sparsifier)


def build_deletion_scenario(graph: Graph, config: Optional[DynamicScenarioConfig] = None,
                            *, initial_sparsifier: Optional[Graph] = None) -> DynamicScenario:
    """Deletion-heavy workload: most events (default 75 %) remove edges.

    Models staged decommissioning / FEM mesh coarsening, where the sparsifier
    must keep shedding support without losing connectivity.
    """
    if config is None:
        config = DynamicScenarioConfig(deletion_fraction=0.75)
    return build_dynamic_scenario(graph, config, initial_sparsifier=initial_sparsifier)
