"""End-to-end incremental-update scenarios reproducing the paper's protocol.

Table II of the paper follows one protocol per test case:

1. sparsify ``G(0)`` down to an initial off-tree density (≈ 10 %) → ``H(0)``;
2. measure the initial condition number κ0 = κ(G(0), H(0)) and set it as the
   quality target for all methods;
3. stream a set of new edges (enough to raise the sparsifier's density to
   ≈ 34 % if they were all blindly included), split into 10 batches;
4. after all batches, compare how much density each method needed to get back
   to κ0 and how long it took.

:class:`IncrementalScenario` packages steps 1-3 so the Table II/III/Figure 4
benches and the example scripts all run the identical protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.graphs.graph import Graph
from repro.sparsify.grass import GrassConfig, GrassSparsifier
from repro.sparsify.metrics import offtree_density
from repro.spectral.condition import relative_condition_number
from repro.streams.edge_stream import mixed_edges, split_into_batches
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive, check_positive_int

WeightedEdge = Tuple[int, int, float]


@dataclass
class ScenarioConfig:
    """Parameters of the incremental-update protocol."""

    initial_offtree_density: float = 0.10
    final_offtree_density: float = 0.34
    num_iterations: int = 10
    long_range_fraction: float = 0.15
    locality_hops: int = 2
    condition_dense_limit: int = 1500
    grass_tree_method: str = "shortest_path"
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        check_positive(self.initial_offtree_density, "initial_offtree_density")
        check_positive(self.final_offtree_density, "final_offtree_density")
        if self.final_offtree_density <= self.initial_offtree_density:
            raise ValueError("final_offtree_density must exceed initial_offtree_density")
        check_positive_int(self.num_iterations, "num_iterations")


@dataclass
class IncrementalScenario:
    """A fully prepared incremental experiment.

    Attributes
    ----------
    graph:
        The original graph ``G(0)``.
    initial_sparsifier:
        The GRASS-built initial sparsifier ``H(0)``.
    initial_condition_number:
        κ(G(0), H(0)) — the quality target every method must reach after the
        updates (the "κ → ..." column of Table II shows how it degrades when
        nothing is done).
    batches:
        The streamed edges, split into ``num_iterations`` batches.
    config:
        The protocol parameters used to build the scenario.
    """

    graph: Graph
    initial_sparsifier: Graph
    initial_condition_number: float
    batches: List[List[WeightedEdge]]
    config: ScenarioConfig

    @property
    def all_new_edges(self) -> List[WeightedEdge]:
        """The full stream, flattened."""
        return [edge for batch in self.batches for edge in batch]

    @property
    def final_graph(self) -> Graph:
        """``G`` with every streamed edge included."""
        return self.graph.union_with_edges(self.all_new_edges)

    def initial_offtree_density(self) -> float:
        """Off-tree density of ``H(0)``."""
        return offtree_density(self.initial_sparsifier)

    def degraded_condition_number(self) -> float:
        """κ(G(final), H(0)) — quality if the sparsifier is never updated.

        This is the second number of the "κ(L_G, L_H)" column of Table II
        (e.g. "88 → 353" for G3_circuit): it motivates why the sparsifier
        must be updated at all.
        """
        return relative_condition_number(self.final_graph, self.initial_sparsifier,
                                         dense_limit=self.config.condition_dense_limit)


def build_scenario(graph: Graph, config: Optional[ScenarioConfig] = None,
                   *, initial_sparsifier: Optional[Graph] = None) -> IncrementalScenario:
    """Prepare the paper's incremental protocol for ``graph``.

    Parameters
    ----------
    graph:
        Original graph ``G(0)``.
    config:
        Protocol parameters.
    initial_sparsifier:
        Optional pre-built ``H(0)``; by default a GRASS-style sparsifier at
        ``config.initial_offtree_density`` is constructed.
    """
    config = config if config is not None else ScenarioConfig()
    rng = as_rng(config.seed)

    if initial_sparsifier is None:
        grass_config = GrassConfig(target_offtree_density=config.initial_offtree_density,
                                   tree_method=config.grass_tree_method,
                                   seed=config.seed)
        initial_sparsifier = GrassSparsifier(grass_config).sparsify(graph, evaluate_condition=False).sparsifier

    initial_condition = relative_condition_number(graph, initial_sparsifier,
                                                  dense_limit=config.condition_dense_limit)

    # Stream size: enough new edges to push the sparsifier's off-tree density
    # from the initial value to the "all edges included" value of the paper.
    num_new_edges = int(round((config.final_offtree_density - config.initial_offtree_density)
                              * graph.num_nodes))
    num_new_edges = max(num_new_edges, config.num_iterations)
    stream = mixed_edges(graph, num_new_edges, long_range_fraction=config.long_range_fraction,
                         hops=config.locality_hops, seed=rng)
    batches = split_into_batches(stream, config.num_iterations)
    return IncrementalScenario(
        graph=graph,
        initial_sparsifier=initial_sparsifier,
        initial_condition_number=initial_condition,
        batches=batches,
        config=config,
    )
