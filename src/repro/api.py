"""The stable public API of the inGRASS reproduction — import from here.

One curated, flat surface over the package's layers::

    from repro.api import Sparsifier, SparsifierService, InGrassConfig

    driver = Sparsifier(InGrassConfig(num_shards=4))     # engine choice is config-driven
    driver.setup(graph)
    driver.update(batch)

    service = SparsifierService(InGrassConfig())          # concurrent-read deployment
    service.setup(graph)
    service.apply(batch)
    snap = service.snapshot()                             # immutable epoch view
    snap.effective_resistance(u, v)
    snap.solve(b)

The deeper module paths (``repro.core``, ``repro.spectral``, …) remain
importable — they are the implementation layers and keep their guarantees —
but anything a downstream application needs day-to-day is re-exported here,
and new code should prefer these names.  The table of old → new import paths
lives in the README ("API at a glance").
"""

from __future__ import annotations

from typing import Optional

# -- configuration ----------------------------------------------------------
from repro.core.config import InGrassConfig, LRDConfig

# -- drivers (write path) ---------------------------------------------------
from repro.core.incremental import InGrassSparsifier, IterationRecord, MixedUpdateResult
from repro.core.sharding import ShardedSparsifier, ShardPlan

# -- persistence ------------------------------------------------------------
from repro.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    describe_checkpoint,
    is_checkpoint,
    load_checkpoint,
    save_checkpoint,
)

# -- service + snapshots (read path) ----------------------------------------
from repro.service import SparsifierService
from repro.snapshot import SparsifierSnapshot

# -- network front end (serving path) ---------------------------------------
from repro.server import (
    ServerBackendUnavailableError,
    ServerConfig,
    ServerRequestError,
    SparsifierClient,
    SparsifierHTTPServer,
    connect,
    serve,
)

# -- graph substrate --------------------------------------------------------
from repro.graphs.graph import FrozenGraph, FrozenGraphError, Graph
from repro.graphs.components import is_connected
from repro.graphs.generators import (
    fe_mesh_2d,
    grid_circuit_2d,
    grid_circuit_3d,
)

# -- initial sparsifiers and quality metrics --------------------------------
from repro.sparsify.grass import GrassConfig, GrassSparsifier
from repro.sparsify.metrics import (
    SparsifierReport,
    evaluate_sparsifier,
    offtree_density,
    relative_density,
)

# -- spectral toolbox -------------------------------------------------------
from repro.spectral.condition import relative_condition_number
from repro.spectral.effective_resistance import effective_resistance
from repro.spectral.solvers import (
    GroundedSolver,
    PCGSolver,
    SolveReport,
    conjugate_gradient,
    jacobi_preconditioner,
)

# -- streams and scenarios --------------------------------------------------
from repro.streams.edge_stream import (
    DeletionEvent,
    InsertionEvent,
    MixedBatch,
    WeightChangeEvent,
    mixed_edges,
    split_into_batches,
)
from repro.streams.scenarios import (
    DynamicScenario,
    DynamicScenarioConfig,
    ScenarioConfig,
    build_churn_scenario,
    build_deletion_scenario,
    build_dynamic_scenario,
    build_scenario,
    simulate_event_stream,
)


def Sparsifier(config: Optional[InGrassConfig] = None) -> InGrassSparsifier:
    """Build the incremental sparsifier driver matching ``config``.

    The canonical constructor: delegates to
    :meth:`InGrassSparsifier.from_config`, so ``config.num_shards > 1``
    transparently returns the sharded engine (same public API, bit-identical
    sparsifier by the oracle guarantee) and ``None`` means defaults.
    """
    return InGrassSparsifier.from_config(config)


__all__ = [
    # configuration
    "InGrassConfig",
    "LRDConfig",
    # drivers
    "Sparsifier",
    "InGrassSparsifier",
    "ShardedSparsifier",
    "ShardPlan",
    "IterationRecord",
    "MixedUpdateResult",
    # persistence
    "save_checkpoint",
    "load_checkpoint",
    "describe_checkpoint",
    "is_checkpoint",
    "CHECKPOINT_FORMAT_VERSION",
    # service / snapshots
    "SparsifierService",
    "SparsifierSnapshot",
    # network front end
    "serve",
    "connect",
    "ServerConfig",
    "SparsifierHTTPServer",
    "SparsifierClient",
    "ServerRequestError",
    "ServerBackendUnavailableError",
    # graphs
    "Graph",
    "FrozenGraph",
    "FrozenGraphError",
    "grid_circuit_2d",
    "grid_circuit_3d",
    "fe_mesh_2d",
    "is_connected",
    # initial sparsifiers + metrics
    "GrassConfig",
    "GrassSparsifier",
    "SparsifierReport",
    "evaluate_sparsifier",
    "offtree_density",
    "relative_density",
    # spectral
    "effective_resistance",
    "relative_condition_number",
    "GroundedSolver",
    "PCGSolver",
    "SolveReport",
    "conjugate_gradient",
    "jacobi_preconditioner",
    # streams / scenarios
    "MixedBatch",
    "InsertionEvent",
    "DeletionEvent",
    "WeightChangeEvent",
    "mixed_edges",
    "split_into_batches",
    "ScenarioConfig",
    "DynamicScenario",
    "DynamicScenarioConfig",
    "build_scenario",
    "build_churn_scenario",
    "build_deletion_scenario",
    "build_dynamic_scenario",
    "simulate_event_stream",
]
