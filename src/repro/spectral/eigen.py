"""Laplacian eigenvalue/eigenvector utilities.

Thin wrappers around dense and sparse symmetric eigensolvers, with the
grounding/projection details needed for singular Laplacians handled once here
instead of in every caller.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.graph import Graph


def dense_laplacian_spectrum(graph: Graph) -> Tuple[np.ndarray, np.ndarray]:
    """Full eigen-decomposition of the Laplacian (small graphs only).

    Returns ``(eigenvalues, eigenvectors)`` sorted ascending; the first
    eigenvalue is ~0 with the constant eigenvector.
    """
    laplacian = graph.laplacian_matrix().toarray()
    laplacian = 0.5 * (laplacian + laplacian.T)
    eigenvalues, eigenvectors = scipy.linalg.eigh(laplacian)
    return eigenvalues, eigenvectors


def smallest_nonzero_eigenvalues(graph: Graph, k: int = 2, *, dense_limit: int = 2000,
                                 tol: float = 1e-8) -> np.ndarray:
    """Return the ``k`` smallest non-zero Laplacian eigenvalues.

    The algebraic connectivity (Fiedler value) is ``result[0]``.
    """
    n = graph.num_nodes
    if n < 2:
        raise ValueError("need at least two nodes")
    k = min(k, n - 1)
    if n <= dense_limit:
        eigenvalues, _ = dense_laplacian_spectrum(graph)
        nonzero = eigenvalues[np.abs(eigenvalues) > max(tol, 1e-9 * max(eigenvalues.max(), 1.0))]
        nonzero = np.sort(nonzero)
        if nonzero.size < k:
            # Pad defensively; callers treat the result as approximate anyway.
            nonzero = np.concatenate([nonzero, np.full(k - nonzero.size, nonzero[-1] if nonzero.size else 0.0)])
        return nonzero[:k]
    laplacian = graph.laplacian_matrix()
    # Shift-invert around sigma=0 targets the small end of the spectrum; ask
    # for one extra eigenvalue to discard the zero mode.
    values = spla.eigsh(laplacian + 1e-10 * sp.identity(n), k=k + 1, sigma=0, which="LM",
                        return_eigenvectors=False, tol=tol)
    values = np.sort(np.asarray(values, dtype=float))
    return values[1:k + 1]


def largest_eigenvalue(graph: Graph, *, tol: float = 1e-8) -> float:
    """Return the largest Laplacian eigenvalue."""
    n = graph.num_nodes
    if n < 2:
        raise ValueError("need at least two nodes")
    if n <= 3:
        eigenvalues, _ = dense_laplacian_spectrum(graph)
        return float(eigenvalues[-1])
    laplacian = graph.laplacian_matrix()
    value = spla.eigsh(laplacian, k=1, which="LA", return_eigenvectors=False, tol=tol)
    return float(value[0])


def fiedler_vector(graph: Graph, *, dense_limit: int = 2000, tol: float = 1e-8) -> np.ndarray:
    """Return the eigenvector of the second-smallest Laplacian eigenvalue."""
    n = graph.num_nodes
    if n < 2:
        raise ValueError("need at least two nodes")
    if n <= dense_limit:
        eigenvalues, eigenvectors = dense_laplacian_spectrum(graph)
        order = np.argsort(eigenvalues)
        return eigenvectors[:, order[1]]
    laplacian = graph.laplacian_matrix()
    values, vectors = spla.eigsh(laplacian + 1e-10 * sp.identity(n), k=2, sigma=0, which="LM", tol=tol)
    order = np.argsort(values)
    return vectors[:, order[-1]]


def spectral_embedding(graph: Graph, dimensions: int, *, dense_limit: int = 2000,
                       tol: float = 1e-8) -> np.ndarray:
    """Weighted eigensubspace embedding of Lemma 3.2: columns ``u_i / sqrt(λ_i)``.

    Row distances of the returned ``(n, dimensions)`` matrix approximate
    effective resistances when ``dimensions`` approaches ``n`` (equation (6)).
    """
    n = graph.num_nodes
    dimensions = min(dimensions, n - 1)
    if dimensions < 1:
        raise ValueError("dimensions must be at least 1")
    if n <= dense_limit:
        eigenvalues, eigenvectors = dense_laplacian_spectrum(graph)
        order = np.argsort(eigenvalues)
        eigenvalues = eigenvalues[order]
        eigenvectors = eigenvectors[:, order]
        selected_values = eigenvalues[1:dimensions + 1]
        selected_vectors = eigenvectors[:, 1:dimensions + 1]
    else:
        laplacian = graph.laplacian_matrix()
        values, vectors = spla.eigsh(laplacian + 1e-10 * sp.identity(n), k=dimensions + 1, sigma=0,
                                     which="LM", tol=tol)
        order = np.argsort(values)
        selected_values = values[order][1:dimensions + 1]
        selected_vectors = vectors[:, order][:, 1:dimensions + 1]
    safe = np.maximum(selected_values, 1e-15)
    return selected_vectors / np.sqrt(safe)[np.newaxis, :]
