"""Spectral algebra: resistances, Krylov surrogates, condition numbers, solvers."""

from repro.spectral.condition import (
    ConditionEstimate,
    condition_estimate,
    condition_number_upper_bound_from_distortions,
    dominant_generalized_eigenvector,
    relative_condition_number,
    spectral_similarity_epsilon,
)
from repro.spectral.effective_resistance import (
    ApproxResistanceCalculator,
    ExactResistanceCalculator,
    JLResistanceCalculator,
    edge_effective_resistances,
    effective_resistance,
    make_resistance_calculator,
    spectral_distortions,
    tree_path_resistances,
)
from repro.spectral.eigen import (
    dense_laplacian_spectrum,
    fiedler_vector,
    largest_eigenvalue,
    smallest_nonzero_eigenvalues,
    spectral_embedding,
)
from repro.spectral.krylov import (
    KrylovBasis,
    build_krylov_basis,
    default_krylov_order,
    krylov_resistance_matrix,
)
from repro.spectral.perturbation import (
    eigenvalue_perturbations,
    pair_indicator,
    rank_edges_by_exact_distortion,
    spectral_distortion_exact,
    total_relative_perturbation,
    weighted_eigensubspace,
)
from repro.spectral.quadratic import (
    SimilaritySample,
    quadratic_form,
    quadratic_form_matrix,
    rayleigh_quotient,
    sample_similarity,
)
from repro.spectral.solvers import (
    GroundedSolver,
    PCGSolver,
    SolveReport,
    conjugate_gradient,
    jacobi_preconditioner,
    project_out_constant,
)

__all__ = [
    "ConditionEstimate",
    "condition_estimate",
    "relative_condition_number",
    "dominant_generalized_eigenvector",
    "spectral_similarity_epsilon",
    "condition_number_upper_bound_from_distortions",
    "ExactResistanceCalculator",
    "ApproxResistanceCalculator",
    "JLResistanceCalculator",
    "make_resistance_calculator",
    "effective_resistance",
    "edge_effective_resistances",
    "spectral_distortions",
    "tree_path_resistances",
    "KrylovBasis",
    "build_krylov_basis",
    "default_krylov_order",
    "krylov_resistance_matrix",
    "dense_laplacian_spectrum",
    "smallest_nonzero_eigenvalues",
    "largest_eigenvalue",
    "fiedler_vector",
    "spectral_embedding",
    "pair_indicator",
    "eigenvalue_perturbations",
    "weighted_eigensubspace",
    "spectral_distortion_exact",
    "total_relative_perturbation",
    "rank_edges_by_exact_distortion",
    "quadratic_form",
    "quadratic_form_matrix",
    "rayleigh_quotient",
    "sample_similarity",
    "SimilaritySample",
    "GroundedSolver",
    "PCGSolver",
    "SolveReport",
    "conjugate_gradient",
    "jacobi_preconditioner",
    "project_out_constant",
]
