"""Relative condition number ``κ(L_G, L_H)`` between a graph and its sparsifier.

The paper's quality metric is the relative condition number of the pencil
``(L_G, L_H)``: the ratio of the largest to the smallest non-trivial
generalized eigenvalue of ``L_G u = λ L_H u``.  A sparsifier with small κ is
spectrally similar to the original graph (equation (1) of the paper with
``ε ≈ sqrt(κ)``), and κ directly bounds the iteration count of a
sparsifier-preconditioned CG solve.

Both Laplacians are singular (their null space is the constant vector), so the
pencil is reduced by grounding one node, which leaves exactly the non-trivial
eigenvalues.  Two computation paths are provided:

* a **dense** path (``scipy.linalg.eigh`` on the reduced pencil) — exact, used
  for graphs up to a few thousand nodes and inside tests;
* a **sparse / iterative** path (shift-invert Lanczos through
  ``scipy.sparse.linalg.eigsh`` with factorised operators) for larger graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.graph import Graph
from repro.graphs.laplacian import grounded_laplacian


@dataclass
class ConditionEstimate:
    """Result of a condition-number computation."""

    lambda_max: float
    lambda_min: float
    method: str

    @property
    def condition_number(self) -> float:
        """κ = λ_max / λ_min (infinite when λ_min is numerically zero)."""
        if self.lambda_min <= 0:
            return float("inf")
        return self.lambda_max / self.lambda_min


_DENSE_LIMIT_DEFAULT = 1500


def _reduced_pencil(graph: Graph, sparsifier: Graph) -> Tuple[sp.csr_matrix, sp.csr_matrix]:
    """Return the grounded (SPD) pencil matrices ``(A, B)`` for ``(L_G, L_H)``."""
    if graph.num_nodes != sparsifier.num_nodes:
        raise ValueError("graph and sparsifier must share the same node set")
    if graph.num_nodes < 2:
        raise ValueError("condition number needs at least two nodes")
    lap_g = graph.laplacian_matrix()
    lap_h = sparsifier.laplacian_matrix()
    reduced_g, _ = grounded_laplacian(lap_g, ground=0)
    reduced_h, _ = grounded_laplacian(lap_h, ground=0)
    return reduced_g, reduced_h


def _dense_extreme_eigenvalues(reduced_g: sp.csr_matrix, reduced_h: sp.csr_matrix) -> Tuple[float, float]:
    """Dense generalized eigenvalues of the reduced pencil (exact path)."""
    a = reduced_g.toarray()
    b = reduced_h.toarray()
    # Symmetrise to wash out round-off asymmetry before LAPACK.
    a = 0.5 * (a + a.T)
    b = 0.5 * (b + b.T)
    eigenvalues = scipy.linalg.eigh(a, b, eigvals_only=True)
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    positive = eigenvalues[eigenvalues > 0]
    if positive.size == 0:
        raise RuntimeError("no positive generalized eigenvalues found")
    return float(positive.max()), float(positive.min())


def _sparse_extreme_eigenvalues(reduced_g: sp.csr_matrix, reduced_h: sp.csr_matrix,
                                tol: float = 1e-6, maxiter: Optional[int] = None) -> Tuple[float, float]:
    """Iterative extreme generalized eigenvalues via Lanczos.

    λ_max is computed from the operator ``L_H^{-1} L_G`` made symmetric by the
    generalized ``eigsh`` interface with ``Minv`` supplied as a factorised
    solve; λ_min comes from the reciprocal problem with the roles of the two
    matrices exchanged, which converges much faster than asking Lanczos for
    the smallest eigenvalue directly.
    """
    size = reduced_g.shape[0]
    shift = 1e-12

    def factorized_operator(matrix: sp.csr_matrix) -> spla.LinearOperator:
        lu = spla.splu(sp.csc_matrix(matrix + shift * sp.identity(size, format="csr")))
        return spla.LinearOperator((size, size), matvec=lu.solve, dtype=float)

    h_inv = factorized_operator(reduced_h)
    g_inv = factorized_operator(reduced_g)
    kwargs = dict(k=1, tol=tol, maxiter=maxiter)
    lambda_max = float(
        spla.eigsh(reduced_g, M=reduced_h, Minv=h_inv, which="LM", return_eigenvectors=False, **kwargs)[0]
    )
    # Largest eigenvalue of the swapped pencil = 1 / smallest of the original.
    swapped_max = float(
        spla.eigsh(reduced_h, M=reduced_g, Minv=g_inv, which="LM", return_eigenvectors=False, **kwargs)[0]
    )
    lambda_min = 1.0 / swapped_max if swapped_max > 0 else 0.0
    return lambda_max, lambda_min


def condition_estimate(graph: Graph, sparsifier: Graph, *, dense_limit: int = _DENSE_LIMIT_DEFAULT,
                       tol: float = 1e-6, maxiter: Optional[int] = None) -> ConditionEstimate:
    """Estimate λ_max, λ_min and κ of the pencil ``(L_G, L_H)``.

    Parameters
    ----------
    graph, sparsifier:
        Graphs on the same node set; the sparsifier must be connected.
    dense_limit:
        Node-count threshold below which the exact dense path is used.
    tol, maxiter:
        Lanczos parameters for the iterative path.
    """
    reduced_g, reduced_h = _reduced_pencil(graph, sparsifier)
    if graph.num_nodes <= dense_limit:
        lambda_max, lambda_min = _dense_extreme_eigenvalues(reduced_g, reduced_h)
        method = "dense"
    else:
        try:
            lambda_max, lambda_min = _sparse_extreme_eigenvalues(reduced_g, reduced_h, tol=tol, maxiter=maxiter)
            method = "lanczos"
        except Exception:
            # Lanczos occasionally fails to converge on ill-conditioned pencils;
            # fall back to the dense path rather than returning garbage.
            lambda_max, lambda_min = _dense_extreme_eigenvalues(reduced_g, reduced_h)
            method = "dense-fallback"
    return ConditionEstimate(lambda_max=lambda_max, lambda_min=lambda_min, method=method)


def dominant_generalized_eigenvector(graph: Graph, sparsifier: Graph, *,
                                     dense_limit: int = _DENSE_LIMIT_DEFAULT,
                                     tol: float = 1e-6,
                                     maxiter: Optional[int] = None) -> Tuple[float, np.ndarray]:
    """Return ``(λ_max, x)`` for the pencil ``L_G x = λ L_H x``.

    The eigenvector of the largest generalized eigenvalue is the mode the
    sparsifier supports *worst*: by first-order perturbation, adding a graph
    edge ``(p, q, w)`` to ``H`` reduces λ_max proportionally to
    ``w · (x_p - x_q)²``.  The fully dynamic κ guard uses exactly that score
    to pick surgical replacement edges after deletions instead of trusting
    the (post-removal, possibly stale) LRD distortion estimates.

    The returned vector is indexed by original node ids (the grounded node
    carries 0) and normalised to unit Euclidean norm.
    """
    reduced_g, reduced_h = _reduced_pencil(graph, sparsifier)
    n = graph.num_nodes
    if n <= dense_limit:
        a = reduced_g.toarray()
        b = reduced_h.toarray()
        a = 0.5 * (a + a.T)
        b = 0.5 * (b + b.T)
        eigenvalues, eigenvectors = scipy.linalg.eigh(a, b)
        lambda_max = float(eigenvalues[-1])
        reduced_vector = np.asarray(eigenvectors[:, -1], dtype=float)
    else:
        size = reduced_g.shape[0]
        shift = 1e-12
        lu = spla.splu(sp.csc_matrix(reduced_h + shift * sp.identity(size, format="csr")))
        h_inv = spla.LinearOperator((size, size), matvec=lu.solve, dtype=float)
        try:
            values, vectors = spla.eigsh(reduced_g, M=reduced_h, Minv=h_inv, which="LM",
                                         k=1, tol=tol, maxiter=maxiter)
            lambda_max = float(values[0])
            reduced_vector = np.asarray(vectors[:, 0], dtype=float)
        except Exception:
            return dominant_generalized_eigenvector(graph, sparsifier, dense_limit=n,
                                                    tol=tol, maxiter=maxiter)
    full = np.zeros(n)
    full[1:] = reduced_vector  # ground node 0 carries potential 0
    norm = float(np.linalg.norm(full))
    if norm > 0:
        full /= norm
    return lambda_max, full


def relative_condition_number(graph: Graph, sparsifier: Graph, *, dense_limit: int = _DENSE_LIMIT_DEFAULT,
                              tol: float = 1e-6, maxiter: Optional[int] = None) -> float:
    """Return κ(L_G, L_H) — the headline quality metric of the paper's tables."""
    return condition_estimate(graph, sparsifier, dense_limit=dense_limit, tol=tol, maxiter=maxiter).condition_number


def spectral_similarity_epsilon(graph: Graph, sparsifier: Graph, **kwargs) -> float:
    """Return the smallest ε such that equation (1) of the paper holds.

    With λ_min and λ_max the extreme generalized eigenvalues, scaling ``L_H``
    by ``sqrt(λ_min λ_max)`` centres the pencil and the similarity factor is
    ``ε = sqrt(λ_max / λ_min) = sqrt(κ)``.
    """
    estimate = condition_estimate(graph, sparsifier, **kwargs)
    kappa = estimate.condition_number
    return float(np.sqrt(kappa)) if np.isfinite(kappa) else float("inf")


def condition_number_upper_bound_from_distortions(distortions: np.ndarray) -> float:
    """Cheap upper-bound proxy: ``1 + Σ distortion`` of the excluded edges.

    Adding the edges of ``G \\ H`` back one at a time perturbs each eigenvalue
    of the pencil by at most its spectral distortion (Lemma 3.1/3.2), so the
    sum of distortions bounds the growth of λ_max while λ_min ≥ 1 whenever H's
    edges are a reweighted superset restricted to G.  The bound is loose but
    monotone, which is all the edge-selection heuristics need.
    """
    distortions = np.asarray(distortions, dtype=float)
    if distortions.size == 0:
        return 1.0
    return float(1.0 + distortions.sum())
