"""Laplacian linear-system solvers.

A connected graph's Laplacian is symmetric positive semi-definite with a
one-dimensional null space spanned by the constant vector.  Solving
``L x = b`` for ``b`` orthogonal to the null space is the workhorse behind
exact effective resistances, the condition-number estimator and the
preconditioned-CG example.  Two solver families are provided:

* :class:`GroundedSolver` — direct factorisation of the Laplacian with one
  node grounded (removed).  Exact, best for small/medium graphs and repeated
  solves against the same matrix.
* :func:`conjugate_gradient` / :class:`PCGSolver` — matrix-free CG with an
  optional preconditioner, used to demonstrate sparsifier-preconditioned
  solves (the downstream application motivating GRASS-style sparsifiers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.graph import Graph
from repro.graphs.laplacian import grounded_laplacian


def project_out_constant(vector: np.ndarray) -> np.ndarray:
    """Return ``vector`` with its mean removed (orthogonal to the ones vector)."""
    vector = np.asarray(vector, dtype=float)
    return vector - vector.mean()


class GroundedSolver:
    """Direct solver for ``L x = b`` on a connected graph via grounding.

    Row and column ``ground`` are removed, the reduced SPD system is
    factorised once with ``splu``, and solutions are re-expanded with the
    grounded entry set to zero before being re-centred to have zero mean —
    i.e. the solver returns the minimum-norm (pseudo-inverse) solution.
    """

    def __init__(self, laplacian: sp.spmatrix, ground: int = 0) -> None:
        laplacian = sp.csr_matrix(laplacian)
        self._n = laplacian.shape[0]
        if self._n < 2:
            raise ValueError("GroundedSolver requires at least two nodes")
        reduced, keep = grounded_laplacian(laplacian, ground=ground)
        self._keep = keep
        self._ground = ground
        # A tiny diagonal shift guards against numerically singular reductions
        # that arise when the graph is *nearly* disconnected.
        shift = 1e-12 * max(1.0, abs(reduced.diagonal()).max())
        self._lu = spla.splu(sp.csc_matrix(reduced + shift * sp.identity(reduced.shape[0])))

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._n, self._n)

    @classmethod
    def from_graph(cls, graph: Graph, ground: int = 0) -> "GroundedSolver":
        """Build a solver from a :class:`Graph`."""
        return cls(graph.laplacian_matrix(), ground=ground)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Return the zero-mean solution of ``L x = b``.

        ``b`` is first projected onto the range of ``L`` (mean removed), so
        callers may pass any right-hand side.
        """
        b = project_out_constant(np.asarray(b, dtype=float))
        if b.shape[0] != self._n:
            raise ValueError(f"right-hand side has length {b.shape[0]}, expected {self._n}")
        x = np.zeros(self._n)
        x[self._keep] = self._lu.solve(b[self._keep])
        return project_out_constant(x)

    def solve_many(self, b_matrix: np.ndarray) -> np.ndarray:
        """Solve for every column of ``b_matrix``; returns a matrix of solutions."""
        b_matrix = np.asarray(b_matrix, dtype=float)
        if b_matrix.ndim == 1:
            return self.solve(b_matrix)
        return np.column_stack([self.solve(b_matrix[:, j]) for j in range(b_matrix.shape[1])])

    def as_linear_operator(self) -> spla.LinearOperator:
        """Expose the pseudo-inverse action as a scipy ``LinearOperator``."""
        return spla.LinearOperator(self.shape, matvec=self.solve, dtype=float)


@dataclass
class SolveReport:
    """Outcome of an iterative solve."""

    solution: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool


def conjugate_gradient(
    matvec: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    *,
    preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    tol: float = 1e-8,
    max_iterations: Optional[int] = None,
    x0: Optional[np.ndarray] = None,
    project_constant: bool = True,
) -> SolveReport:
    """Preconditioned conjugate gradient for SPSD systems.

    Parameters
    ----------
    matvec:
        Function applying the system matrix.
    b:
        Right-hand side.
    preconditioner:
        Function applying an approximation of the inverse (e.g. a sparsifier
        Laplacian solve).  ``None`` means un-preconditioned CG.
    tol:
        Relative residual tolerance ``||r|| <= tol * ||b||``.
    max_iterations:
        Iteration cap (default ``10 * n``).
    project_constant:
        Keep iterates orthogonal to the all-ones vector (required when the
        matrix is a Laplacian).
    """
    b = np.asarray(b, dtype=float)
    n = b.shape[0]
    if project_constant:
        b = project_out_constant(b)
    if max_iterations is None:
        max_iterations = 10 * n
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float).copy()
    if project_constant:
        x = project_out_constant(x)
    r = b - matvec(x)
    if project_constant:
        r = project_out_constant(r)
    z = preconditioner(r) if preconditioner is not None else r
    if project_constant:
        z = project_out_constant(z)
    p = z.copy()
    rz = float(r @ z)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return SolveReport(solution=x, iterations=0, residual_norm=0.0, converged=True)
    iterations = 0
    residual_norm = float(np.linalg.norm(r))
    while iterations < max_iterations and residual_norm > tol * b_norm:
        ap = matvec(p)
        if project_constant:
            ap = project_out_constant(ap)
        denom = float(p @ ap)
        if denom <= 0.0:
            break
        alpha = rz / denom
        x = x + alpha * p
        r = r - alpha * ap
        residual_norm = float(np.linalg.norm(r))
        z = preconditioner(r) if preconditioner is not None else r
        if project_constant:
            z = project_out_constant(z)
        rz_next = float(r @ z)
        beta = rz_next / rz if rz != 0.0 else 0.0
        p = z + beta * p
        rz = rz_next
        iterations += 1
    converged = residual_norm <= tol * b_norm
    return SolveReport(solution=x, iterations=iterations, residual_norm=residual_norm, converged=converged)


class PCGSolver:
    """Preconditioned CG solver for a graph Laplacian.

    The preconditioner is another graph (typically a sparsifier) whose
    Laplacian is factorised once via :class:`GroundedSolver`.  Comparing
    iteration counts with and without the sparsifier preconditioner is the
    classic downstream use of spectral sparsification in circuit simulation.
    """

    def __init__(self, graph: Graph, preconditioner_graph: Optional[Graph] = None,
                 *, tol: float = 1e-8, max_iterations: Optional[int] = None) -> None:
        self._laplacian = graph.laplacian_matrix()
        self._tol = tol
        self._max_iterations = max_iterations
        self._preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None
        if preconditioner_graph is not None:
            solver = GroundedSolver.from_graph(preconditioner_graph)
            self._preconditioner = solver.solve

    def solve(self, b: np.ndarray) -> SolveReport:
        """Solve ``L x = b`` and report iterations/residual."""
        return conjugate_gradient(
            lambda x: self._laplacian @ x,
            b,
            preconditioner=self._preconditioner,
            tol=self._tol,
            max_iterations=self._max_iterations,
        )


def jacobi_preconditioner(laplacian: sp.spmatrix, eps: float = 1e-12) -> Callable[[np.ndarray], np.ndarray]:
    """Return a diagonal (Jacobi) preconditioner callable for ``laplacian``."""
    diag = np.asarray(sp.csr_matrix(laplacian).diagonal(), dtype=float)
    inv_diag = np.where(diag > eps, 1.0 / np.maximum(diag, eps), 0.0)

    def apply(vector: np.ndarray) -> np.ndarray:
        return inv_diag * np.asarray(vector, dtype=float)

    return apply
