"""Krylov-subspace surrogate eigenvectors (Section III-B-1 of the paper).

Exact effective resistances require the eigen-decomposition of the graph
Laplacian (equation (2) of the paper), which is far too expensive for large
graphs.  The paper instead spans a Krylov subspace built from power iterations
of the adjacency matrix, orthonormalises it, and uses the resulting vectors
``~u_1 .. ~u_m`` as surrogate eigenvectors in the resistance formula
(equation (3)):

    R(p, q) ≈ Σ_i (~u_i^T b_pq)^2 / (~u_i^T L ~u_i).

Because effective resistance is dominated by the low end of the Laplacian
spectrum, the practical quality of this estimate hinges on how well the
subspace captures the smallest non-trivial eigenvectors.  Power iterations of
the adjacency matrix are exactly a low-pass filter for the Laplacian (the
dominant adjacency directions are the smooth ones), and following the
solver-free GRASS line (SF-GRASS, HyperEF) this implementation sharpens the
raw power iterates in two ways:

* the subspace is built from **several independent filtered random vectors**
  rather than a single Krylov chain, which spreads the low-frequency coverage;
* a **Rayleigh–Ritz projection** of the Laplacian onto the subspace turns the
  orthonormal basis into Ritz vectors whose Ritz values approximate the small
  Laplacian eigenvalues, so each term of equation (3) lines up with a term of
  the exact equation (2).

The result is a low-dimensional embedding whose pairwise distances track exact
effective resistances closely enough to rank edges — which is all the LRD
decomposition and the update phase need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.linalg

from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive_int


@dataclass
class KrylovBasis:
    """Orthonormal surrogate eigenvectors with surrogate eigenvalues.

    Attributes
    ----------
    vectors:
        ``(n, m)`` matrix whose columns are the Ritz vectors ``~u_i`` (all
        orthogonal to the constant vector, mutually orthonormal).
    rayleigh:
        Length-``m`` array of ``~u_i^T L ~u_i`` values — the Ritz values used
        as denominators in the resistance formula (3).
    """

    vectors: np.ndarray
    rayleigh: np.ndarray

    @property
    def order(self) -> int:
        """Number of surrogate eigenvectors retained."""
        return int(self.vectors.shape[1])

    @property
    def num_nodes(self) -> int:
        return int(self.vectors.shape[0])

    def embedding(self) -> np.ndarray:
        """Return the resistance-embedding matrix ``(n, m)``.

        Row ``p`` is ``[~u_{1,p}/sqrt(r_1), ..., ~u_{m,p}/sqrt(r_m)]`` where
        ``r_i`` is the Ritz value, so the squared Euclidean distance between
        two rows equals the approximate effective resistance of equation (3).
        This is the surrogate version of the spectral embedding of Lemma 3.2.
        """
        safe = np.where(self.rayleigh > 0, self.rayleigh, np.inf)
        return self.vectors / np.sqrt(safe)[np.newaxis, :]


def default_krylov_order(num_nodes: int, minimum: int = 8, maximum: int = 96) -> int:
    """Paper's choice ``m = O(log N)``, clamped to a practical range."""
    if num_nodes <= 1:
        return minimum
    order = 3 * int(np.ceil(np.log2(max(num_nodes, 2))))
    return int(np.clip(order, minimum, maximum))


def _orthonormalize(columns: np.ndarray, drop_tol: float = 1e-10) -> np.ndarray:
    """Orthonormalise columns (two-pass modified Gram-Schmidt), dropping near-null ones."""
    kept: list[np.ndarray] = []
    for j in range(columns.shape[1]):
        vector = columns[:, j].astype(float).copy()
        vector -= vector.mean()
        for _pass in range(2):
            for basis_vector in kept:
                vector -= (basis_vector @ vector) * basis_vector
            vector -= vector.mean()
        norm = np.linalg.norm(vector)
        if norm > drop_tol:
            kept.append(vector / norm)
    if not kept:
        raise RuntimeError("failed to orthonormalise any subspace vector")
    return np.column_stack(kept)


def build_krylov_basis(
    graph: Graph,
    order: Optional[int] = None,
    *,
    seed: SeedLike = None,
    num_probe_vectors: Optional[int] = None,
    power_steps: Optional[int] = None,
    rayleigh_ritz: bool = True,
) -> KrylovBasis:
    """Build surrogate Laplacian eigenvectors from a filtered Krylov subspace.

    Parameters
    ----------
    graph:
        Connected weighted graph.
    order:
        Target number of surrogate eigenvectors ``m``; defaults to
        ``O(log N)`` via :func:`default_krylov_order`.
    seed:
        Seed for the random probe vectors.
    num_probe_vectors:
        Number of independent random probes whose filtered iterates span the
        subspace (default: ``order``).
    power_steps:
        Number of degree-normalised power (smoothing) iterations applied to
        each probe (default: ``ceil(log2 N)`` — enough for the smooth modes to
        dominate without washing everything into the constant vector).
    rayleigh_ritz:
        Rotate the orthonormal basis into Ritz vectors of the Laplacian
        (recommended; disabling reproduces the raw-basis variant for the
        ablation bench).

    Notes
    -----
    Every vector is kept orthogonal to the all-ones vector because the
    constant vector is the Laplacian null space; including it would add a
    spurious infinite term to resistance estimates.  Nearly linearly dependent
    iterates are dropped, so the returned order may be smaller than requested.
    """
    n = graph.num_nodes
    if n < 2:
        raise ValueError("Krylov basis requires at least two nodes")
    if order is None:
        order = default_krylov_order(n)
    order = check_positive_int(order, "order")
    order = min(order, n - 1)
    rng = as_rng(seed)

    adjacency = graph.adjacency_matrix()
    laplacian = graph.laplacian_matrix()
    degrees = np.maximum(np.asarray(adjacency.sum(axis=1)).ravel(), 1e-300)

    if num_probe_vectors is None:
        num_probe_vectors = order
    num_probe_vectors = max(1, min(num_probe_vectors, order))
    if power_steps is None:
        power_steps = int(np.ceil(np.log2(max(n, 2))))
    power_steps = max(1, power_steps)

    # Filtered probes: repeated degree-normalised adjacency products act as a
    # low-pass filter on the Laplacian spectrum (a lazy random-walk smoother).
    probes = rng.standard_normal((n, num_probe_vectors))
    probes -= probes.mean(axis=0, keepdims=True)
    collected = [probes.copy()]
    current = probes
    # Keep a few intermediate filter depths so the subspace retains some
    # mid-frequency content (useful for short-range resistances).
    checkpoints = sorted({max(1, power_steps // 4), max(1, power_steps // 2), power_steps})
    step = 0
    for checkpoint in checkpoints:
        while step < checkpoint:
            current = 0.5 * (current + (adjacency @ current) / degrees[:, None])
            current -= current.mean(axis=0, keepdims=True)
            norms = np.linalg.norm(current, axis=0, keepdims=True)
            current = current / np.maximum(norms, 1e-300)
            step += 1
        collected.append(current.copy())

    subspace = np.column_stack(collected)
    basis = _orthonormalize(subspace)

    if rayleigh_ritz:
        # Rayleigh-Ritz: project L onto the subspace and diagonalise the small
        # projected matrix; the resulting Ritz pairs approximate the smallest
        # Laplacian eigenpairs captured by the filter.
        projected = basis.T @ (laplacian @ basis)
        projected = 0.5 * (projected + projected.T)
        ritz_values, ritz_rotation = scipy.linalg.eigh(projected)
        vectors = basis @ ritz_rotation
        rayleigh = np.maximum(ritz_values, 0.0)
    else:
        vectors = basis
        rayleigh = np.maximum(np.einsum("ij,ij->j", basis, laplacian @ basis), 0.0)

    # Keep the `order` directions that contribute most to resistance, i.e. the
    # smallest positive Ritz values first.
    positive = rayleigh > 1e-14
    vectors = vectors[:, positive]
    rayleigh = rayleigh[positive]
    if rayleigh.size == 0:
        raise RuntimeError("all surrogate eigenvalues vanished; graph may be disconnected")
    keep = np.argsort(rayleigh)[:order]
    return KrylovBasis(vectors=vectors[:, keep], rayleigh=rayleigh[keep])


def krylov_resistance_matrix(basis: KrylovBasis) -> np.ndarray:
    """Return the dense ``(n, m)`` embedding whose row distances are resistances.

    Convenience wrapper around :meth:`KrylovBasis.embedding` that filters out
    directions with (numerically) zero Ritz value.
    """
    embedding = basis.embedding()
    finite_columns = np.isfinite(embedding).all(axis=0)
    return embedding[:, finite_columns]
