"""First-order eigenvalue perturbation analysis (Lemmas 3.1 and 3.2).

Adding an edge ``(p, q)`` of weight ``w`` to a sparsifier perturbs its
Laplacian by ``δL = w b_pq b_pq^T``.  First-order perturbation theory gives
``δλ_i = w (u_i^T b_pq)^2`` for each eigenpair ``(λ_i, u_i)`` of the original
sparsifier Laplacian (Lemma 3.1), and summing the relative perturbations over
the first ``K`` eigenvalues yields the spectral distortion
``Δ_K = w ||U_K^T b_pq||² ≈ w R(p, q)`` (Lemma 3.2 / equation (6)).

These routines validate the theory on small graphs and are exercised by the
unit/property tests; the production inGRASS path never needs full
eigen-decompositions.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.spectral.eigen import dense_laplacian_spectrum


def pair_indicator(num_nodes: int, p: int, q: int) -> np.ndarray:
    """Return the signed indicator vector ``b_pq`` (+1 at p, -1 at q)."""
    if p == q:
        raise ValueError("p and q must be distinct")
    b = np.zeros(num_nodes)
    b[p] = 1.0
    b[q] = -1.0
    return b


def eigenvalue_perturbations(sparsifier: Graph, p: int, q: int, weight: float) -> np.ndarray:
    """First-order perturbation ``δλ_i = w (u_i^T b_pq)^2`` for every eigenvalue.

    Uses the dense spectrum, so only suitable for small sparsifiers.
    """
    _, eigenvectors = dense_laplacian_spectrum(sparsifier)
    b = pair_indicator(sparsifier.num_nodes, p, q)
    projections = eigenvectors.T @ b
    return weight * projections**2


def weighted_eigensubspace(sparsifier: Graph, k: int) -> np.ndarray:
    """Return ``U_K = [u_2/sqrt(λ_2), ..., u_K/sqrt(λ_K)]`` (equation (5))."""
    eigenvalues, eigenvectors = dense_laplacian_spectrum(sparsifier)
    order = np.argsort(eigenvalues)
    eigenvalues = eigenvalues[order]
    eigenvectors = eigenvectors[:, order]
    k = min(k, sparsifier.num_nodes)
    if k < 2:
        raise ValueError("k must be at least 2")
    selected_values = np.maximum(eigenvalues[1:k], 1e-15)
    selected_vectors = eigenvectors[:, 1:k]
    return selected_vectors / np.sqrt(selected_values)[np.newaxis, :]


def spectral_distortion_exact(sparsifier: Graph, p: int, q: int, weight: float,
                              k: int | None = None) -> float:
    """Spectral distortion ``Δ_K = w ||U_K^T b_pq||²`` (equation (6)).

    With ``k = None`` (all eigenvalues) this equals ``w * R(p, q)`` exactly.
    """
    n = sparsifier.num_nodes
    k = n if k is None else min(k, n)
    subspace = weighted_eigensubspace(sparsifier, k)
    b = pair_indicator(n, p, q)
    projection = subspace.T @ b
    return float(weight * (projection @ projection))


def total_relative_perturbation(sparsifier: Graph, p: int, q: int, weight: float,
                                k: int | None = None) -> float:
    """Sum of relative eigenvalue perturbations ``Σ δλ_i / λ_i`` over ``i = 2..K``.

    Lemma 3.2 states this equals the spectral distortion; the equality is an
    invariant asserted by the property tests.
    """
    eigenvalues, eigenvectors = dense_laplacian_spectrum(sparsifier)
    order = np.argsort(eigenvalues)
    eigenvalues = eigenvalues[order]
    eigenvectors = eigenvectors[:, order]
    n = sparsifier.num_nodes
    k = n if k is None else min(k, n)
    b = pair_indicator(n, p, q)
    total = 0.0
    for i in range(1, k):
        lam = eigenvalues[i]
        if lam <= 1e-15:
            continue
        delta = weight * float(eigenvectors[:, i] @ b) ** 2
        total += delta / lam
    return total


def rank_edges_by_exact_distortion(sparsifier: Graph,
                                   candidates: Sequence[Tuple[int, int, float]]) -> list[int]:
    """Return candidate indices sorted by decreasing exact spectral distortion."""
    distortions = [spectral_distortion_exact(sparsifier, p, q, w) for p, q, w in candidates]
    return sorted(range(len(candidates)), key=lambda i: distortions[i], reverse=True)
