"""Effective-resistance computation: exact and Krylov-approximated.

The effective resistance ``R(p, q)`` between two nodes of a weighted graph
(viewing each edge as a resistor of conductance ``w``) is

    R(p, q) = b_pq^T L^+ b_pq

where ``b_pq`` is the signed indicator vector of the pair and ``L^+`` the
Laplacian pseudo-inverse.  Exact values come from grounded direct solves
(:class:`ExactResistanceCalculator`); scalable estimates come from the Krylov
surrogate eigenvectors of :mod:`repro.spectral.krylov`
(:class:`ApproxResistanceCalculator`), which is what the inGRASS setup phase
uses (equation (3) of the paper).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.spectral.krylov import KrylovBasis, build_krylov_basis, krylov_resistance_matrix
from repro.spectral.solvers import GroundedSolver
from repro.utils.rng import SeedLike
from repro.utils.validation import check_node_index

NodePair = Tuple[int, int]


class ExactResistanceCalculator:
    """Exact effective resistances via direct Laplacian solves.

    Each distinct ``p`` requires one linear solve whose solution is cached, so
    querying many pairs sharing endpoints stays cheap.  Intended for graphs up
    to a few tens of thousands of nodes (tests, validation, small benches).
    """

    def __init__(self, graph: Graph) -> None:
        if graph.num_nodes < 2:
            raise ValueError("effective resistance needs at least two nodes")
        self._graph = graph
        self._solver = GroundedSolver.from_graph(graph)
        self._potential_cache: dict[int, np.ndarray] = {}

    def refresh(self) -> None:
        """Rebuild the solver and drop cached potentials after graph mutations.

        The calculator factorises the Laplacian at construction time; edge
        insertions or deletions on the underlying graph silently invalidate
        both the factorisation and every cached potential vector.  Callers
        that keep a calculator alive across mutations (e.g. a driver holding
        one between removal batches) must invoke this hook before querying
        again — the library's own setup phase builds calculators transiently,
        so it never needs to.
        """
        self._solver = GroundedSolver.from_graph(self._graph)
        self._potential_cache.clear()

    def _potentials(self, node: int) -> np.ndarray:
        """Return ``L^+ e_node`` (cached)."""
        if node not in self._potential_cache:
            rhs = np.zeros(self._graph.num_nodes)
            rhs[node] = 1.0
            self._potential_cache[node] = self._solver.solve(rhs)
        return self._potential_cache[node]

    def resistance(self, p: int, q: int) -> float:
        """Exact effective resistance between nodes ``p`` and ``q``."""
        n = self._graph.num_nodes
        p = check_node_index(p, n, "p")
        q = check_node_index(q, n, "q")
        if p == q:
            return 0.0
        x_p = self._potentials(p)
        x_q = self._potentials(q)
        value = (x_p[p] - x_p[q]) - (x_q[p] - x_q[q])
        return float(max(value, 0.0))

    def resistances(self, pairs: Iterable[NodePair]) -> np.ndarray:
        """Exact resistances for an iterable of node pairs."""
        return np.array([self.resistance(p, q) for p, q in pairs], dtype=float)

    def edge_resistances(self, graph: Optional[Graph] = None) -> np.ndarray:
        """Exact resistances of every edge of ``graph`` (default: own graph)."""
        target = self._graph if graph is None else graph
        return self.resistances(target.edges())


class ApproxResistanceCalculator:
    """Krylov-subspace approximation of effective resistances (paper eq. (3)).

    The calculator embeds every node into ``R^m`` (``m = O(log N)``) such that
    the squared Euclidean distance between two node embeddings approximates
    their effective resistance; batch queries then reduce to vectorised row
    arithmetic.
    """

    def __init__(self, graph: Graph, order: Optional[int] = None, *, seed: SeedLike = None,
                 basis: Optional[KrylovBasis] = None) -> None:
        if graph.num_nodes < 2:
            raise ValueError("effective resistance needs at least two nodes")
        self._graph = graph
        self._order_request = order
        self._seed = seed
        self._basis = basis if basis is not None else build_krylov_basis(graph, order, seed=seed)
        self._embedding = krylov_resistance_matrix(self._basis)

    def refresh(self) -> None:
        """Rebuild the Krylov basis and embedding after graph mutations.

        For callers keeping the calculator alive across mutations; see
        :meth:`ExactResistanceCalculator.refresh`.
        """
        self._basis = build_krylov_basis(self._graph, self._order_request, seed=self._seed)
        self._embedding = krylov_resistance_matrix(self._basis)

    @property
    def basis(self) -> KrylovBasis:
        """The underlying Krylov basis."""
        return self._basis

    @property
    def embedding(self) -> np.ndarray:
        """The ``(n, m)`` node embedding matrix."""
        return self._embedding

    @property
    def order(self) -> int:
        """Krylov order actually used."""
        return int(self._embedding.shape[1])

    def resistance(self, p: int, q: int) -> float:
        """Approximate effective resistance between ``p`` and ``q``."""
        n = self._graph.num_nodes
        p = check_node_index(p, n, "p")
        q = check_node_index(q, n, "q")
        if p == q:
            return 0.0
        diff = self._embedding[p] - self._embedding[q]
        return float(diff @ diff)

    def resistances(self, pairs: Iterable[NodePair]) -> np.ndarray:
        """Approximate resistances for many pairs at once (vectorised)."""
        pair_list = list(pairs)
        if not pair_list:
            return np.zeros(0)
        ps = np.fromiter((p for p, _ in pair_list), dtype=np.int64, count=len(pair_list))
        qs = np.fromiter((q for _, q in pair_list), dtype=np.int64, count=len(pair_list))
        diff = self._embedding[ps] - self._embedding[qs]
        return np.einsum("ij,ij->i", diff, diff)

    def edge_resistances(self, graph: Optional[Graph] = None) -> np.ndarray:
        """Approximate resistances of every edge of ``graph`` (default: own graph)."""
        target = self._graph if graph is None else graph
        return self.resistances(target.edges())


class JLResistanceCalculator:
    """Johnson–Lindenstrauss resistance embedding via Laplacian solves.

    Following Spielman & Srivastava, the effective resistance satisfies
    ``R(p, q) = ||W^{1/2} B L^+ b_pq||²`` where ``B`` is the incidence matrix
    and ``W`` the edge-weight diagonal.  Projecting the ``|E|``-dimensional
    embedding onto ``k = O(log N)`` random ±1 directions preserves all pairwise
    distances within ``1 ± ε``, so each node receives a ``k``-dimensional
    vector whose squared Euclidean distances are accurate resistance
    estimates.  Building the embedding costs ``k`` Laplacian solves — cheap on
    the near-tree sparsifiers the inGRASS setup phase works on — and this is
    the high-accuracy alternative to the solver-free Krylov surrogate.
    """

    def __init__(self, graph: Graph, dimensions: Optional[int] = None, *, seed: SeedLike = None) -> None:
        if graph.num_nodes < 2:
            raise ValueError("effective resistance needs at least two nodes")
        self._graph = graph
        self._dimensions_request = dimensions
        self._seed = seed
        self._embedding = self._build()

    def _build(self) -> np.ndarray:
        from repro.utils.rng import as_rng

        graph = self._graph
        rng = as_rng(self._seed)
        n = graph.num_nodes
        dimensions = self._dimensions_request
        if dimensions is None:
            dimensions = max(8, 4 * int(np.ceil(np.log2(max(n, 2)))))
        dimensions = min(dimensions, max(2, graph.num_edges))
        solver = GroundedSolver.from_graph(graph)
        incidence = graph.incidence_matrix()
        _, _, weights = graph.edge_arrays()
        sqrt_weights = np.sqrt(weights)
        # Random ±1/sqrt(k) projection applied to the weighted incidence matrix.
        projection = rng.choice([-1.0, 1.0], size=(dimensions, graph.num_edges)) / np.sqrt(dimensions)
        projected_incidence = (projection * sqrt_weights[np.newaxis, :]) @ incidence  # (k, n) dense
        embedding = np.empty((n, dimensions))
        for row in range(dimensions):
            embedding[:, row] = solver.solve(np.asarray(projected_incidence[row]).ravel())
        return embedding

    def refresh(self) -> None:
        """Re-run the JL solves against the mutated graph.

        For callers keeping the calculator alive across mutations; see
        :meth:`ExactResistanceCalculator.refresh`.
        """
        self._embedding = self._build()

    @property
    def embedding(self) -> np.ndarray:
        """The ``(n, k)`` node embedding matrix."""
        return self._embedding

    @property
    def order(self) -> int:
        """Embedding dimension ``k``."""
        return int(self._embedding.shape[1])

    def resistance(self, p: int, q: int) -> float:
        """Approximate effective resistance between ``p`` and ``q``."""
        n = self._graph.num_nodes
        p = check_node_index(p, n, "p")
        q = check_node_index(q, n, "q")
        if p == q:
            return 0.0
        diff = self._embedding[p] - self._embedding[q]
        return float(diff @ diff)

    def resistances(self, pairs: Iterable[NodePair]) -> np.ndarray:
        """Approximate resistances for many pairs at once (vectorised)."""
        pair_list = list(pairs)
        if not pair_list:
            return np.zeros(0)
        ps = np.fromiter((p for p, _ in pair_list), dtype=np.int64, count=len(pair_list))
        qs = np.fromiter((q for _, q in pair_list), dtype=np.int64, count=len(pair_list))
        diff = self._embedding[ps] - self._embedding[qs]
        return np.einsum("ij,ij->i", diff, diff)

    def edge_resistances(self, graph: Optional[Graph] = None) -> np.ndarray:
        """Approximate resistances of every edge of ``graph`` (default: own graph)."""
        target = self._graph if graph is None else graph
        return self.resistances(target.edges())


def make_resistance_calculator(graph: Graph, method: str = "jl", *, order: Optional[int] = None,
                               seed: SeedLike = None):
    """Factory for resistance calculators.

    Parameters
    ----------
    method:
        ``"exact"`` (direct solves per pair), ``"jl"`` (Johnson–Lindenstrauss
        embedding, accurate, needs ``O(log N)`` solves) or ``"krylov"``
        (solver-free surrogate of the paper's equation (3)).
    order:
        Embedding dimension / Krylov order; ``None`` picks ``O(log N)``.
    """
    if method == "exact":
        return ExactResistanceCalculator(graph)
    if method == "jl":
        return JLResistanceCalculator(graph, dimensions=order, seed=seed)
    if method == "krylov":
        return ApproxResistanceCalculator(graph, order=order, seed=seed)
    raise ValueError(f"unknown resistance method {method!r}; expected 'exact', 'jl' or 'krylov'")


def effective_resistance(graph: Graph, p: int, q: int) -> float:
    """One-shot exact effective resistance (convenience wrapper)."""
    return ExactResistanceCalculator(graph).resistance(p, q)


def edge_effective_resistances(graph: Graph, *, exact: bool = True, order: Optional[int] = None,
                               seed: SeedLike = None) -> np.ndarray:
    """Effective resistance of every edge of ``graph``.

    ``exact=True`` uses direct solves; ``exact=False`` uses the Krylov
    approximation (the choice the inGRASS setup phase makes for scalability).
    Values align with :meth:`Graph.edge_arrays` order.
    """
    if exact:
        return ExactResistanceCalculator(graph).edge_resistances()
    return ApproxResistanceCalculator(graph, order=order, seed=seed).edge_resistances()


def spectral_distortions(graph: Graph, pairs_with_weights: Sequence[Tuple[int, int, float]],
                         *, exact: bool = True, order: Optional[int] = None,
                         seed: SeedLike = None) -> np.ndarray:
    """Spectral distortion ``w * R(p, q)`` for candidate edges.

    This is the edge-importance metric of the spectral-perturbation
    sparsification line (GRASS, SF-GRASS, inGRASS): footnote 1 of the paper
    defines the spectral distortion of an edge as the product of its weight
    and the effective resistance between its end nodes *in the sparsifier*.
    """
    pairs = [(p, q) for p, q, _ in pairs_with_weights]
    weights = np.array([w for _, _, w in pairs_with_weights], dtype=float)
    if exact:
        resistances = ExactResistanceCalculator(graph).resistances(pairs)
    else:
        resistances = ApproxResistanceCalculator(graph, order=order, seed=seed).resistances(pairs)
    return weights * resistances


def tree_path_resistances(tree: Graph, pairs: Iterable[NodePair]) -> np.ndarray:
    """Resistance of tree paths: sum of ``1/w`` along the unique tree path.

    For a spanning tree the effective resistance between two nodes equals the
    series resistance of the unique path connecting them; this is the quantity
    GRASS-style methods use to rank off-tree edges (the "stretch").  The
    implementation roots the tree once and answers pair queries through
    lowest-common-ancestor style prefix sums.
    """
    n = tree.num_nodes
    if n == 0:
        return np.zeros(0)
    # Root the tree at node 0 with a BFS, recording parent and prefix resistance.
    parent = np.full(n, -1, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int64)
    prefix = np.zeros(n, dtype=float)
    visited = np.zeros(n, dtype=bool)
    from collections import deque

    queue = deque([0])
    visited[0] = True
    order: List[int] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for neighbor, weight in tree.neighbors(node).items():
            if not visited[neighbor]:
                visited[neighbor] = True
                parent[neighbor] = node
                depth[neighbor] = depth[node] + 1
                prefix[neighbor] = prefix[node] + 1.0 / weight
                queue.append(neighbor)
    if not visited.all():
        raise ValueError("tree_path_resistances requires a connected (spanning) tree")

    def lca_resistance(p: int, q: int) -> float:
        # Walk the deeper node up until depths match, then walk both up.
        resistance = 0.0
        a, b = p, q
        while depth[a] > depth[b]:
            a = parent[a]
        while depth[b] > depth[a]:
            b = parent[b]
        while a != b:
            a = parent[a]
            b = parent[b]
        ancestor = a
        return prefix[p] + prefix[q] - 2.0 * prefix[ancestor]

    return np.array([0.0 if p == q else lca_resistance(int(p), int(q)) for p, q in pairs], dtype=float)
