"""Laplacian quadratic forms and empirical spectral-similarity measures.

Equation (1) of the paper defines spectral similarity through the ratio of
Laplacian quadratic forms ``x^T L_G x / x^T L_H x`` over all test vectors.
These helpers evaluate the ratio on explicit vector families (random probes,
Fiedler-like vectors) and provide the Monte-Carlo similarity check used by the
integration tests as a cheaper cross-validation of the condition-number
estimator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, as_rng


def quadratic_form(graph: Graph, x: np.ndarray) -> float:
    """Return ``x^T L_G x`` — the energy of ``x`` over the graph's edges.

    Computed edge-wise as ``Σ w_uv (x_u - x_v)^2`` which is numerically safer
    than forming ``L`` for a single evaluation.
    """
    x = np.asarray(x, dtype=float)
    if x.shape[0] != graph.num_nodes:
        raise ValueError(f"vector has length {x.shape[0]}, expected {graph.num_nodes}")
    total = 0.0
    for u, v, w in graph.weighted_edges():
        diff = x[u] - x[v]
        total += w * diff * diff
    return float(total)


def quadratic_form_matrix(graph: Graph, x: np.ndarray) -> np.ndarray:
    """Vectorised quadratic forms for each column of ``x`` using the Laplacian."""
    x = np.atleast_2d(np.asarray(x, dtype=float))
    if x.shape[0] != graph.num_nodes:
        x = x.T
    laplacian = graph.laplacian_matrix()
    return np.einsum("ij,ij->j", x, laplacian @ x)


@dataclass
class SimilaritySample:
    """Empirical spectral-similarity statistics over random probe vectors."""

    ratios: np.ndarray

    @property
    def max_ratio(self) -> float:
        return float(self.ratios.max())

    @property
    def min_ratio(self) -> float:
        return float(self.ratios.min())

    @property
    def empirical_condition_number(self) -> float:
        """max/min ratio over the probes — a lower bound on the true κ."""
        if self.min_ratio <= 0:
            return float("inf")
        return self.max_ratio / self.min_ratio


def sample_similarity(graph: Graph, sparsifier: Graph, num_probes: int = 32,
                      *, seed: SeedLike = None, use_smooth_probes: bool = True) -> SimilaritySample:
    """Sample the quadratic-form ratio ``x^T L_G x / x^T L_H x`` over probes.

    Parameters
    ----------
    num_probes:
        Number of random probe vectors.
    use_smooth_probes:
        Mix in smoothed probes (a few Laplacian-smoothing sweeps applied to
        random vectors).  Smooth vectors excite the low end of the spectrum,
        where sparsifiers differ most, giving a tighter empirical lower bound
        on κ.
    """
    if graph.num_nodes != sparsifier.num_nodes:
        raise ValueError("graph and sparsifier must share the same node set")
    rng = as_rng(seed)
    n = graph.num_nodes
    lap_g = graph.laplacian_matrix()
    lap_h = sparsifier.laplacian_matrix()
    probes = rng.standard_normal((n, num_probes))
    probes -= probes.mean(axis=0, keepdims=True)
    if use_smooth_probes and num_probes >= 2:
        half = num_probes // 2
        smooth = probes[:, :half].copy()
        degrees = np.maximum(np.asarray(lap_g.diagonal(), dtype=float), 1e-12)
        for _ in range(8):
            smooth = smooth - (lap_g @ smooth) / (2.0 * degrees[:, None])
            smooth -= smooth.mean(axis=0, keepdims=True)
        probes[:, :half] = smooth
    energy_g = np.einsum("ij,ij->j", probes, lap_g @ probes)
    energy_h = np.einsum("ij,ij->j", probes, lap_h @ probes)
    valid = energy_h > 1e-300
    ratios = np.where(valid, energy_g / np.maximum(energy_h, 1e-300), np.inf)
    return SimilaritySample(ratios=ratios)


def rayleigh_quotient(graph: Graph, x: np.ndarray) -> float:
    """Return ``x^T L x / x^T x`` for a zero-mean version of ``x``."""
    x = np.asarray(x, dtype=float)
    x = x - x.mean()
    denom = float(x @ x)
    if denom == 0.0:
        return 0.0
    return quadratic_form(graph, x) / denom
