"""Per-endpoint observability for the HTTP front end.

Latency is part of the serving contract (the ``serve-latency`` CI gate
enforces p50/p99 under churn), so the server measures itself from the start
rather than bolting counters on later.  The model is deliberately
Prometheus-shaped without the dependency:

* one :class:`LatencyHistogram` per endpoint — fixed log-spaced bucket
  bounds, cumulative counts, exact count/sum/max, and percentile *estimates*
  read off the bucket upper bounds (the standard histogram-quantile
  approximation: cheap, mergeable, and bounded error set by the bucket
  resolution);
* per-endpoint status-code counters;
* point-in-time gauges (ingest-queue depth, epoch) merged in by the app at
  scrape time.

Everything is exposed as one JSON document at ``GET /metrics`` and reused
verbatim by :mod:`repro.bench.serve_latency`, so the gate and the live
server report through the same schema.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

#: Histogram bucket upper bounds in milliseconds (log-spaced, +inf implied).
DEFAULT_BUCKET_BOUNDS_MS: Sequence[float] = (
    0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimates.

    Not thread-safe on its own — :class:`ServerMetrics` serialises access.
    """

    def __init__(self, bounds_ms: Sequence[float] = DEFAULT_BUCKET_BOUNDS_MS) -> None:
        self._bounds_ms: List[float] = sorted(float(b) for b in bounds_ms)
        self._counts: List[int] = [0] * (len(self._bounds_ms) + 1)  # +1: overflow
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        ms = float(seconds) * 1e3
        self.count += 1
        self.sum_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms
        for index, bound in enumerate(self._bounds_ms):
            if ms <= bound:
                self._counts[index] += 1
                return
        self._counts[-1] += 1

    def quantile_ms(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile in ms (bucket upper bound; ``None`` if empty).

        The overflow bucket reports the exact observed maximum — better than
        pretending +inf.
        """
        if self.count == 0:
            return None
        rank = q * self.count
        seen = 0
        for index, bound in enumerate(self._bounds_ms):
            seen += self._counts[index]
            if seen >= rank:
                return bound
        return self.max_ms

    def snapshot(self) -> Dict:
        return {
            "count": self.count,
            "sum_ms": self.sum_ms,
            "mean_ms": self.sum_ms / self.count if self.count else None,
            "max_ms": self.max_ms,
            "p50_ms": self.quantile_ms(0.50),
            "p99_ms": self.quantile_ms(0.99),
            "buckets_ms": {repr(bound): self._counts[index]
                           for index, bound in enumerate(self._bounds_ms)},
            "overflow": self._counts[-1],
        }


class ServerMetrics:
    """Thread-safe per-endpoint latency + status accounting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latency: Dict[str, LatencyHistogram] = {}
        self._statuses: Dict[str, Dict[str, int]] = {}
        self._rejected_writes = 0
        self._timeouts = 0

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one handled request (called once per response)."""
        with self._lock:
            histogram = self._latency.get(endpoint)
            if histogram is None:
                histogram = self._latency[endpoint] = LatencyHistogram()
            histogram.observe(seconds)
            statuses = self._statuses.setdefault(endpoint, {})
            key = str(int(status))
            statuses[key] = statuses.get(key, 0) + 1
            if status == 429:
                self._rejected_writes += 1
            elif status in (408, 504):
                self._timeouts += 1

    @property
    def rejected_writes(self) -> int:
        with self._lock:
            return self._rejected_writes

    def snapshot(self, **gauges) -> Dict:
        """JSON-ready scrape; keyword arguments land under ``"gauges"``."""
        with self._lock:
            endpoints = {
                name: {"latency": histogram.snapshot(),
                       "statuses": dict(self._statuses.get(name, {}))}
                for name, histogram in sorted(self._latency.items())
            }
            return {
                "endpoints": endpoints,
                "requests_total": sum(h.count for h in self._latency.values()),
                "rejected_writes_total": self._rejected_writes,
                "timeouts_total": self._timeouts,
                "gauges": dict(gauges),
            }
