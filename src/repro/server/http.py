"""Minimal HTTP/1.1 wire layer for the asyncio serving front end.

The container this project targets ships **no** third-party web stack — no
FastAPI, no aiohttp, no uvicorn — so the network front end speaks HTTP/1.1
directly over :mod:`asyncio` streams.  This module is the wire half: a
strict, bounded request parser and a JSON response encoder.  Everything
application-level (routing, the ingest queue, metrics) lives in
:mod:`repro.server.app`.

Scope is deliberately small and explicit:

* request line + headers + ``Content-Length`` bodies only — ``chunked``
  transfer encoding is rejected with ``501`` (no endpoint needs streaming
  request bodies);
* hard limits on header block and body size, enforced *before* buffering
  (an oversized body is never read into memory);
* ``keep-alive`` by default (HTTP/1.1 semantics), ``Connection: close``
  honoured both ways;
* every parse failure raises :class:`ProtocolError` carrying the exact
  status code the connection handler should answer with before closing.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

#: Reason phrases for every status the server emits.
REASONS: Dict[int, str] = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_CRLF = b"\r\n"
_HEADER_END = b"\r\n\r\n"


class ProtocolError(Exception):
    """A malformed or over-limit request; ``status`` is the HTTP answer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> dict:
        """Decode the body as a JSON object; ``{}`` for an empty body.

        Raises :class:`ProtocolError` (400) on undecodable bytes, invalid
        JSON, or a non-object top level — every endpoint takes an object.
        """
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        return payload


async def read_request(reader: asyncio.StreamReader, *,
                       max_header_bytes: int = 16384,
                       max_body_bytes: int = 8 * 1024 * 1024) -> Optional[HttpRequest]:
    """Read one request off ``reader``; ``None`` on clean EOF between requests.

    The caller must have created the stream with ``limit >= max_header_bytes``
    (the asyncio stream limit is what bounds the header scan); the body limit
    is checked against ``Content-Length`` before a single body byte is read.
    """
    try:
        blob = await reader.readuntil(_HEADER_END)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF: the peer closed an idle connection
        raise ProtocolError(400, "connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(431, f"header block exceeds {max_header_bytes} bytes") from exc
    if len(blob) > max_header_bytes:
        raise ProtocolError(431, f"header block exceeds {max_header_bytes} bytes")

    try:
        head = blob[:-len(_HEADER_END)].decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 never fails
        raise ProtocolError(400, "undecodable request head") from exc
    lines = head.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError(501, "chunked request bodies are not supported")

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise ProtocolError(400, f"invalid Content-Length: {length_header!r}") from exc
        if length < 0:
            raise ProtocolError(400, f"invalid Content-Length: {length_header!r}")
        if length > max_body_bytes:
            raise ProtocolError(413, f"body of {length} bytes exceeds the "
                                     f"{max_body_bytes}-byte limit")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise ProtocolError(400, "connection closed mid-body") from exc

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return HttpRequest(method=method.upper(), path=split.path or "/",
                       query=query, headers=headers, body=body)


def encode_response(status: int, payload: Optional[dict] = None, *,
                    extra_headers: Optional[Dict[str, str]] = None,
                    keep_alive: bool = True) -> bytes:
    """Encode one JSON response (status line + headers + body) as bytes."""
    body = b""
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             "Content-Type: application/json",
             f"Content-Length: {len(body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def error_payload(status: int, message: str) -> Tuple[int, dict]:
    """The uniform error body every failure path answers with."""
    return status, {"error": message, "status": status}
