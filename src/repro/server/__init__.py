"""Network front end: stdlib-asyncio HTTP serving over :class:`SparsifierService`.

The package is dependency-free by design (the container has no third-party
web stack); see :mod:`repro.server.app` for the architecture and the
``repro[serve]`` extra for the declared adapter seam.

Public surface (re-exported by :mod:`repro.api`)::

    from repro.api import serve, connect, ServerConfig

    serve(service, ServerConfig(port=8752))        # blocking, SIGTERM-graceful
    client = connect(port=8752)
    client.update(insertions=[(0, 5, 1.0)])
    client.resistance(0, 5)
"""

from repro.server.app import (
    ADAPTER_BACKENDS,
    ServerBackendUnavailableError,
    ServerConfig,
    SparsifierHTTPServer,
    resolve_backend,
    serve,
)
from repro.server.client import ServerRequestError, SparsifierClient, connect
from repro.server.http import HttpRequest, ProtocolError
from repro.server.metrics import LatencyHistogram, ServerMetrics

__all__ = [
    "ADAPTER_BACKENDS",
    "HttpRequest",
    "LatencyHistogram",
    "ProtocolError",
    "ServerBackendUnavailableError",
    "ServerConfig",
    "ServerMetrics",
    "ServerRequestError",
    "SparsifierClient",
    "SparsifierHTTPServer",
    "connect",
    "resolve_backend",
    "serve",
]
