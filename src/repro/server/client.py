"""Blocking HTTP client for the sparsifier server — stdlib only.

:func:`repro.api.connect` returns a :class:`SparsifierClient`: a thin,
dependency-free wrapper over :class:`http.client.HTTPConnection` with one
method per endpoint and the server's JSON wire schema decoded for you.
It is what the latency gate, the CI smoke job and the tests drive the
server with, and the reference for writing a client in any other stack.

Error contract: non-2xx responses raise :class:`ServerRequestError` carrying
``status`` and the decoded error ``payload`` — except 202 (write accepted
but still queued), which is a *success* shape callers must be able to
observe without exception handling.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from http.client import HTTPConnection


class ServerRequestError(RuntimeError):
    """A non-success HTTP answer from the server."""

    def __init__(self, status: int, payload: dict) -> None:
        message = payload.get("error", "request failed") if isinstance(payload, dict) else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)
        self.payload = payload

    @property
    def retry_after(self) -> Optional[float]:
        """Backpressure hint on 429 answers (seconds), else ``None``."""
        if isinstance(self.payload, dict) and "retry_after" in self.payload:
            return float(self.payload["retry_after"])
        return None


class SparsifierClient:
    """One keep-alive connection to a :class:`SparsifierHTTPServer`.

    Not thread-safe (one underlying socket); give each thread its own client.
    Usable as a context manager.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8752, *,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._conn: Optional[HTTPConnection] = None

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "SparsifierClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str,
                payload: Optional[dict] = None) -> Tuple[int, dict]:
        """One round trip; returns ``(status, decoded_json)`` without raising.

        Retry discipline: a connection error is retried once on a fresh
        socket **only when the server cannot have acted on the request** —
        the send itself failed (a stale keep-alive socket refuses before a
        complete request reaches the server), or the method is idempotent
        (GET/HEAD).  A timeout or lost response *after* a non-idempotent
        POST went out is never retried: the server may already have applied
        the write, and silently re-sending it would double-apply the batch
        and advance the epoch twice, breaking bit-exact parity.
        """
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        idempotent = method.upper() in ("GET", "HEAD")
        for attempt in (0, 1):
            conn = self._connection()
            sent = False
            try:
                conn.request(method, path, body=body, headers=headers)
                sent = True
                response = conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, OSError) as exc:
                # Always drop the connection — a half-used HTTPConnection
                # would wedge every subsequent call in CannotSendRequest
                # instead of surfacing a clean, retryable OSError.
                self.close()
                # ConnectionError (never its OSError siblings like
                # socket.timeout) at send time is the stale-keep-alive
                # signature; anything else, or any failure after the POST
                # went out, surfaces to the caller to resolve via /epoch.
                safe_to_resend = idempotent or (
                    not sent and isinstance(exc, ConnectionError))
                if attempt or not safe_to_resend:
                    raise
        if response.getheader("Connection", "").lower() == "close":
            self.close()
        decoded = json.loads(raw.decode("utf-8")) if raw else {}
        return response.status, decoded

    def _call(self, method: str, path: str,
              payload: Optional[dict] = None) -> dict:
        status, decoded = self.request(method, path, payload)
        if status >= 400:
            raise ServerRequestError(status, decoded)
        return decoded

    # ------------------------------------------------------------------ #
    # Read endpoints
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        return self._call("GET", "/health")

    def epoch(self) -> dict:
        return self._call("GET", "/epoch")

    def report(self, *, full: bool = False, version: Optional[int] = None) -> dict:
        query = []
        if full:
            query.append("full=1")
        if version is not None:
            query.append(f"version={int(version)}")
        path = "/report" + ("?" + "&".join(query) if query else "")
        return self._call("GET", path)

    def metrics(self) -> dict:
        return self._call("GET", "/metrics")

    def edges(self, *, on: str = "sparsifier",
              version: Optional[int] = None) -> dict:
        path = f"/edges?on={on}"
        if version is not None:
            path += f"&version={int(version)}"
        return self._call("GET", path)

    def resistance(self, u: int, v: int, *, on: str = "sparsifier",
                   version: Optional[int] = None) -> dict:
        path = "/resistance" + (f"?version={int(version)}" if version is not None else "")
        return self._call("POST", path, {"u": int(u), "v": int(v), "on": on})

    def resistance_many(self, pairs: Sequence[Tuple[int, int]], *,
                        on: str = "sparsifier") -> dict:
        return self._call("POST", "/resistance",
                          {"pairs": [[int(u), int(v)] for u, v in pairs], "on": on})

    def solve(self, b: Sequence[float], *, preconditioned: bool = True) -> dict:
        return self._call("POST", "/solve",
                          {"b": [float(x) for x in b], "preconditioned": preconditioned})

    # ------------------------------------------------------------------ #
    # Write endpoints
    # ------------------------------------------------------------------ #
    def update(self, *, insertions: Sequence[Tuple[int, int, float]] = (),
               deletions: Sequence[Tuple[int, int]] = (),
               weight_changes: Sequence[Tuple[int, int, float]] = ()) -> dict:
        payload: Dict[str, List] = {}
        if insertions:
            payload["insertions"] = [[int(u), int(v), float(w)] for u, v, w in insertions]
        if deletions:
            payload["deletions"] = [[int(u), int(v)] for u, v in deletions]
        if weight_changes:
            payload["weight_changes"] = [[int(u), int(v), float(d)]
                                         for u, v, d in weight_changes]
        return self._call("POST", "/update", payload)

    def update_batch(self, batch) -> dict:
        """Submit a :class:`~repro.streams.edge_stream.MixedBatch` as-is."""
        return self.update(insertions=batch.insertions, deletions=batch.deletions,
                           weight_changes=batch.weight_changes)

    def remove(self, deletions: Sequence[Tuple[int, int]]) -> dict:
        return self._call("POST", "/remove",
                          {"deletions": [[int(u), int(v)] for u, v in deletions]})

    def reweight(self, changes: Sequence[Tuple[int, int, float]]) -> dict:
        return self._call("POST", "/reweight",
                          {"changes": [[int(u), int(v), float(d)] for u, v, d in changes]})

    def checkpoint(self, path: Optional[str] = None) -> dict:
        payload = {"path": str(path)} if path is not None else {}
        return self._call("POST", "/checkpoint", payload)

    def shutdown(self) -> dict:
        """Request graceful shutdown (drain + checkpoint); closes the socket."""
        result = self._call("POST", "/shutdown")
        self.close()
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SparsifierClient(http://{self.host}:{self.port})"


def connect(host: str = "127.0.0.1", port: int = 8752, *,
            timeout: float = 30.0) -> SparsifierClient:
    """Open a client for a running sparsifier server (the public helper)."""
    return SparsifierClient(host, port, timeout=timeout)
