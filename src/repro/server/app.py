"""The asyncio HTTP application serving a :class:`~repro.service.SparsifierService`.

Architecture — one event loop, two disciplines:

* **reads never block the writer — or the loop.**  Every read endpoint runs
  on a worker thread (:func:`asyncio.to_thread`), pinning one
  :class:`~repro.snapshot.SparsifierSnapshot` there and answering entirely
  from it — a reader can never observe a torn epoch, no matter how the
  writer races.  Pinning happens *off* the event loop because the snapshot
  handout (like ``write_stats`` / ``retained_versions``) briefly takes the
  service lock, which the writer holds for the whole duration of a driver
  update: taking it on the loop would stall every connection — including
  ``/health`` and the ``/epoch`` polls that 202 answers direct clients to —
  for as long as one write runs.  Only ``/health`` answers directly on the
  loop, from lock-free fields, so liveness probes stay cheap under any load.

* **writes funnel through one bounded ingest queue.**  ``POST /update`` /
  ``/remove`` / ``/reweight`` / ``/checkpoint`` enqueue a job onto a single
  :class:`asyncio.Queue` drained by one writer task, which applies jobs
  strictly in arrival order through the service's write lock.  A full queue
  is answered immediately with ``429`` + ``Retry-After`` — explicit
  backpressure instead of unbounded buffering; a write that is queued but
  not applied within the request timeout is answered ``202`` (it *will*
  apply, in order — the connection just stops waiting).

Graceful shutdown (``POST /shutdown``, :meth:`SparsifierHTTPServer.stop`, or
SIGINT/SIGTERM under :func:`serve`) closes the listener, **drains every
queued write**, gives in-flight connections a grace period, and — when a
checkpoint directory is configured — saves a format-v1 checkpoint
(:mod:`repro.checkpoint`), so a restarted server resumes bit-exact at the
last applied epoch.

The stdlib-``asyncio`` backend is the only one implemented; third-party
adapters (FastAPI/uvicorn, aiohttp) are a declared seam behind the empty
``repro[serve]`` extra and fail loudly via
:class:`ServerBackendUnavailableError` until an adapter lands.
"""

from __future__ import annotations

import asyncio
import importlib.util
import threading
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from repro.server.http import (
    HttpRequest,
    ProtocolError,
    encode_response,
    error_payload,
    read_request,
)
from repro.server.metrics import ServerMetrics
from repro.service import SparsifierService
from repro.streams.edge_stream import MixedBatch
from repro.utils.logging import get_logger

logger = get_logger("server")

#: Adapter backends reserved by the ``repro[serve]`` extra seam: backend name
#: -> modules it would need.  None are implemented yet — requesting one gives
#: an actionable error instead of an AttributeError deep in a missing import.
ADAPTER_BACKENDS: Dict[str, Tuple[str, ...]] = {
    "fastapi": ("fastapi", "uvicorn"),
    "aiohttp": ("aiohttp",),
}

Handler = Callable[[HttpRequest], Awaitable[Tuple[int, dict, Optional[Dict[str, str]]]]]

_STOP = object()


class ServerBackendUnavailableError(RuntimeError):
    """A non-stdlib server backend was requested but cannot be used."""


def resolve_backend(name: str) -> str:
    """Validate a backend name; only ``"asyncio"`` resolves today.

    Mirrors :class:`repro.core.executors.ExecutorUnavailableError` semantics:
    a clear, actionable message the moment the unusable backend is *chosen*,
    not a confusing failure once traffic arrives.
    """
    if name == "asyncio":
        return name
    if name in ADAPTER_BACKENDS:
        needed = ADAPTER_BACKENDS[name]
        missing = [module for module in needed if importlib.util.find_spec(module) is None]
        if missing:
            raise ServerBackendUnavailableError(
                f"server backend {name!r} needs the optional dependencies "
                f"{', '.join(missing)} (declared by the `repro[serve]` extra, "
                "which is intentionally empty in this build); install them and "
                "an adapter, or use the dependency-free backend='asyncio'"
            )
        raise ServerBackendUnavailableError(
            f"server backend {name!r} is a declared adapter seam but no adapter "
            "is implemented yet; use backend='asyncio' (same endpoints, stdlib only)"
        )
    known = ", ".join(["asyncio"] + sorted(ADAPTER_BACKENDS))
    raise ValueError(f"unknown server backend {name!r}; known backends: {known}")


@dataclass
class ServerConfig:
    """Configuration of the HTTP front end (everything has a safe default)."""

    #: Bind address; use ``port=0`` to let the OS pick (tests, benchmarks).
    host: str = "127.0.0.1"
    port: int = 8752
    #: Serving backend; only ``"asyncio"`` is implemented (see ``[serve]`` extra).
    backend: str = "asyncio"
    #: Ingest-queue bound: writes beyond this are answered 429 + Retry-After.
    queue_bound: int = 64
    #: Per-request budget: reads answer 504, writes answer 202 (still queued).
    request_timeout: float = 30.0
    #: Seconds an idle keep-alive connection is held open.
    keep_alive_timeout: float = 30.0
    #: Parser limits (see :mod:`repro.server.http`).
    max_header_bytes: int = 16384
    max_body_bytes: int = 8 * 1024 * 1024
    #: Saved to on graceful shutdown (and by ``POST /checkpoint`` with no
    #: explicit path) when set; enables bit-exact resume after restart.
    checkpoint_dir: Optional[str] = None
    checkpoint_on_shutdown: bool = True
    #: Grace period for in-flight connections after the write queue drains.
    shutdown_grace: float = 5.0
    #: ``Retry-After`` seconds advertised on 429 responses.
    retry_after: float = 1.0

    def __post_init__(self) -> None:
        resolve_backend(self.backend)
        if self.queue_bound < 1:
            raise ValueError("queue_bound must be at least 1")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")


def _int_field(payload: dict, key: str) -> int:
    value = payload.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(400, f"field {key!r} must be an integer")
    return value


def _event_rows(payload: dict, key: str, arity: int, kinds: str) -> List[tuple]:
    """Decode one event list (``[[u, v, ...], ...]``) with strict validation."""
    raw = payload.get(key, [])
    if not isinstance(raw, list):
        raise ProtocolError(400, f"field {key!r} must be a list of {kinds}")
    rows: List[tuple] = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or len(item) != arity:
            raise ProtocolError(400, f"every {key!r} entry must be {kinds}")
        try:
            u, v = int(item[0]), int(item[1])
            if arity == 2:
                rows.append((u, v))
            else:
                rows.append((u, v, float(item[2])))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(400, f"invalid {key!r} entry {item!r}: {exc}") from exc
    return rows


def batch_from_payload(payload: dict) -> MixedBatch:
    """Decode the ``POST /update`` wire schema into a :class:`MixedBatch`."""
    unknown = set(payload) - {"insertions", "deletions", "weight_changes"}
    if unknown:
        raise ProtocolError(400, f"unknown update fields: {sorted(unknown)}")
    batch = MixedBatch(
        insertions=_event_rows(payload, "insertions", 3, "[u, v, weight]"),
        deletions=_event_rows(payload, "deletions", 2, "[u, v]"),
        weight_changes=_event_rows(payload, "weight_changes", 3, "[u, v, delta]"),
    )
    if not batch:
        raise ProtocolError(400, "update batch holds no events")
    return batch


@dataclass
class _Route:
    method: str
    path: str
    handler: Handler = field(repr=False)


class SparsifierHTTPServer:
    """The stdlib-asyncio HTTP/1.1 front end over one :class:`SparsifierService`.

    Lifecycle: either :meth:`serve_forever` (blocking, current thread — what
    :func:`serve` and the ``repro serve`` CLI use) or :meth:`start` /
    :meth:`stop` (background thread with its own event loop — what tests and
    the latency gate use).  ``config.port=0`` binds an ephemeral port,
    published as :attr:`port` once the listener is up.
    """

    def __init__(self, service: SparsifierService,
                 config: Optional[ServerConfig] = None) -> None:
        self._service = service
        self._config = config if config is not None else ServerConfig()
        resolve_backend(self._config.backend)
        self.metrics = ServerMetrics()
        self.port: Optional[int] = None

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._finished = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self._queue: Optional[asyncio.Queue] = None
        self._draining = False
        self._connections: set = set()

        self._routes: Dict[str, Dict[str, Handler]] = {}
        for route in self._build_routes():
            self._routes.setdefault(route.path, {})[route.method] = route.handler

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def service(self) -> SparsifierService:
        return self._service

    @property
    def config(self) -> ServerConfig:
        return self._config

    def serve_forever(self) -> None:
        """Run the server on the calling thread until shutdown is requested."""
        asyncio.run(self._main())

    def start(self, *, timeout: float = 10.0) -> "SparsifierHTTPServer":
        """Run the server on a background thread; returns once it is bound."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._thread_main,
                                        name="repro-http-server", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("server did not start within the timeout")
        if self._startup_error is not None:
            self._thread.join(timeout=timeout)
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    def stop(self, *, timeout: float = 30.0) -> None:
        """Request graceful shutdown (drain + checkpoint) and wait for it."""
        self.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        else:
            self._finished.wait(timeout)

    def request_shutdown(self) -> None:
        """Thread-safe, idempotent shutdown trigger (does not wait)."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            def _set() -> None:
                if self._shutdown_event is not None:
                    self._shutdown_event.set()
            try:
                loop.call_soon_threadsafe(_set)
            except RuntimeError:  # loop already closed: nothing left to stop
                pass

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - surfaced via start()
            self._startup_error = exc
            self._started.set()
        finally:
            self._finished.set()

    # ------------------------------------------------------------------ #
    # Event-loop main
    # ------------------------------------------------------------------ #
    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._queue = asyncio.Queue(maxsize=self._config.queue_bound)
        self._draining = False
        writer_task = asyncio.create_task(self._writer_loop())

        server = await asyncio.start_server(
            self._on_connection, self._config.host, self._config.port,
            limit=max(self._config.max_header_bytes, 65536))
        self.port = server.sockets[0].getsockname()[1]
        logger.info("serving on http://%s:%d (queue bound %d)",
                    self._config.host, self.port, self._config.queue_bound)
        self._started.set()

        try:
            await self._shutdown_event.wait()
        finally:
            # 1. stop accepting new connections.
            server.close()
            await server.wait_closed()
            # 2. stop accepting new writes, drain every queued one.
            self._draining = True
            await self._queue.put((_STOP, None, None))
            await writer_task
            # 3. grace period for in-flight connections, then cut them.
            deadline = time.monotonic() + self._config.shutdown_grace
            while self._connections and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(*self._connections, return_exceptions=True)
            # 4. persist, so a restart resumes at the last applied epoch.
            if self._config.checkpoint_dir and self._config.checkpoint_on_shutdown:
                await asyncio.to_thread(self._service.save_checkpoint,
                                        self._config.checkpoint_dir)
                logger.info("shutdown checkpoint saved to %s (epoch %d)",
                            self._config.checkpoint_dir, self._service.latest_version)
            logger.info("server stopped at epoch %d after %d applied batches",
                        self._service.latest_version, self._service.applied_batches)

    async def _writer_loop(self) -> None:
        """The single writer: applies queued jobs strictly in arrival order."""
        assert self._queue is not None
        while True:
            job, future, _label = await self._queue.get()
            try:
                if job is _STOP:
                    return
                try:
                    result = await asyncio.to_thread(job)
                except BaseException as exc:
                    # Always delivered through the future: either the handler
                    # is still awaiting it, or the abandoned-write callback
                    # (attached when the 202 timeout fired) consumes and logs
                    # it — never an unretrieved-exception warning from asyncio.
                    if future is not None and not future.done():
                        future.set_exception(exc)
                    else:  # pragma: no cover - future cancelled externally
                        logger.warning("queued write failed after caller left: %s", exc)
                else:
                    if future is not None and not future.done():
                        future.set_result(result)
            finally:
                self._queue.task_done()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        task = asyncio.ensure_future(self._handle_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(reader,
                                     max_header_bytes=self._config.max_header_bytes,
                                     max_body_bytes=self._config.max_body_bytes),
                        timeout=self._config.keep_alive_timeout)
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection: close quietly
                except ProtocolError as exc:
                    status, payload = error_payload(exc.status, exc.message)
                    self.metrics.observe("protocol-error", status, 0.0)
                    writer.write(encode_response(status, payload, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break  # peer closed
                status, payload, headers = await self._dispatch(request)
                keep_alive = request.keep_alive and not self._draining
                writer.write(encode_response(status, payload,
                                             extra_headers=headers,
                                             keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, request: HttpRequest) -> Tuple[int, dict, Optional[Dict[str, str]]]:
        methods = self._routes.get(request.path)
        if methods is None:
            label = "unmatched"
            status, payload = error_payload(404, f"unknown endpoint {request.path}")
            self.metrics.observe(label, status, 0.0)
            return status, payload, None
        handler = methods.get(request.method)
        label = f"{request.method} {request.path}"
        if handler is None:
            allowed = ", ".join(sorted(methods))
            status, payload = error_payload(
                405, f"{request.method} not allowed on {request.path} (allowed: {allowed})")
            self.metrics.observe(label, status, 0.0)
            return status, payload, {"Allow": allowed}
        begin = time.perf_counter()
        try:
            status, payload, headers = await handler(request)
        except ProtocolError as exc:
            status, payload = error_payload(exc.status, exc.message)
            headers = None
        except Exception as exc:  # noqa: BLE001 - the 500 boundary
            logger.exception("handler for %s failed", label)
            status, payload = error_payload(500, f"internal error: {exc}")
            headers = None
        self.metrics.observe(label, status, time.perf_counter() - begin)
        return status, payload, headers

    # ------------------------------------------------------------------ #
    # Shared handler machinery
    # ------------------------------------------------------------------ #
    async def _run_query(self, fn: Callable[[], dict]) -> Tuple[int, dict, None]:
        """Run one read query on a worker thread under the request timeout."""
        try:
            payload = await asyncio.wait_for(asyncio.to_thread(fn),
                                             timeout=self._config.request_timeout)
        except asyncio.TimeoutError:
            status, payload = error_payload(
                504, f"query exceeded the {self._config.request_timeout:g}s budget")
            return status, payload, None
        return 200, payload, None

    async def _enqueue_write(self, label: str,
                             job: Callable[[], dict]) -> Tuple[int, dict, Optional[Dict[str, str]]]:
        """Funnel one write through the bounded ingest queue."""
        assert self._queue is not None and self._loop is not None
        if self._draining:
            status, payload = error_payload(503, "server is shutting down")
            return status, payload, None
        future: asyncio.Future = self._loop.create_future()
        try:
            self._queue.put_nowait((job, future, label))
        except asyncio.QueueFull:
            status, payload = error_payload(
                429, f"ingest queue full ({self._config.queue_bound} pending writes)")
            payload["retry_after"] = self._config.retry_after
            payload["queue_depth"] = self._queue.qsize()
            return status, payload, {"Retry-After": f"{self._config.retry_after:g}"}
        try:
            # shield: a timeout stops *waiting*, it must not cancel the queued
            # job — writes apply in arrival order or the epoch contract breaks.
            result = await asyncio.wait_for(asyncio.shield(future),
                                            timeout=self._config.request_timeout)
        except asyncio.TimeoutError:
            # The future is still pending (shield) with nobody awaiting it;
            # attach a consumer so the writer's eventual set_exception is
            # retrieved and logged instead of dying as asyncio's "exception
            # was never retrieved" noise.
            future.add_done_callback(self._abandoned_write_observer(label))
            return 202, {"applied": False, "pending": True, "operation": label,
                         "detail": "write is queued and will apply in order; "
                                   "poll /epoch to observe it"}, None
        except ValueError as exc:
            status, payload = error_payload(400, str(exc))
            return status, payload, None
        except Exception as exc:  # noqa: BLE001 - surfaced as 500 below
            status, payload = error_payload(500, f"write failed: {exc}")
            return status, payload, None
        result = dict(result)
        result.setdefault("applied", True)
        return 200, result, None

    @staticmethod
    def _abandoned_write_observer(label: str) -> Callable[["asyncio.Future"], None]:
        def _observe(future: asyncio.Future) -> None:
            if future.cancelled():
                return
            exc = future.exception()
            if exc is not None:
                logger.warning("queued %s write failed after caller stopped "
                               "waiting (202): %s", label, exc)
        return _observe

    def _snapshot_for(self, request: HttpRequest):
        version = request.query.get("version")
        if version is None:
            return self._service.snapshot()
        try:
            return self._service.snapshot(int(version))
        except ValueError as exc:
            raise ProtocolError(400, f"invalid version {version!r}") from exc
        except KeyError as exc:
            raise ProtocolError(404, str(exc.args[0]) if exc.args else "version evicted") from exc

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def _build_routes(self) -> List[_Route]:
        return [
            _Route("GET", "/health", self._handle_health),
            _Route("GET", "/epoch", self._handle_epoch),
            _Route("GET", "/report", self._handle_report),
            _Route("GET", "/edges", self._handle_edges),
            _Route("GET", "/metrics", self._handle_metrics),
            _Route("POST", "/resistance", self._handle_resistance),
            _Route("POST", "/solve", self._handle_solve),
            _Route("POST", "/update", self._handle_update),
            _Route("POST", "/remove", self._handle_remove),
            _Route("POST", "/reweight", self._handle_reweight),
            _Route("POST", "/checkpoint", self._handle_checkpoint),
            _Route("POST", "/shutdown", self._handle_shutdown),
        ]

    async def _handle_health(self, request: HttpRequest):
        # No snapshot capture: /health must stay cheap under any load.
        assert self._queue is not None
        return 200, {"status": "ok",
                     "version": self._service.latest_version,
                     "applied_batches": self._service.applied_batches,
                     "queue_depth": self._queue.qsize(),
                     "queue_bound": self._config.queue_bound,
                     "draining": self._draining}, None

    async def _handle_epoch(self, request: HttpRequest):
        # retained_versions/write_stats take the service lock — off the loop,
        # or a long driver update would stall the very endpoint 202 answers
        # tell clients to poll.
        def read() -> dict:
            return {"version": self._service.latest_version,
                    "retained_versions": self._service.retained_versions,
                    "applied_batches": self._service.applied_batches,
                    "write_stats": self._service.write_stats}
        return await self._run_query(read)

    async def _handle_report(self, request: HttpRequest):
        full = request.query.get("full") in ("1", "true", "yes")

        def read() -> dict:
            snap = self._snapshot_for(request)
            if full:
                return {"version": snap.version, "report": snap.report().as_dict()}
            return {"version": snap.version, "snapshot": snap.describe()}
        return await self._run_query(read)

    async def _handle_edges(self, request: HttpRequest):
        on = request.query.get("on", "sparsifier")
        if on not in ("sparsifier", "graph"):
            raise ProtocolError(400, f"unknown edges target {on!r}")

        def read() -> dict:
            snap = self._snapshot_for(request)
            us, vs, ws = (snap.sparsifier_arrays() if on == "sparsifier"
                          else snap.graph_arrays())
            return {"version": snap.version, "on": on,
                    "num_nodes": snap.num_nodes,
                    "edges": [[int(u), int(v), float(w)]
                              for u, v, w in zip(us, vs, ws)]}
        return await self._run_query(read)

    async def _handle_metrics(self, request: HttpRequest):
        assert self._queue is not None
        queue_depth, queue_bound = self._queue.qsize(), self._config.queue_bound

        def read() -> dict:
            return self.metrics.snapshot(
                queue_depth=queue_depth,
                queue_bound=queue_bound,
                version=self._service.latest_version,
                applied_batches=self._service.applied_batches,
                retained_snapshots=len(self._service.retained_versions),
                write_stats=self._service.write_stats,
            )
        return await self._run_query(read)

    async def _handle_resistance(self, request: HttpRequest):
        payload = request.json()
        on = payload.get("on", "sparsifier")
        if on not in ("sparsifier", "graph"):
            raise ProtocolError(400, f"unknown resistance target {on!r}")
        if "pairs" in payload:
            pairs = _event_rows(payload, "pairs", 2, "[u, v]")

            def many() -> dict:
                snap = self._snapshot_for(request)
                return {"version": snap.version, "on": on,
                        "resistances": snap.effective_resistance_many(pairs, on=on)}
            return await self._run_query(many)
        u, v = _int_field(payload, "u"), _int_field(payload, "v")

        def single() -> dict:
            snap = self._snapshot_for(request)
            try:
                value = snap.effective_resistance(u, v, on=on)
            except ValueError as exc:
                raise ProtocolError(400, str(exc)) from exc
            return {"version": snap.version, "on": on, "u": u, "v": v,
                    "resistance": value}
        return await self._run_query(single)

    async def _handle_solve(self, request: HttpRequest):
        payload = request.json()
        b = payload.get("b")
        preconditioned = bool(payload.get("preconditioned", True))

        def solve() -> dict:
            import numpy as np

            snap = self._snapshot_for(request)
            if not isinstance(b, list) or len(b) != snap.num_nodes:
                raise ProtocolError(
                    400, f"field 'b' must be a list of {snap.num_nodes} numbers")
            try:
                rhs = np.asarray(b, dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(400, f"field 'b' is not numeric: {exc}") from exc
            report = snap.solve(rhs, preconditioned=preconditioned)
            return {"version": snap.version,
                    "x": report.solution.tolist(),
                    "iterations": report.iterations,
                    "residual_norm": report.residual_norm,
                    "converged": report.converged}
        return await self._run_query(solve)

    async def _handle_update(self, request: HttpRequest):
        batch = batch_from_payload(request.json())

        def job() -> dict:
            self._service.apply(batch)
            return {"version": self._service.latest_version,
                    "applied_batches": self._service.applied_batches,
                    "events": batch.num_events}
        return await self._enqueue_write("update", job)

    async def _handle_remove(self, request: HttpRequest):
        deletions = _event_rows(request.json(), "deletions", 2, "[u, v]")
        if not deletions:
            raise ProtocolError(400, "field 'deletions' holds no edges")

        def job() -> dict:
            self._service.remove(deletions)
            return {"version": self._service.latest_version,
                    "applied_batches": self._service.applied_batches,
                    "events": len(deletions)}
        return await self._enqueue_write("remove", job)

    async def _handle_reweight(self, request: HttpRequest):
        changes = _event_rows(request.json(), "changes", 3, "[u, v, delta]")
        if not changes:
            raise ProtocolError(400, "field 'changes' holds no entries")

        def job() -> dict:
            self._service.reweight(changes)
            return {"version": self._service.latest_version,
                    "applied_batches": self._service.applied_batches,
                    "events": len(changes)}
        return await self._enqueue_write("reweight", job)

    async def _handle_checkpoint(self, request: HttpRequest):
        payload = request.json()
        path = payload.get("path", self._config.checkpoint_dir)
        if not path:
            raise ProtocolError(400, "no 'path' given and no checkpoint_dir configured")
        path = str(path)

        def job() -> dict:
            # Through the queue: the checkpoint lands between batches, never
            # mid-write, and observes every write enqueued before it.
            self._service.save_checkpoint(path)
            return {"version": self._service.latest_version, "path": path,
                    "checkpointed": True}
        return await self._enqueue_write("checkpoint", job)

    async def _handle_shutdown(self, request: HttpRequest):
        assert self._loop is not None
        # Respond first, then trigger: the event fires on the next loop tick,
        # after this response hits the socket.
        def _set() -> None:
            if self._shutdown_event is not None:
                self._shutdown_event.set()
        self._loop.call_soon(_set)
        return 200, {"status": "shutting-down",
                     "version": self._service.latest_version,
                     "pending_writes": self._queue.qsize() if self._queue else 0,
                     "checkpoint_dir": self._config.checkpoint_dir}, None


def serve(service: SparsifierService,
          config: Optional[ServerConfig] = None) -> SparsifierHTTPServer:
    """Serve ``service`` over HTTP until SIGINT/SIGTERM — the blocking facade.

    Installs signal handlers for a graceful exit (drain + checkpoint), runs
    the server on the calling thread, and returns the (stopped) server so
    callers can inspect final metrics.
    """
    import contextlib
    import signal

    server = SparsifierHTTPServer(service, config)

    def _graceful(signum, frame):  # pragma: no cover - signal delivery
        logger.info("signal %s: shutting down gracefully", signum)
        server.request_shutdown()

    with contextlib.ExitStack() as stack:
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous = signal.signal(signum, _graceful)
            except ValueError:  # pragma: no cover - non-main thread
                continue
            stack.callback(signal.signal, signum, previous)
        server.serve_forever()
    return server
