"""repro — a reproduction of *inGRASS: Incremental Graph Spectral
Sparsification via Low-Resistance-Diameter Decomposition* (DAC 2024).

The package is organised as:

* :mod:`repro.core` — the inGRASS algorithm itself (LRD decomposition,
  resistance embeddings, incremental update engine);
* :mod:`repro.graphs` — graph containers, Laplacians, generators, I/O;
* :mod:`repro.spectral` — effective resistances, Krylov surrogates,
  condition numbers, Laplacian solvers;
* :mod:`repro.sparsify` — from-scratch baselines (GRASS-style, feGRASS-style,
  effective-resistance sampling, random) and quality metrics;
* :mod:`repro.streams` — edge-insertion streams and experiment scenarios;
* :mod:`repro.bench` — the harness regenerating the paper's tables/figures.

The most common entry points are re-exported here; the curated application
surface (service, snapshots, solvers, scenarios — everything downstream code
needs) lives in :mod:`repro.api`, and ``python -m repro`` is the console
entry point (see :mod:`repro.cli`).
"""

from repro.core import (
    InGrassConfig,
    InGrassSparsifier,
    LRDConfig,
    ResistanceEmbedding,
    ShardedSparsifier,
    ShardPlan,
    lrd_decompose,
    run_removal,
    run_setup,
    run_update,
)
from repro.graphs import FrozenGraph, FrozenGraphError, Graph
from repro.service import SparsifierService
from repro.snapshot import SparsifierSnapshot
from repro.sparsify import (
    GrassConfig,
    GrassSparsifier,
    evaluate_sparsifier,
    offtree_density,
    relative_density,
)
from repro.spectral import effective_resistance, relative_condition_number
from repro.streams import (
    DynamicScenarioConfig,
    MixedBatch,
    ScenarioConfig,
    build_churn_scenario,
    build_dynamic_scenario,
    build_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "FrozenGraph",
    "FrozenGraphError",
    "SparsifierService",
    "SparsifierSnapshot",
    "InGrassConfig",
    "InGrassSparsifier",
    "LRDConfig",
    "ShardPlan",
    "ShardedSparsifier",
    "ResistanceEmbedding",
    "lrd_decompose",
    "run_setup",
    "run_update",
    "run_removal",
    "GrassConfig",
    "GrassSparsifier",
    "evaluate_sparsifier",
    "relative_density",
    "offtree_density",
    "effective_resistance",
    "relative_condition_number",
    "ScenarioConfig",
    "build_scenario",
    "MixedBatch",
    "DynamicScenarioConfig",
    "build_dynamic_scenario",
    "build_churn_scenario",
    "__version__",
]
