"""Random number generator helpers.

All stochastic code in :mod:`repro` accepts a ``seed`` argument that may be an
integer, ``None`` or an existing :class:`numpy.random.Generator`.  Funnelling
every call through :func:`as_rng` keeps experiment scripts reproducible while
letting library users pass whatever they already have at hand.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` (non-deterministic), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``.

    Useful when an experiment runs several stochastic stages that should not
    share a stream (so that changing the number of draws in one stage does not
    perturb the others).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the generator's own stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def random_unit_vector(size: int, rng: SeedLike = None, orthogonal_to_ones: bool = False) -> np.ndarray:
    """Draw a random unit-norm vector of length ``size``.

    Parameters
    ----------
    size:
        Vector length.
    rng:
        Seed or generator.
    orthogonal_to_ones:
        When ``True``, project out the all-ones direction before normalising.
        This is the standard starting vector for Krylov iterations on graph
        Laplacians, whose null space is spanned by the constant vector.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    generator = as_rng(rng)
    vector = generator.standard_normal(size)
    if orthogonal_to_ones and size > 1:
        vector -= vector.mean()
    norm = np.linalg.norm(vector)
    if norm == 0.0:
        # Vanishingly unlikely; fall back to a deterministic vector.
        vector = np.zeros(size)
        vector[0] = 1.0
        if orthogonal_to_ones and size > 1:
            vector[0] = 1.0
            vector[1] = -1.0
        norm = np.linalg.norm(vector)
    return vector / norm
