"""Wall-clock timing helpers used by the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    A ``Timer`` can be used either as a context manager::

        timer = Timer()
        with timer:
            expensive_call()
        print(timer.elapsed)

    or through repeated :meth:`start` / :meth:`stop` calls; ``elapsed``
    accumulates across uses, which is how the benchmark harness sums the cost
    of the ten update iterations of Table II.
    """

    elapsed: float = 0.0
    _started_at: float = field(default=0.0, repr=False)
    _running: bool = field(default=False, repr=False)

    def start(self) -> "Timer":
        if self._running:
            raise RuntimeError("Timer is already running")
        self._started_at = time.perf_counter()
        self._running = True
        return self

    def stop(self) -> float:
        if not self._running:
            raise RuntimeError("Timer is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._running = False
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._running = False

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@contextmanager
def timed() -> Iterator[Timer]:
    """Context manager yielding a fresh started :class:`Timer`."""
    timer = Timer()
    timer.start()
    try:
        yield timer
    finally:
        if timer._running:
            timer.stop()


def time_call(func: Callable[[], T]) -> tuple[T, float]:
    """Call ``func`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start
