"""Small shared utilities: timers, RNG handling, logging, validation."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    check_edge_weights_positive,
    check_node_index,
    check_probability,
    check_positive,
    check_positive_int,
)

__all__ = [
    "Timer",
    "timed",
    "as_rng",
    "spawn_rngs",
    "check_edge_weights_positive",
    "check_node_index",
    "check_positive",
    "check_positive_int",
    "check_probability",
]
