"""Argument validation helpers shared across the library.

These raise early with precise messages so that user errors surface at the
public API boundary rather than deep inside sparse linear algebra.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def check_positive_int(value: int, name: str) -> int:
    """Require an integer ``value >= 1``; return it for chaining."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``; return it for chaining."""
    if not np.isfinite(value) or value < 0 or value > 1:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_node_index(node: int, num_nodes: int, name: str = "node") -> int:
    """Require ``0 <= node < num_nodes``; return the node as ``int``."""
    if not isinstance(node, (int, np.integer)) or isinstance(node, bool):
        raise TypeError(f"{name} must be an integer, got {type(node).__name__}")
    if node < 0 or node >= num_nodes:
        raise ValueError(f"{name} {node} is out of range for a graph with {num_nodes} nodes")
    return int(node)


def check_edge_weights_positive(weights: Iterable[float]) -> np.ndarray:
    """Require every weight to be a positive finite number; return an array."""
    array = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights, dtype=float)
    if array.size and (not np.all(np.isfinite(array)) or np.any(array <= 0)):
        bad = array[~(np.isfinite(array) & (array > 0))]
        raise ValueError(f"edge weights must be positive finite numbers; offending values: {bad[:5]}")
    return array
