"""Logging configuration for the :mod:`repro` package.

The library itself never configures the root logger; it only emits records on
the ``repro`` logger hierarchy.  Experiment scripts and the benchmark harness
call :func:`configure_logging` to get readable console output.
"""

from __future__ import annotations

import logging

_PACKAGE_LOGGER_NAME = "repro"
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("core.lrd")`` returns the ``repro.core.lrd`` logger.
    """
    if name is None or name == _PACKAGE_LOGGER_NAME:
        return logging.getLogger(_PACKAGE_LOGGER_NAME)
    if name.startswith(_PACKAGE_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_PACKAGE_LOGGER_NAME}.{name}")


def configure_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a console handler to the package logger (idempotent)."""
    logger = logging.getLogger(_PACKAGE_LOGGER_NAME)
    logger.setLevel(level)
    if not any(isinstance(handler, logging.StreamHandler) for handler in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
    return logger
