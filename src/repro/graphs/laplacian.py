"""Laplacian and related matrix constructions.

Most algorithms in the library operate on scipy CSR matrices built from a
:class:`repro.graphs.Graph`.  This module gathers the matrix builders plus a
few transformations (normalisation, grounding) that the spectral solvers and
condition-number routines rely on.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph


def adjacency_matrix(graph: Graph) -> sp.csr_matrix:
    """Return the symmetric weighted adjacency matrix of ``graph``."""
    return graph.adjacency_matrix()


def laplacian_matrix(graph: Graph) -> sp.csr_matrix:
    """Return the combinatorial Laplacian ``L = D - A`` of ``graph``."""
    return graph.laplacian_matrix()


def degree_matrix(graph: Graph) -> sp.csr_matrix:
    """Return the diagonal weighted-degree matrix ``D``."""
    return sp.diags(graph.weighted_degrees()).tocsr()


def normalized_laplacian(graph: Graph, eps: float = 1e-12) -> sp.csr_matrix:
    """Return the symmetric normalised Laplacian ``D^{-1/2} L D^{-1/2}``.

    Isolated nodes (zero weighted degree) keep a zero row/column; ``eps``
    guards the division.
    """
    degrees = graph.weighted_degrees()
    inv_sqrt = np.where(degrees > eps, 1.0 / np.sqrt(np.maximum(degrees, eps)), 0.0)
    scaling = sp.diags(inv_sqrt)
    return (scaling @ laplacian_matrix(graph) @ scaling).tocsr()


def laplacian_from_edges(
    num_nodes: int,
    us: Sequence[int],
    vs: Sequence[int],
    weights: Sequence[float],
) -> sp.csr_matrix:
    """Build a Laplacian directly from edge arrays without a :class:`Graph`.

    Repeated edges simply accumulate, matching the parallel-conductor
    convention used by :class:`Graph`.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    weights = np.asarray(weights, dtype=float)
    if not (us.shape == vs.shape == weights.shape):
        raise ValueError("us, vs and weights must have the same length")
    rows = np.concatenate([us, vs, us, vs])
    cols = np.concatenate([vs, us, us, vs])
    vals = np.concatenate([-weights, -weights, weights, weights])
    return sp.csr_matrix((vals, (rows, cols)), shape=(num_nodes, num_nodes))


def grounded_laplacian(
    laplacian: sp.spmatrix, ground: int = 0
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Remove row/column ``ground`` from a Laplacian.

    Grounding one node of a connected graph turns the singular Laplacian into
    a symmetric positive-definite matrix; the second return value maps reduced
    indices back to the original node numbering.
    """
    n = laplacian.shape[0]
    if n == 0:
        raise ValueError("cannot ground an empty Laplacian")
    if ground < 0 or ground >= n:
        raise ValueError(f"ground node {ground} out of range for size {n}")
    keep = np.array([i for i in range(n) if i != ground], dtype=np.int64)
    reduced = sp.csr_matrix(laplacian)[keep][:, keep]
    return reduced.tocsr(), keep


def is_laplacian(matrix: sp.spmatrix, tol: float = 1e-9) -> bool:
    """Check whether ``matrix`` looks like a combinatorial Laplacian.

    The test verifies symmetry, non-positive off-diagonal entries and (near)
    zero row sums.
    """
    matrix = sp.csr_matrix(matrix)
    if matrix.shape[0] != matrix.shape[1]:
        return False
    asymmetry = abs(matrix - matrix.T)
    if asymmetry.nnz and asymmetry.max() > tol:
        return False
    coo = matrix.tocoo()
    off_diagonal = coo.data[coo.row != coo.col]
    if off_diagonal.size and np.any(off_diagonal > tol):
        return False
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    return bool(np.all(np.abs(row_sums) <= tol * max(1.0, abs(matrix).max())))


def laplacian_quadratic_form(laplacian: sp.spmatrix, x: np.ndarray) -> float:
    """Return ``x^T L x`` — the energy of vector ``x`` on the graph."""
    x = np.asarray(x, dtype=float)
    return float(x @ (laplacian @ x))


def edge_weight_vector(graph: Graph) -> np.ndarray:
    """Return the edge weight vector aligned with :meth:`Graph.edge_arrays`."""
    _, _, weights = graph.edge_arrays()
    return weights


def regularized_laplacian(laplacian: sp.spmatrix, regularization: float) -> sp.csr_matrix:
    """Return ``L + regularization * I`` (used by iterative solvers)."""
    if regularization < 0:
        raise ValueError(f"regularization must be non-negative, got {regularization}")
    n = laplacian.shape[0]
    return (sp.csr_matrix(laplacian) + regularization * sp.identity(n, format="csr")).tocsr()
