"""Disjoint-set (union-find) structure with union by size and path compression.

Used by the spanning-tree constructions, the LRD contraction step and the
connected-component analysis.  The implementation is array-based so that a
union-find over a few million elements stays cheap.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np


class UnionFind:
    """Disjoint-set forest over the integers ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of elements.  Every element starts in its own singleton set.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._parent = np.arange(n, dtype=np.int64)
        self._size = np.ones(n, dtype=np.int64)
        self._num_sets = n

    def __len__(self) -> int:
        return int(self._parent.shape[0])

    @property
    def num_sets(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._num_sets

    def find(self, x: int) -> int:
        """Return the representative of ``x``'s set (with path compression)."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        # Path compression pass.
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; return ``True`` if they were distinct."""
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        # Union by size: hang the smaller tree below the larger.
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._num_sets -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Return ``True`` when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def set_size(self, x: int) -> int:
        """Return the size of the set containing ``x``."""
        return int(self._size[self.find(x)])

    def roots(self) -> List[int]:
        """Return the sorted list of set representatives."""
        return sorted({self.find(i) for i in range(len(self))})

    def labels(self, compact: bool = True) -> np.ndarray:
        """Return an array mapping each element to a set label.

        Parameters
        ----------
        compact:
            When ``True`` (default) labels are renumbered ``0 .. num_sets-1``
            in order of first appearance; otherwise raw root indices are used.
        """
        n = len(self)
        raw = np.fromiter((self.find(i) for i in range(n)), dtype=np.int64, count=n)
        if not compact:
            return raw
        remap: Dict[int, int] = {}
        labels = np.empty(n, dtype=np.int64)
        for i, root in enumerate(raw):
            key = int(root)
            if key not in remap:
                remap[key] = len(remap)
            labels[i] = remap[key]
        return labels

    def groups(self) -> Dict[int, List[int]]:
        """Return ``{representative: sorted members}`` for every set."""
        result: Dict[int, List[int]] = {}
        for i in range(len(self)):
            result.setdefault(self.find(i), []).append(i)
        return result

    @classmethod
    def from_labels(cls, labels: Iterable[int]) -> "UnionFind":
        """Build a union-find whose sets follow an existing labelling."""
        label_list = list(labels)
        uf = cls(len(label_list))
        first_seen: Dict[int, int] = {}
        for index, label in enumerate(label_list):
            if label in first_seen:
                uf.union(first_seen[label], index)
            else:
                first_seen[label] = index
        return uf
