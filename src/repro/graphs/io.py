"""Graph input/output: Matrix Market and edge-list formats.

The paper's test matrices come from the SuiteSparse collection distributed in
Matrix Market (``.mtx``) format; this module lets users who have those files
locally load them directly, and lets the benchmark harness persist the
synthetic analogues it generates.
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import Union

import scipy.io
import scipy.sparse as sp

from repro.graphs.graph import Graph

PathLike = Union[str, os.PathLike]


def graph_to_sparse(graph: Graph) -> sp.csr_matrix:
    """Return the adjacency matrix of ``graph`` (alias for symmetry with loaders)."""
    return graph.adjacency_matrix()


def save_matrix_market(graph: Graph, path: PathLike, comment: str = "") -> None:
    """Write the adjacency matrix of ``graph`` as a Matrix Market file."""
    matrix = graph.adjacency_matrix().tocoo()
    scipy.io.mmwrite(str(path), matrix, comment=comment, symmetry="symmetric")


def load_matrix_market(path: PathLike) -> Graph:
    """Load a Matrix Market file as an undirected weighted graph.

    Both adjacency matrices and Laplacians are accepted (off-diagonal entries
    are used with absolute value, diagonals ignored), matching how the
    SuiteSparse circuit matrices are normally consumed by sparsifiers.
    """
    matrix = scipy.io.mmread(str(path))
    return Graph.from_sparse(sp.coo_matrix(matrix))


def save_edge_list(graph: Graph, path: PathLike, header: bool = True) -> None:
    """Write ``u v weight`` lines (plus an optional header) to ``path``."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# nodes {graph.num_nodes} edges {graph.num_edges}\n")
        for u, v, w in graph.weighted_edges():
            handle.write(f"{u} {v} {w:.12g}\n")


def load_edge_list(path: PathLike, num_nodes: int | None = None) -> Graph:
    """Load a ``u v [weight]`` edge list; weight defaults to 1.0.

    When ``num_nodes`` is omitted it is inferred as ``max node index + 1``,
    unless a ``# nodes N ...`` header is present.
    """
    path = Path(path)
    edges: list[tuple[int, int, float]] = []
    inferred_nodes = 0
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                tokens = line[1:].split()
                if len(tokens) >= 2 and tokens[0] == "nodes":
                    inferred_nodes = max(inferred_nodes, int(tokens[1]))
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            u, v = int(parts[0]), int(parts[1])
            w = float(parts[2]) if len(parts) > 2 else 1.0
            edges.append((u, v, w))
            inferred_nodes = max(inferred_nodes, u + 1, v + 1)
    total_nodes = num_nodes if num_nodes is not None else inferred_nodes
    return Graph(total_nodes, edges)


def edge_list_string(graph: Graph) -> str:
    """Return the edge-list serialisation as a string (useful in tests)."""
    buffer = io.StringIO()
    buffer.write(f"# nodes {graph.num_nodes} edges {graph.num_edges}\n")
    for u, v, w in graph.weighted_edges():
        buffer.write(f"{u} {v} {w:.12g}\n")
    return buffer.getvalue()
