"""Connectivity analysis: connected components, spanning connectivity checks."""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.unionfind import UnionFind


def _compact_by_first_appearance(labels: np.ndarray) -> np.ndarray:
    """Renumber labels to ``0 .. k-1`` in order of first appearance.

    Normalises whatever labelling the underlying component sweep produced to
    the convention :meth:`UnionFind.labels` has always used, so callers that
    compare labellings across code paths see identical arrays.
    """
    _, first_index = np.unique(labels, return_index=True)
    order = np.argsort(first_index)
    remap = np.empty(order.shape[0], dtype=np.int64)
    remap[order] = np.arange(order.shape[0])
    return remap[labels]


def connected_components_arrays(num_nodes: int, us: np.ndarray,
                                vs: np.ndarray) -> np.ndarray:
    """Component labels of the graph given by parallel edge arrays.

    One :func:`scipy.sparse.csgraph.connected_components` sweep instead of a
    Python union-find loop per edge — the per-batch connectivity pre-flight
    of the deletion path runs through here, so 10⁵-edge graphs pay a numpy
    pass, not 10⁵ Python-level union calls.  Labels are compacted in order of
    first appearance (node 0's component is label 0).
    """
    import scipy.sparse as sp
    from scipy.sparse.csgraph import connected_components as _cc

    if num_nodes == 0:
        return np.zeros(0, dtype=np.int64)
    if us.shape[0] == 0:
        return np.arange(num_nodes, dtype=np.int64)
    data = np.ones(us.shape[0])
    adjacency = sp.coo_matrix((data, (us, vs)), shape=(num_nodes, num_nodes))
    _, labels = _cc(adjacency.tocsr(), directed=False)
    return _compact_by_first_appearance(labels.astype(np.int64, copy=False))


def connected_components(graph: Graph) -> np.ndarray:
    """Label every node with its connected-component index (0-based, compact)."""
    us, vs, _ = graph.edge_arrays()
    return connected_components_arrays(graph.num_nodes, us, vs)


def num_connected_components(graph: Graph) -> int:
    """Return the number of connected components of ``graph``."""
    if graph.num_nodes == 0:
        return 0
    labels = connected_components(graph)
    return int(labels.max()) + 1


def is_connected(graph: Graph) -> bool:
    """Return ``True`` when the graph has a single connected component."""
    if graph.num_nodes == 0:
        return True
    return num_connected_components(graph) == 1


def largest_component_nodes(graph: Graph) -> List[int]:
    """Return the node list of the largest connected component (sorted)."""
    if graph.num_nodes == 0:
        return []
    labels = connected_components(graph)
    counts = np.bincount(labels)
    best = int(np.argmax(counts))
    return [int(i) for i in np.flatnonzero(labels == best)]


def extract_largest_component(graph: Graph) -> Graph:
    """Return the induced subgraph on the largest component, relabelled ``0..k-1``."""
    nodes = largest_component_nodes(graph)
    index = {node: i for i, node in enumerate(nodes)}
    sub = Graph(len(nodes))
    node_set = set(nodes)
    for u, v, w in graph.weighted_edges():
        if u in node_set and v in node_set:
            sub.add_edge(index[u], index[v], w, merge="replace")
    return sub


def bfs_order(graph: Graph, source: int = 0) -> List[int]:
    """Return nodes in breadth-first order from ``source`` (reachable ones only)."""
    if graph.num_nodes == 0:
        return []
    visited = np.zeros(graph.num_nodes, dtype=bool)
    order: List[int] = []
    queue: deque[int] = deque([source])
    visited[source] = True
    while queue:
        node = queue.popleft()
        order.append(node)
        for neighbor in graph.neighbors(node):
            if not visited[neighbor]:
                visited[neighbor] = True
                queue.append(neighbor)
    return order


def bridge_edges(graph: Graph) -> List[tuple]:
    """Return the bridges of ``graph`` as canonical ``(u, v)`` pairs.

    A bridge is an edge whose removal increases the number of connected
    components; the deletion streams avoid them so that edge removals never
    disconnect the tracked graph.  Iterative Tarjan lowlink computation,
    ``O(V + E)``.
    """
    n = graph.num_nodes
    if n == 0:
        return []
    disc = np.full(n, -1, dtype=np.int64)
    low = np.full(n, -1, dtype=np.int64)
    bridges: List[tuple] = []
    counter = 0
    for start in range(n):
        if disc[start] != -1:
            continue
        # Each stack frame: (node, parent, iterator over neighbors, parent-edge-seen flag).
        stack = [(start, -1, iter(graph.neighbors(start).keys()), False)]
        disc[start] = low[start] = counter
        counter += 1
        while stack:
            node, parent, neighbors, parent_seen = stack.pop()
            advanced = False
            for neighbor in neighbors:
                if neighbor == parent and not parent_seen:
                    # Skip the tree edge back to the parent exactly once so
                    # that parallel logical edges are not misdetected (the
                    # Graph container merges parallel edges, so one skip is
                    # always correct).
                    stack.append((node, parent, neighbors, True))
                    advanced = True
                    break
                if disc[neighbor] == -1:
                    disc[neighbor] = low[neighbor] = counter
                    counter += 1
                    stack.append((node, parent, neighbors, parent_seen))
                    stack.append((neighbor, node, iter(graph.neighbors(neighbor).keys()), False))
                    advanced = True
                    break
                low[node] = min(low[node], disc[neighbor])
            if advanced:
                continue
            # Frame exhausted: propagate the lowlink to the parent.
            if parent != -1:
                low[parent] = min(low[parent], low[node])
                if low[node] > disc[parent]:
                    bridges.append((parent, node) if parent <= node else (node, parent))
    return bridges


def non_bridge_edges(graph: Graph) -> List[tuple]:
    """Return the canonical ``(u, v)`` pairs whose removal keeps components intact."""
    bridges = set(bridge_edges(graph))
    return [edge for edge in graph.edges() if edge not in bridges]


def spans_graph(graph: Graph, edges: List[tuple]) -> bool:
    """Return ``True`` when ``edges`` connect all nodes of ``graph``."""
    uf = UnionFind(graph.num_nodes)
    for u, v, *rest in edges:
        uf.union(int(u), int(v))
    return uf.num_sets <= 1
