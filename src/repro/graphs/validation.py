"""Structural validation helpers for graphs and sparsifiers."""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.graphs.components import is_connected
from repro.graphs.graph import Graph, coerce_edge_triple_arrays


class GraphValidationError(ValueError):
    """Raised when a graph fails a structural requirement."""


def validate_sparsifier_support(graph: Graph, sparsifier: Graph, allow_new_edges: bool = True) -> None:
    """Check that ``sparsifier`` is a valid sparsifier candidate for ``graph``.

    The node sets must match and the sparsifier must be connected (a
    disconnected sparsifier has an unbounded relative condition number).
    When ``allow_new_edges`` is ``False``, every sparsifier edge must also
    exist in the original graph.
    """
    if graph.num_nodes != sparsifier.num_nodes:
        raise GraphValidationError(
            f"node count mismatch: graph has {graph.num_nodes}, sparsifier has {sparsifier.num_nodes}"
        )
    if sparsifier.num_nodes and not is_connected(sparsifier):
        raise GraphValidationError("sparsifier must be connected")
    if not allow_new_edges:
        missing = [edge for edge in sparsifier.edges() if not graph.has_edge(*edge)]
        if missing:
            raise GraphValidationError(
                f"sparsifier contains {len(missing)} edges absent from the graph, e.g. {missing[:3]}"
            )


def validate_new_edge_arrays(graph: Graph,
                             new_edges: Iterable[Tuple[int, int, float]]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Array-native :func:`validate_new_edges`: one numpy pass over the batch.

    Returns parallel ``(us, vs, ws)`` arrays of the cleaned batch —
    canonically oriented, deduplicated (weights of within-batch parallel
    edges summed, first-occurrence order preserved) — without any per-edge
    Python validation chain.  The per-edge rules are shared with
    :meth:`Graph.add_edges` via
    :func:`repro.graphs.graph.coerce_edge_triple_arrays`.
    """
    lo, hi, ws = coerce_edge_triple_arrays(new_edges, graph.num_nodes,
                                           error_cls=GraphValidationError)
    if lo.size == 0:
        return lo, hi, ws
    keys = lo * np.int64(graph.num_nodes) + hi
    unique_keys, first_index, inverse = np.unique(keys, return_index=True, return_inverse=True)
    if unique_keys.shape[0] == keys.shape[0]:
        return lo, hi, ws
    # Parallel edges within the batch: sum their weights onto the first
    # occurrence, keeping first-occurrence order (what the scalar dict did).
    order = np.argsort(first_index, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(order.shape[0])
    summed = np.bincount(rank[inverse], weights=ws, minlength=order.shape[0])
    kept = first_index[order]
    return lo[kept], hi[kept], summed


def validate_new_edges(graph: Graph, new_edges: Iterable[Tuple[int, int, float]]) -> List[Tuple[int, int, float]]:
    """Validate a batch of candidate edge insertions.

    Returns the cleaned list.  Endpoints must be valid distinct nodes and
    weights must be positive; duplicate edges within the batch are merged by
    summing weights (parallel conductors).
    """
    us, vs, ws = validate_new_edge_arrays(graph, new_edges)
    return list(zip(us.tolist(), vs.tolist(), ws.tolist()))


def canonicalize_edge_pairs(pairs: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Canonicalize ``(u, v[, ...])`` items into sorted pairs, collapsing duplicates.

    Extra tuple elements (e.g. weights) are ignored; self-loops are rejected.
    Shared by deletion validation here and by the removal path in
    :mod:`repro.core.update` so the normalization semantics stay identical.
    """
    cleaned: dict[tuple[int, int], None] = {}
    for item in pairs:
        u, v = int(item[0]), int(item[1])
        if u == v:
            raise GraphValidationError(f"self-loop removal ({u}, {v}) is not allowed")
        cleaned[(u, v) if u < v else (v, u)] = None
    return list(cleaned.keys())


def validate_removals(graph: Graph, removals: Iterable[Tuple[int, int]], *,
                      missing: str = "error") -> List[Tuple[int, int]]:
    """Validate a batch of candidate edge deletions against ``graph``.

    Accepts ``(u, v)`` pairs or ``(u, v, weight)`` triples (the weight is
    ignored — a deletion removes the whole edge).  Returns the cleaned list of
    canonical pairs with duplicates collapsed.

    Parameters
    ----------
    missing:
        Policy for edges absent from ``graph``: ``"error"`` raises,
        ``"skip"`` silently drops them from the returned list.
    """
    if missing not in ("error", "skip"):
        raise ValueError(f"unknown missing policy {missing!r}")
    cleaned: List[Tuple[int, int]] = []
    for u, v in canonicalize_edge_pairs(removals):
        if u < 0 or v < 0 or u >= graph.num_nodes or v >= graph.num_nodes:
            raise GraphValidationError(f"removal ({u}, {v}) references a node outside the graph")
        if not graph.has_edge(u, v):
            if missing == "error":
                raise GraphValidationError(f"cannot remove edge ({u}, {v}): not present in the graph")
            continue
        cleaned.append((u, v))
    return cleaned


def removals_keep_connected(graph: Graph, removals: Iterable[Tuple[int, int]]) -> bool:
    """Return ``True`` when deleting ``removals`` leaves ``graph`` connected.

    Runs one vectorised component sweep over the surviving edges without
    mutating ``graph``; the incremental driver uses it as a pre-flight check
    so a disconnecting deletion batch is rejected before any state changes.
    The removed pairs are masked out of the cached edge arrays with one
    ``isin`` pass, so the cost is a few numpy passes over ``E`` rather than
    ``E`` Python-level union-find calls per deletion batch.
    """
    from repro.graphs.components import connected_components_arrays

    if graph.num_nodes == 0:
        return True
    removed = canonicalize_edge_pairs(removals)
    us, vs, _ = graph.edge_arrays()
    if removed:
        n = np.int64(graph.num_nodes)
        keys = us * n + vs
        removed_keys = np.fromiter((u * int(n) + v for u, v in removed),
                                   dtype=np.int64, count=len(removed))
        survivors = ~np.isin(keys, removed_keys)
        us, vs = us[survivors], vs[survivors]
    labels = connected_components_arrays(graph.num_nodes, us, vs)
    return labels.size == 0 or int(labels.max()) == 0


def assert_positive_weights(graph: Graph) -> None:
    """Raise when any edge weight is non-positive or non-finite."""
    for u, v, w in graph.weighted_edges():
        if not np.isfinite(w) or w <= 0:
            raise GraphValidationError(f"edge ({u}, {v}) has invalid weight {w}")


def graph_summary(graph: Graph) -> dict:
    """Return a dictionary of cheap structural statistics (used in reports)."""
    degrees = graph.degrees()
    weights = np.array([w for _, _, w in graph.weighted_edges()]) if graph.num_edges else np.zeros(0)
    return {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "density": graph.density(),
        "min_degree": int(degrees.min()) if degrees.size else 0,
        "max_degree": int(degrees.max()) if degrees.size else 0,
        "mean_degree": float(degrees.mean()) if degrees.size else 0.0,
        "min_weight": float(weights.min()) if weights.size else 0.0,
        "max_weight": float(weights.max()) if weights.size else 0.0,
        "total_weight": float(weights.sum()) if weights.size else 0.0,
        "connected": is_connected(graph),
    }
