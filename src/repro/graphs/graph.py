"""Weighted undirected graph container used throughout the library.

The :class:`Graph` class stores edges in a canonical dictionary keyed by
``(min(u, v), max(u, v))`` which makes incremental insertion, weight updates
and membership tests O(1) — exactly the operations the inGRASS update phase
performs per newly streamed edge — while still exposing vectorised COO views
and scipy sparse matrices for the spectral algebra.

The array views (:meth:`Graph.edge_arrays`, :meth:`Graph.adjacency_matrix`)
are cached and invalidated on mutation, so repeated spectral algebra on a
quiescent graph never rebuilds them; :meth:`Graph.add_edges` and
:meth:`Graph.remove_edges` validate whole batches with numpy before touching
the dictionaries, which is what keeps the per-edge constant of the batched
update engine flat for 10⁵-edge streams.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_node_index, check_positive

Edge = Tuple[int, int]
WeightedEdge = Tuple[int, int, float]


def canonical_edge(u: int, v: int) -> Edge:
    """Return the canonical (sorted) form of an undirected edge key."""
    return (u, v) if u <= v else (v, u)


def as_edge_triples(edges: Iterable[WeightedEdge]) -> np.ndarray:
    """Coerce an edge iterable (or ``(m, 3)`` ndarray) to a float ``(m, 3)`` array.

    Pure shape/dtype coercion without validation — shared by
    :func:`coerce_edge_triple_arrays` and the distortion batch kernels.
    An empty input yields an empty ``(0, 3)`` array.
    """
    if isinstance(edges, np.ndarray) and edges.ndim == 2 and edges.shape[1] == 3:
        return edges.astype(float, copy=False)
    triples = np.asarray(edges if isinstance(edges, list) else list(edges), dtype=float)
    if triples.size == 0:
        return np.zeros((0, 3))
    return triples


def coerce_edge_triple_arrays(edges: Iterable[WeightedEdge], num_nodes: int,
                              *, error_cls: type = ValueError,
                              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate a batch of ``(u, v, weight)`` triples in one numpy pass.

    Shared kernel of :meth:`Graph.add_edges` and
    :func:`repro.graphs.validation.validate_new_edge_arrays`, so the batch
    rules (integer endpoints in range, no self-loops, positive finite
    weights) live in exactly one place.  Returns canonically oriented
    ``(us, vs, ws)`` arrays in input order, *without* deduplication; raises
    ``error_cls`` (a ``ValueError`` subclass) on the first violation.
    """
    triples = as_edge_triples(edges)
    if triples.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), np.zeros(0)
    if triples.ndim != 2 or triples.shape[1] != 3:
        raise error_cls(f"expected (u, v, weight) triples, got shape {triples.shape}")
    us = triples[:, 0].astype(np.int64)
    vs = triples[:, 1].astype(np.int64)
    ws = np.ascontiguousarray(triples[:, 2])
    if np.any((us != triples[:, 0]) | (vs != triples[:, 1])):
        raise error_cls("edge endpoints must be integers")
    loops = us == vs
    if loops.any():
        bad = int(np.flatnonzero(loops)[0])
        raise error_cls(f"self-loops are not allowed (node {int(us[bad])})")
    out_of_range = (us < 0) | (vs < 0) | (us >= num_nodes) | (vs >= num_nodes)
    if out_of_range.any():
        bad = int(np.flatnonzero(out_of_range)[0])
        raise error_cls(
            f"edge ({int(us[bad])}, {int(vs[bad])}) references a node outside 0..{num_nodes - 1}"
        )
    invalid = ~np.isfinite(ws) | (ws <= 0)
    if invalid.any():
        bad = int(np.flatnonzero(invalid)[0])
        raise error_cls(
            f"edge ({int(us[bad])}, {int(vs[bad])}) has non-positive weight {float(ws[bad])}"
        )
    return np.minimum(us, vs), np.maximum(us, vs), ws


class Graph:
    """A weighted undirected graph on nodes ``0 .. num_nodes - 1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes.  Nodes are always the contiguous integers starting
        at zero; the benchmark loaders relabel external identifiers.
    edges:
        Optional iterable of ``(u, v, weight)`` triples.  Parallel edges are
        merged by summing weights (the physical behaviour of parallel
        resistors in the circuit graphs the paper targets).

    Notes
    -----
    Self-loops are rejected: they do not change the graph Laplacian and only
    distort density accounting.
    """

    def __init__(self, num_nodes: int, edges: Optional[Iterable[WeightedEdge]] = None) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        self._edges: Dict[Edge, float] = {}
        self._adjacency: List[Dict[int, float]] = [dict() for _ in range(self._num_nodes)]
        # Lazily built, mutation-invalidated views (COO arrays, CSR adjacency).
        self._arrays_cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._csr_cache: Optional[sp.csr_matrix] = None
        if edges is not None:
            self.add_edges(edges, merge="add")

    def _invalidate_views(self) -> None:
        self._arrays_cache = None
        self._csr_cache = None

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        return len(self._edges)

    def __len__(self) -> int:
        return self._num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(num_nodes={self._num_nodes}, num_edges={self.num_edges})"

    def __contains__(self, edge: Tuple[int, int]) -> bool:
        u, v = edge
        return canonical_edge(int(u), int(v)) in self._edges

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, u: int, v: int, weight: float = 1.0, merge: str = "add") -> None:
        """Insert or update the undirected edge ``(u, v)``.

        Parameters
        ----------
        u, v:
            Endpoints; must be distinct valid node indices.
        weight:
            Positive edge weight (conductance in circuit terms).
        merge:
            Policy when the edge already exists: ``"add"`` sums the weights
            (parallel resistors), ``"replace"`` overwrites, ``"max"`` keeps
            the larger weight and ``"error"`` raises.
        """
        if merge not in ("add", "max", "replace", "error"):
            raise ValueError(f"unknown merge policy {merge!r}")
        u = check_node_index(u, self._num_nodes, "u")
        v = check_node_index(v, self._num_nodes, "v")
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u})")
        weight = check_positive(weight, "weight")
        key = canonical_edge(u, v)
        if key in self._edges:
            if merge == "add":
                weight = self._edges[key] + weight
            elif merge == "max":
                weight = max(self._edges[key], weight)
            elif merge == "error":
                raise ValueError(f"edge {key} already exists")
            # merge == "replace": keep the new weight.
        self._edges[key] = weight
        self._adjacency[u][v] = weight
        self._adjacency[v][u] = weight
        self._invalidate_views()

    def add_edges(self, edges: Iterable[WeightedEdge], merge: str = "add") -> None:
        """Insert many edges at once (see :meth:`add_edge` for the semantics).

        The whole batch is validated with numpy in one shot (bounds,
        self-loops, positive finite weights) before the adjacency structures
        are touched, so streaming 10⁵ edges does not pay 10⁵ Python-level
        validation call chains.  Semantics are identical to calling
        :meth:`add_edge` per edge, including the merge policy order.
        """
        if merge not in ("add", "max", "replace", "error"):
            raise ValueError(f"unknown merge policy {merge!r}")
        us, vs, ws = coerce_edge_triple_arrays(edges, self._num_nodes)
        if us.size == 0:
            return
        lo = us.tolist()
        hi = vs.tolist()
        weights = ws.tolist()
        edge_map = self._edges
        adjacency = self._adjacency
        try:
            for u, v, weight in zip(lo, hi, weights):
                key = (u, v)
                existing = edge_map.get(key)
                if existing is not None:
                    if merge == "add":
                        weight = existing + weight
                    elif merge == "max":
                        weight = max(existing, weight)
                    elif merge == "error":
                        raise ValueError(f"edge {key} already exists")
                    # merge == "replace": keep the new weight.
                edge_map[key] = weight
                adjacency[u][v] = weight
                adjacency[v][u] = weight
        finally:
            # merge="error" can raise mid-batch; the views must reflect the
            # edges inserted before the failure.
            self._invalidate_views()

    def add_edge_unchecked(self, u: int, v: int, weight: float) -> None:
        """Insert ``(u, v, weight)`` with ``merge="add"`` semantics, skipping validation.

        For batch engines that have already validated the whole stream with
        numpy (:func:`repro.graphs.validation.validate_new_edge_arrays`);
        ``u``/``v``/``weight`` must be Python scalars, distinct, in range and
        positive — violating that corrupts the adjacency structure.
        """
        key = (u, v) if u <= v else (v, u)
        existing = self._edges.get(key)
        if existing is not None:
            weight = existing + weight
        self._edges[key] = weight
        self._adjacency[u][v] = weight
        self._adjacency[v][u] = weight
        self._arrays_cache = None
        self._csr_cache = None

    def remove_edge(self, u: int, v: int) -> float:
        """Remove edge ``(u, v)`` and return its weight; raise if absent."""
        key = canonical_edge(int(u), int(v))
        if key not in self._edges:
            raise KeyError(f"edge {key} not in graph")
        weight = self._edges.pop(key)
        del self._adjacency[key[0]][key[1]]
        del self._adjacency[key[1]][key[0]]
        self._invalidate_views()
        return weight

    def remove_edges(self, pairs: Iterable[Edge]) -> List[WeightedEdge]:
        """Remove many edges at once; return the ``(u, v, weight)`` triples removed.

        Pairs are canonicalised first and every pair must exist (matching
        :meth:`remove_edge`); the returned triples carry the weight each edge
        had at removal time, in input order.  Duplicated pairs raise (the
        second occurrence no longer exists).
        """
        removed: List[WeightedEdge] = []
        edge_map = self._edges
        adjacency = self._adjacency
        try:
            for item in pairs:
                u, v = int(item[0]), int(item[1])
                key = (u, v) if u <= v else (v, u)
                weight = edge_map.pop(key, None)
                if weight is None:
                    raise KeyError(f"edge {key} not in graph")
                del adjacency[key[0]][key[1]]
                del adjacency[key[1]][key[0]]
                removed.append((key[0], key[1], weight))
        finally:
            # A missing pair raises mid-batch; the views must reflect the
            # edges removed before the failure.
            if removed:
                self._invalidate_views()
        return removed

    def set_weight(self, u: int, v: int, weight: float) -> None:
        """Overwrite the weight of an existing edge."""
        key = canonical_edge(int(u), int(v))
        if key not in self._edges:
            raise KeyError(f"edge {key} not in graph")
        weight = check_positive(weight, "weight")
        self._edges[key] = weight
        self._adjacency[key[0]][key[1]] = weight
        self._adjacency[key[1]][key[0]] = weight
        self._invalidate_views()

    def scale_weight(self, u: int, v: int, factor: float) -> float:
        """Multiply the weight of an existing edge by ``factor``; return the new weight."""
        key = canonical_edge(int(u), int(v))
        if key not in self._edges:
            raise KeyError(f"edge {key} not in graph")
        check_positive(factor, "factor")
        new_weight = self._edges[key] * factor
        self.set_weight(u, v, new_weight)
        return new_weight

    def increase_weight(self, u: int, v: int, delta: float) -> float:
        """Add ``delta`` to the weight of an existing edge; return the new weight."""
        key = canonical_edge(int(u), int(v))
        if key not in self._edges:
            raise KeyError(f"edge {key} not in graph")
        check_positive(delta, "delta")
        new_weight = self._edges[key] + delta
        self.set_weight(u, v, new_weight)
        return new_weight

    def increase_weights(self, pairs: Sequence[Edge], deltas: np.ndarray) -> None:
        """Add ``deltas[i]`` to the weight of existing edge ``pairs[i]`` (bulk).

        The batched similarity filter uses this to apply one aggregated
        weight redistribution per cluster instead of one Python call chain
        per edge.  All edges must exist and all deltas must be positive.
        """
        deltas = np.asarray(deltas, dtype=float)
        if len(pairs) != deltas.shape[0]:
            raise ValueError(f"{len(pairs)} pairs but {deltas.shape[0]} deltas")
        if deltas.size and (not np.all(np.isfinite(deltas)) or np.any(deltas <= 0)):
            raise ValueError("deltas must be positive and finite")
        edge_map = self._edges
        adjacency = self._adjacency
        touched = False
        try:
            for (u, v), delta in zip(pairs, deltas.tolist()):
                key = (u, v) if u <= v else (v, u)
                existing = edge_map.get(key)
                if existing is None:
                    raise KeyError(f"edge {key} not in graph")
                weight = existing + delta
                edge_map[key] = weight
                adjacency[key[0]][key[1]] = weight
                adjacency[key[1]][key[0]] = weight
                touched = True
        finally:
            # A missing edge raises mid-batch; the views must reflect the
            # weights updated before the failure.
            if touched:
                self._invalidate_views()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the edge ``(u, v)`` is present."""
        return canonical_edge(int(u), int(v)) in self._edges

    def weight(self, u: int, v: int, default: Optional[float] = None) -> float:
        """Return the weight of ``(u, v)``; ``default`` if absent (or raise)."""
        key = canonical_edge(int(u), int(v))
        if key in self._edges:
            return self._edges[key]
        if default is not None:
            return default
        raise KeyError(f"edge {key} not in graph")

    def neighbors(self, node: int) -> Dict[int, float]:
        """Return a copy of the ``{neighbor: weight}`` map of ``node``."""
        node = check_node_index(node, self._num_nodes)
        return dict(self._adjacency[node])

    def degree(self, node: int) -> int:
        """Return the number of incident edges of ``node``."""
        node = check_node_index(node, self._num_nodes)
        return len(self._adjacency[node])

    def weighted_degree(self, node: int) -> float:
        """Return the sum of incident edge weights of ``node``."""
        node = check_node_index(node, self._num_nodes)
        return float(sum(self._adjacency[node].values()))

    def degrees(self) -> np.ndarray:
        """Return the integer degree of every node as an array."""
        return np.array([len(adj) for adj in self._adjacency], dtype=np.int64)

    def weighted_degrees(self) -> np.ndarray:
        """Return the weighted degree of every node as an array."""
        return np.array([sum(adj.values()) for adj in self._adjacency], dtype=float)

    def edges(self) -> Iterator[Edge]:
        """Iterate over canonical ``(u, v)`` edge keys."""
        return iter(self._edges.keys())

    def weighted_edges(self) -> Iterator[WeightedEdge]:
        """Iterate over ``(u, v, weight)`` triples in canonical order."""
        return ((u, v, w) for (u, v), w in self._edges.items())

    def edge_list(self) -> List[WeightedEdge]:
        """Return the edges as a list of ``(u, v, weight)`` triples."""
        return [(u, v, w) for (u, v), w in self._edges.items()]

    def total_weight(self) -> float:
        """Return the sum of all edge weights."""
        return float(sum(self._edges.values()))

    def density(self) -> float:
        """Return the density ``|E| / |V|`` used by the paper's tables."""
        if self._num_nodes == 0:
            return 0.0
        return self.num_edges / self._num_nodes

    def relative_density(self, reference: "Graph") -> float:
        """Return ``|E| / |E_reference|`` — the percentages reported in Table II."""
        if reference.num_edges == 0:
            raise ValueError("reference graph has no edges")
        return self.num_edges / reference.num_edges

    # ------------------------------------------------------------------ #
    # Array / matrix views
    # ------------------------------------------------------------------ #
    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return parallel arrays ``(u, v, w)`` of all edges (canonical order).

        The arrays are cached until the next mutation and returned read-only,
        so repeated spectral algebra on an unchanged graph costs nothing.
        """
        if self._arrays_cache is None:
            m = self.num_edges
            if m:
                keys = np.fromiter(self._edges.keys(), dtype=np.dtype((np.int64, 2)), count=m)
                us = np.ascontiguousarray(keys[:, 0])
                vs = np.ascontiguousarray(keys[:, 1])
            else:
                us = np.empty(0, dtype=np.int64)
                vs = np.empty(0, dtype=np.int64)
            ws = np.fromiter(self._edges.values(), dtype=float, count=m)
            for array in (us, vs, ws):
                array.flags.writeable = False
            self._arrays_cache = (us, vs, ws)
        return self._arrays_cache

    def adjacency_matrix(self, dtype: type = float) -> sp.csr_matrix:
        """Return the symmetric weighted adjacency matrix in CSR form.

        The float CSR form is cached until the next mutation; callers receive
        a copy so they can scale/slice it freely.
        """
        if dtype is not float:
            return self._build_adjacency(dtype)
        if self._csr_cache is None:
            self._csr_cache = self._build_adjacency(float)
        return self._csr_cache.copy()

    def csr_view(self) -> sp.csr_matrix:
        """Return the cached float CSR adjacency WITHOUT copying.

        The returned matrix is shared with the cache and must be treated as
        read-only (slice it, never scale it in place).  Bulk readers on hot
        paths — incident-edge gathers, per-level splice batching — use this to
        avoid :meth:`adjacency_matrix`'s defensive copy on every call.
        """
        if self._csr_cache is None:
            self._csr_cache = self._build_adjacency(float)
        return self._csr_cache

    def _build_adjacency(self, dtype: type) -> sp.csr_matrix:
        us, vs, ws = self.edge_arrays()
        rows = np.concatenate([us, vs])
        cols = np.concatenate([vs, us])
        vals = np.concatenate([ws, ws]).astype(dtype)
        return sp.csr_matrix((vals, (rows, cols)), shape=(self._num_nodes, self._num_nodes))

    def laplacian_matrix(self, dtype: type = float) -> sp.csr_matrix:
        """Return the graph Laplacian ``L = D - A`` in CSR form."""
        adjacency = self.adjacency_matrix(dtype=dtype)
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        return (sp.diags(degrees) - adjacency).tocsr()

    def incidence_matrix(self) -> sp.csr_matrix:
        """Return the oriented edge-node incidence matrix ``B`` (|E| x |V|).

        Rows follow :meth:`edge_arrays` order; each row has ``+1`` at the
        smaller endpoint and ``-1`` at the larger one, so ``B^T W B = L``.
        """
        us, vs, _ = self.edge_arrays()
        m = self.num_edges
        rows = np.repeat(np.arange(m), 2)
        cols = np.empty(2 * m, dtype=np.int64)
        cols[0::2] = us
        cols[1::2] = vs
        vals = np.empty(2 * m, dtype=float)
        vals[0::2] = 1.0
        vals[1::2] = -1.0
        return sp.csr_matrix((vals, (rows, cols)), shape=(m, self._num_nodes))

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def copy(self) -> "Graph":
        """Return a deep copy of the graph."""
        clone = Graph(self._num_nodes)
        clone._edges = dict(self._edges)
        clone._adjacency = [dict(adj) for adj in self._adjacency]
        return clone

    def subgraph_from_edges(self, edges: Iterable[Edge]) -> "Graph":
        """Return a graph on the same node set containing only ``edges``.

        Edge weights are taken from this graph; unknown edges raise.
        """
        sub = Graph(self._num_nodes)
        for u, v in edges:
            sub.add_edge(u, v, self.weight(u, v), merge="error")
        return sub

    def union_with_edges(self, edges: Iterable[WeightedEdge], merge: str = "add") -> "Graph":
        """Return a copy of this graph with extra weighted edges merged in."""
        merged = self.copy()
        merged.add_edges(edges, merge=merge)
        return merged

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (weights under key ``"weight"``)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self._num_nodes))
        graph.add_weighted_edges_from(self.weighted_edges())
        return graph

    @classmethod
    def from_networkx(cls, nx_graph, weight_key: str = "weight", default_weight: float = 1.0) -> "Graph":
        """Build a :class:`Graph` from a networkx graph with integer-labelled nodes.

        Nodes are relabelled to ``0 .. n-1`` in sorted order of the original
        labels; the mapping is implicit (sorted order) so callers that need it
        should sort their own node list the same way.
        """
        nodes = sorted(nx_graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        graph = cls(len(nodes))
        for u, v, data in nx_graph.edges(data=True):
            if u == v:
                continue
            weight = float(data.get(weight_key, default_weight))
            graph.add_edge(index[u], index[v], weight, merge="add")
        return graph

    @classmethod
    def from_sparse(cls, matrix: sp.spmatrix) -> "Graph":
        """Build a graph from a symmetric sparse adjacency (or Laplacian) matrix.

        Off-diagonal entries are interpreted as adjacency weights using their
        absolute value, so both adjacency matrices and Laplacians are accepted.
        """
        matrix = sp.coo_matrix(matrix)
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square, got shape {matrix.shape}")
        graph = cls(matrix.shape[0])
        for i, j, value in zip(matrix.row, matrix.col, matrix.data):
            if i < j and value != 0.0:
                graph.add_edge(int(i), int(j), abs(float(value)), merge="replace")
        return graph

    # ------------------------------------------------------------------ #
    # Equality (useful in tests)
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self._num_nodes != other._num_nodes or self.num_edges != other.num_edges:
            return False
        for key, weight in self._edges.items():
            other_weight = other._edges.get(key)
            if other_weight is None or not np.isclose(weight, other_weight):
                return False
        return True

    def __hash__(self) -> int:  # Graphs are mutable; identity hash.
        return id(self)


class FrozenGraphError(RuntimeError):
    """Raised when a mutating operation is attempted on a :class:`FrozenGraph`."""


class FrozenGraph(Graph):
    """An immutable :class:`Graph` view, as handed out by snapshots.

    Every mutating method raises :class:`FrozenGraphError`; all queries,
    array/matrix views and spectral algebra behave exactly like the mutable
    graph they were captured from.  :meth:`copy` is the escape hatch — it
    returns a plain mutable :class:`Graph` with the same edges, leaving the
    frozen view (and the writer it was captured from) untouched.
    """

    _MUTATION_ERROR = ("this graph is a frozen snapshot view; call .copy() for a "
                       "mutable Graph instead of mutating the snapshot")

    @classmethod
    def from_arrays(cls, num_nodes: int, us: np.ndarray, vs: np.ndarray,
                    ws: np.ndarray) -> "FrozenGraph":
        """Build a frozen graph from canonical parallel edge arrays.

        ``us``/``vs`` must already be canonically oriented (``u <= v``) and
        duplicate-free — exactly what :meth:`Graph.edge_arrays` returns — and
        the arrays are adopted as the frozen graph's cached views without a
        copy, so construction shares the caller's buffers.
        """
        frozen = cls(num_nodes)
        edge_map = frozen._edges
        adjacency = frozen._adjacency
        for u, v, w in zip(us.tolist(), vs.tolist(), ws.tolist()):
            edge_map[(u, v)] = w
            adjacency[u][v] = w
            adjacency[v][u] = w
        for array in (us, vs, ws):
            array.flags.writeable = False
        frozen._arrays_cache = (us, vs, ws)
        return frozen

    def __init__(self, num_nodes: int, edges: Optional[Iterable[WeightedEdge]] = None) -> None:
        # Populate through the mutable base class, then freeze.
        self._frozen = False
        super().__init__(num_nodes, edges)
        self._frozen = True

    def _refuse_mutation(self) -> None:
        if getattr(self, "_frozen", False):
            raise FrozenGraphError(self._MUTATION_ERROR)

    # Every mutator funnels through one of these entry points.
    def add_edge(self, u: int, v: int, weight: float = 1.0, merge: str = "add") -> None:
        self._refuse_mutation()
        super().add_edge(u, v, weight, merge)

    def add_edges(self, edges: Iterable[WeightedEdge], merge: str = "add") -> None:
        self._refuse_mutation()
        super().add_edges(edges, merge)

    def add_edge_unchecked(self, u: int, v: int, weight: float) -> None:
        self._refuse_mutation()
        super().add_edge_unchecked(u, v, weight)

    def remove_edge(self, u: int, v: int) -> float:
        self._refuse_mutation()
        return super().remove_edge(u, v)

    def remove_edges(self, pairs: Iterable[Edge]) -> List[WeightedEdge]:
        self._refuse_mutation()
        return super().remove_edges(pairs)

    def set_weight(self, u: int, v: int, weight: float) -> None:
        self._refuse_mutation()
        super().set_weight(u, v, weight)

    def increase_weights(self, pairs: Sequence[Edge], deltas: np.ndarray) -> None:
        self._refuse_mutation()
        super().increase_weights(pairs, deltas)

    # scale_weight / increase_weight delegate to set_weight and are covered.

    def copy(self) -> Graph:
        """Return a *mutable* :class:`Graph` copy (the thaw operation)."""
        clone = Graph(self._num_nodes)
        clone._edges = dict(self._edges)
        clone._adjacency = [dict(adj) for adj in self._adjacency]
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FrozenGraph(num_nodes={self._num_nodes}, num_edges={self.num_edges})"
