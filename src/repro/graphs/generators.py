"""Synthetic graph generators.

The paper evaluates on SuiteSparse matrices (circuit simulation grids,
finite-element meshes, Delaunay triangulations and large 2-D meshes).  Those
files are not available offline, so the benchmark harness substitutes
structurally analogous synthetic graphs produced here:

* :func:`grid_circuit_2d` / :func:`grid_circuit_3d` — resistor-grid power
  networks with randomised conductances and a sprinkling of long-range "via"
  connections (analogues of ``G2_circuit`` / ``G3_circuit``).
* :func:`delaunay_graph` — Delaunay triangulation of uniform random points
  (analogues of ``delaunay_n18`` … ``delaunay_n22``).
* :func:`fe_mesh_2d`, :func:`fe_mesh_3d`, :func:`sphere_mesh`,
  :func:`airfoil_mesh` — finite-element style meshes (analogues of
  ``fe_4elt2``, ``fe_ocean``, ``fe_sphere``, ``NACA15`` / ``M6`` / ``AS365`` /
  ``333SP``).
* :func:`watts_strogatz_graph`, :func:`barabasi_albert_graph` — the "social
  networks" family mentioned in the abstract.

All generators return connected :class:`repro.graphs.Graph` instances with
strictly positive weights, and every one accepts a ``seed`` for
reproducibility.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
import scipy.spatial

from repro.graphs.components import is_connected
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive, check_positive_int, check_probability


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def _random_weights(rng: np.random.Generator, count: int, low: float, high: float) -> np.ndarray:
    """Draw ``count`` log-uniform weights in ``[low, high]``.

    Circuit conductances span orders of magnitude, which log-uniform sampling
    mimics better than uniform sampling.
    """
    if low <= 0 or high < low:
        raise ValueError(f"invalid weight range [{low}, {high}]")
    if count == 0:
        return np.empty(0)
    return np.exp(rng.uniform(math.log(low), math.log(high), size=count))


def _ensure_connected(graph: Graph, rng: np.random.Generator, weight: float = 1.0) -> Graph:
    """Stitch connected components together with random bridge edges."""
    if is_connected(graph):
        return graph
    from repro.graphs.components import connected_components

    labels = connected_components(graph)
    num_components = int(labels.max()) + 1
    representatives = [int(np.flatnonzero(labels == c)[0]) for c in range(num_components)]
    for first, second in zip(representatives[:-1], representatives[1:]):
        graph.add_edge(first, second, weight, merge="add")
    return graph


def _grid_index_2d(row: int, col: int, cols: int) -> int:
    return row * cols + col


# --------------------------------------------------------------------------- #
# Circuit-style grids
# --------------------------------------------------------------------------- #
def grid_circuit_2d(
    rows: int,
    cols: Optional[int] = None,
    *,
    via_fraction: float = 0.02,
    weight_range: Tuple[float, float] = (0.1, 10.0),
    seed: SeedLike = None,
) -> Graph:
    """2-D resistor-grid circuit analogue of ``G2_circuit``.

    Nodes form a ``rows x cols`` lattice connected by nearest-neighbour
    resistors with log-uniform conductances; ``via_fraction * |E|`` extra
    random long-range edges model vias/straps that make power grids slightly
    non-planar.
    """
    rows = check_positive_int(rows, "rows")
    cols = rows if cols is None else check_positive_int(cols, "cols")
    check_probability(via_fraction, "via_fraction")
    rng = as_rng(seed)
    num_nodes = rows * cols
    graph = Graph(num_nodes)

    horizontal = [
        (_grid_index_2d(r, c, cols), _grid_index_2d(r, c + 1, cols))
        for r in range(rows)
        for c in range(cols - 1)
    ]
    vertical = [
        (_grid_index_2d(r, c, cols), _grid_index_2d(r + 1, c, cols))
        for r in range(rows - 1)
        for c in range(cols)
    ]
    lattice_edges = horizontal + vertical
    weights = _random_weights(rng, len(lattice_edges), *weight_range)
    for (u, v), w in zip(lattice_edges, weights):
        graph.add_edge(u, v, float(w))

    num_vias = int(round(via_fraction * len(lattice_edges)))
    via_weights = _random_weights(rng, num_vias, *weight_range)
    added = 0
    attempts = 0
    while added < num_vias and attempts < 20 * max(1, num_vias):
        attempts += 1
        u, v = rng.integers(0, num_nodes, size=2)
        if u == v or graph.has_edge(int(u), int(v)):
            continue
        graph.add_edge(int(u), int(v), float(via_weights[added]))
        added += 1
    return _ensure_connected(graph, rng)


def grid_circuit_3d(
    nx: int,
    ny: Optional[int] = None,
    nz: int = 3,
    *,
    weight_range: Tuple[float, float] = (0.1, 10.0),
    seed: SeedLike = None,
) -> Graph:
    """3-D (multi-layer) resistor grid — analogue of ``G3_circuit``.

    Models a power delivery network with ``nz`` metal layers; in-layer wires
    follow a 2-D lattice and inter-layer vias connect vertically adjacent
    nodes.
    """
    nx = check_positive_int(nx, "nx")
    ny = nx if ny is None else check_positive_int(ny, "ny")
    nz = check_positive_int(nz, "nz")
    rng = as_rng(seed)
    num_nodes = nx * ny * nz
    graph = Graph(num_nodes)

    def index(x: int, y: int, z: int) -> int:
        return (z * ny + y) * nx + x

    edges = []
    for z in range(nz):
        for y in range(ny):
            for x in range(nx):
                if x + 1 < nx:
                    edges.append((index(x, y, z), index(x + 1, y, z)))
                if y + 1 < ny:
                    edges.append((index(x, y, z), index(x, y + 1, z)))
                if z + 1 < nz:
                    edges.append((index(x, y, z), index(x, y, z + 1)))
    weights = _random_weights(rng, len(edges), *weight_range)
    for (u, v), w in zip(edges, weights):
        graph.add_edge(u, v, float(w))
    return _ensure_connected(graph, rng)


# --------------------------------------------------------------------------- #
# Delaunay / finite element meshes
# --------------------------------------------------------------------------- #
def _graph_from_simplices(points: np.ndarray, simplices: np.ndarray, rng: np.random.Generator,
                          weight_mode: str = "inverse_distance") -> Graph:
    """Build a graph from triangulation simplices.

    Edge weights follow ``weight_mode``:

    * ``"inverse_distance"`` — ``1 / (distance + eps)``, the natural FEM
      stiffness-like weighting where short edges are strong.
    * ``"unit"`` — all weights 1.
    * ``"random"`` — log-uniform in ``[0.1, 10]``.
    """
    num_nodes = points.shape[0]
    graph = Graph(num_nodes)
    edge_set = set()
    dim = simplices.shape[1]
    for simplex in simplices:
        for i in range(dim):
            for j in range(i + 1, dim):
                u, v = int(simplex[i]), int(simplex[j])
                if u == v:
                    continue
                key = (u, v) if u < v else (v, u)
                edge_set.add(key)
    edges = sorted(edge_set)
    if weight_mode == "inverse_distance":
        lengths = np.array([np.linalg.norm(points[u] - points[v]) for u, v in edges])
        scale = np.median(lengths) if lengths.size else 1.0
        weights = scale / (lengths + 1e-12)
    elif weight_mode == "unit":
        weights = np.ones(len(edges))
    elif weight_mode == "random":
        weights = _random_weights(rng, len(edges), 0.1, 10.0)
    else:
        raise ValueError(f"unknown weight_mode {weight_mode!r}")
    for (u, v), w in zip(edges, weights):
        graph.add_edge(u, v, float(w))
    return graph


def delaunay_graph(num_nodes: int, *, weight_mode: str = "unit",
                   seed: SeedLike = None) -> Graph:
    """Delaunay triangulation of uniform random points in the unit square.

    Structural analogue of the ``delaunay_nXX`` SuiteSparse family.  The
    SuiteSparse originals are unweighted patterns, so weights default to 1;
    pass ``weight_mode="inverse_distance"`` for a geometric weighting.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    if num_nodes < 4:
        raise ValueError("delaunay_graph needs at least 4 nodes")
    rng = as_rng(seed)
    points = rng.uniform(0.0, 1.0, size=(num_nodes, 2))
    triangulation = scipy.spatial.Delaunay(points)
    graph = _graph_from_simplices(points, triangulation.simplices, rng, weight_mode)
    return _ensure_connected(graph, rng)


def fe_mesh_2d(num_nodes: int, *, irregularity: float = 0.3, weight_mode: str = "unit",
               seed: SeedLike = None) -> Graph:
    """2-D finite-element style mesh (analogue of ``fe_4elt2`` / ``NACA15``).

    Points are laid out on a jittered lattice (so element quality resembles a
    real mesh rather than a uniform random cloud) and triangulated.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    check_probability(irregularity, "irregularity")
    rng = as_rng(seed)
    side = max(2, int(round(math.sqrt(num_nodes))))
    xs, ys = np.meshgrid(np.linspace(0.0, 1.0, side), np.linspace(0.0, 1.0, side))
    points = np.column_stack([xs.ravel(), ys.ravel()])
    jitter = irregularity / side
    points = points + rng.uniform(-jitter, jitter, size=points.shape)
    points = points[:num_nodes] if points.shape[0] >= num_nodes else points
    triangulation = scipy.spatial.Delaunay(points)
    graph = _graph_from_simplices(points, triangulation.simplices, rng, weight_mode)
    return _ensure_connected(graph, rng)


def fe_mesh_3d(num_nodes: int, *, weight_mode: str = "unit", seed: SeedLike = None) -> Graph:
    """3-D tetrahedral mesh (analogue of ``fe_ocean``)."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    if num_nodes < 5:
        raise ValueError("fe_mesh_3d needs at least 5 nodes")
    rng = as_rng(seed)
    points = rng.uniform(0.0, 1.0, size=(num_nodes, 3))
    triangulation = scipy.spatial.Delaunay(points)
    graph = _graph_from_simplices(points, triangulation.simplices, rng, weight_mode)
    return _ensure_connected(graph, rng)


def sphere_mesh(num_nodes: int, *, weight_mode: str = "unit", seed: SeedLike = None) -> Graph:
    """Triangulated mesh on the unit sphere (analogue of ``fe_sphere``).

    Points are sampled uniformly on the sphere and connected through the
    convex-hull triangulation, which for points on a sphere is exactly the
    spherical Delaunay triangulation.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    if num_nodes < 5:
        raise ValueError("sphere_mesh needs at least 5 nodes")
    rng = as_rng(seed)
    points = rng.standard_normal(size=(num_nodes, 3))
    points /= np.linalg.norm(points, axis=1, keepdims=True)
    hull = scipy.spatial.ConvexHull(points)
    graph = _graph_from_simplices(points, hull.simplices, rng, weight_mode)
    return _ensure_connected(graph, rng)


def airfoil_mesh(num_nodes: int, *, weight_mode: str = "unit", seed: SeedLike = None) -> Graph:
    """Anisotropic mesh refined around an airfoil-like profile (``NACA15`` analogue).

    Half of the points are concentrated in a thin band around a camber line so
    that element sizes vary by orders of magnitude, reproducing the strongly
    graded meshes used for aerodynamic simulation.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    if num_nodes < 16:
        raise ValueError("airfoil_mesh needs at least 16 nodes")
    rng = as_rng(seed)
    num_near = num_nodes // 2
    num_far = num_nodes - num_near
    # Thin band of points hugging a parabolic camber line.
    x_near = rng.uniform(0.2, 0.8, size=num_near)
    camber = 0.5 + 0.1 * np.sin(math.pi * (x_near - 0.2) / 0.6)
    y_near = camber + rng.normal(scale=0.01, size=num_near)
    near = np.column_stack([x_near, y_near])
    far = rng.uniform(0.0, 1.0, size=(num_far, 2))
    points = np.vstack([near, far])
    triangulation = scipy.spatial.Delaunay(points)
    graph = _graph_from_simplices(points, triangulation.simplices, rng, weight_mode)
    return _ensure_connected(graph, rng)


# --------------------------------------------------------------------------- #
# Social-network style graphs
# --------------------------------------------------------------------------- #
def watts_strogatz_graph(num_nodes: int, k: int = 6, rewire_probability: float = 0.1,
                         *, seed: SeedLike = None) -> Graph:
    """Small-world graph (Watts–Strogatz), unit weights."""
    import networkx as nx

    num_nodes = check_positive_int(num_nodes, "num_nodes")
    k = check_positive_int(k, "k")
    check_probability(rewire_probability, "rewire_probability")
    rng = as_rng(seed)
    nx_seed = int(rng.integers(0, 2**31 - 1))
    nx_graph = nx.connected_watts_strogatz_graph(num_nodes, k, rewire_probability, seed=nx_seed)
    return Graph.from_networkx(nx_graph, default_weight=1.0)


def barabasi_albert_graph(num_nodes: int, attachment: int = 3, *, seed: SeedLike = None) -> Graph:
    """Preferential-attachment graph (Barabási–Albert), unit weights."""
    import networkx as nx

    num_nodes = check_positive_int(num_nodes, "num_nodes")
    attachment = check_positive_int(attachment, "attachment")
    rng = as_rng(seed)
    nx_seed = int(rng.integers(0, 2**31 - 1))
    nx_graph = nx.barabasi_albert_graph(num_nodes, attachment, seed=nx_seed)
    graph = Graph.from_networkx(nx_graph, default_weight=1.0)
    return _ensure_connected(graph, rng)


def random_regular_graph(num_nodes: int, degree: int = 4, *, seed: SeedLike = None) -> Graph:
    """Random regular graph with unit weights (expander-like test case)."""
    import networkx as nx

    num_nodes = check_positive_int(num_nodes, "num_nodes")
    degree = check_positive_int(degree, "degree")
    if degree >= num_nodes:
        raise ValueError("degree must be smaller than num_nodes")
    if (num_nodes * degree) % 2 != 0:
        num_nodes += 1
    rng = as_rng(seed)
    nx_seed = int(rng.integers(0, 2**31 - 1))
    nx_graph = nx.random_regular_graph(degree, num_nodes, seed=nx_seed)
    graph = Graph.from_networkx(nx_graph, default_weight=1.0)
    return _ensure_connected(graph, rng)


def path_graph(num_nodes: int, weight: float = 1.0) -> Graph:
    """Simple path ``0 - 1 - ... - n-1`` (handy in unit tests)."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    check_positive(weight, "weight")
    graph = Graph(num_nodes)
    for i in range(num_nodes - 1):
        graph.add_edge(i, i + 1, weight)
    return graph


def cycle_graph(num_nodes: int, weight: float = 1.0) -> Graph:
    """Simple cycle on ``num_nodes`` nodes."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    if num_nodes < 3:
        raise ValueError("cycle_graph needs at least 3 nodes")
    graph = path_graph(num_nodes, weight)
    graph.add_edge(num_nodes - 1, 0, weight)
    return graph


def complete_graph(num_nodes: int, weight: float = 1.0) -> Graph:
    """Complete graph (small sizes only; used to sanity-check resistances)."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    graph = Graph(num_nodes)
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            graph.add_edge(u, v, weight)
    return graph


def star_graph(num_leaves: int, weight: float = 1.0) -> Graph:
    """Star graph: node 0 connected to ``num_leaves`` leaves."""
    num_leaves = check_positive_int(num_leaves, "num_leaves")
    graph = Graph(num_leaves + 1)
    for leaf in range(1, num_leaves + 1):
        graph.add_edge(0, leaf, weight)
    return graph


def paper_figure2_graph() -> Graph:
    """The 14-node example sketched in Fig. 2/3 of the paper.

    The exact instance in the paper is only drawn, not listed, so this builds
    a comparable 14-node mesh-like sparsifier: two loosely connected clusters
    of 7 nodes each, used by the walkthrough examples and the filtering unit
    tests.
    """
    edges = [
        # Cluster A: nodes 0-6 (paper nodes 1-7)
        (0, 1, 2.0), (1, 2, 1.5), (2, 3, 1.0), (3, 4, 2.0),
        (4, 5, 1.0), (5, 6, 1.5), (6, 0, 1.0), (1, 4, 0.5),
        # Cluster B: nodes 7-13 (paper nodes 8-14)
        (7, 8, 2.0), (8, 9, 1.5), (9, 10, 1.0), (10, 11, 2.0),
        (11, 12, 1.0), (12, 13, 1.5), (13, 7, 1.0), (8, 11, 0.5),
        # Weak bridge between the clusters
        (3, 9, 0.2),
    ]
    return Graph(14, edges)
