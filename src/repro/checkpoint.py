"""Versioned checkpoint format for :class:`~repro.core.incremental.InGrassSparsifier`.

A checkpoint is a *directory* holding two files:

``manifest.json``
    Everything JSON-able: the format version, the driver class name, the
    full :class:`~repro.core.config.InGrassConfig` (so a restored driver
    runs under exactly the configuration it was saved under), the version
    epoch, the pinned filtering level, the per-iteration history, the
    hierarchy's staleness/version counters and the driver-specific
    ``extra`` blob from ``_checkpoint_runtime_state``.

``arrays.npz``
    Every array: tracked graph and sparsifier edge lists (**in dict
    insertion order** — replaying them through ``add_edge_unchecked``
    reproduces the exact ``_edges`` dicts, which is what makes the
    restored run's continuation byte-identical, κ history included), the
    LRD embedding matrix, per-level cluster diameters, and driver-specific
    arrays prefixed ``extra_``.

What is deliberately **not** serialised: the similarity filter's
cluster-pair map and the resistance embedding. Both are pure functions of
the state that *is* serialised (sparsifier edges + hierarchy labels) and
are rebuilt decision-identically on first use — shipping them would only
add a second source of truth that could drift from the arrays.

The format is self-describing and strict: ``format_version`` is checked on
load and a mismatch raises — a stale reader never silently misinterprets a
newer layout.  Checkpoints contain no timestamps, so saving the same state
twice produces the same manifest.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, replace
from typing import Union

import numpy as np

from repro.core.config import InGrassConfig, LRDConfig
from repro.core.embedding import ResistanceEmbedding
from repro.core.hierarchy import ClusterHierarchy
from repro.core.incremental import InGrassSparsifier, IterationRecord
from repro.core.setup import SetupResult
from repro.graphs.graph import Graph
from repro.utils.logging import get_logger

logger = get_logger("checkpoint")

#: Bump on any layout change; readers reject versions they do not know.
CHECKPOINT_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_ARRAYS = "arrays.npz"

PathLike = Union[str, "os.PathLike[str]"]


def _edge_triplet(graph: Graph, prefix: str) -> dict:
    """The graph's edges as three parallel arrays, dict insertion order."""
    us, vs, ws = graph.edge_arrays()
    return {f"{prefix}_us": np.asarray(us, dtype=np.int64),
            f"{prefix}_vs": np.asarray(vs, dtype=np.int64),
            f"{prefix}_ws": np.asarray(ws, dtype=np.float64)}


def _rebuild_graph(num_nodes: int, data, prefix: str) -> Graph:
    """Inverse of :func:`_edge_triplet`: replay edges in saved order."""
    graph = Graph(int(num_nodes))
    us = data[f"{prefix}_us"]
    vs = data[f"{prefix}_vs"]
    ws = data[f"{prefix}_ws"]
    for u, v, w in zip(us.tolist(), vs.tolist(), ws.tolist()):
        graph.add_edge_unchecked(u, v, w)
    return graph


def save_checkpoint(driver: InGrassSparsifier, path: PathLike) -> None:
    """Write ``driver``'s full state to the directory ``path``.

    ``path`` is created if missing; an existing checkpoint there is
    overwritten atomically enough for the single-writer use case (manifest
    last, so a torn write leaves a manifest/arrays pair that fails the
    format check rather than restoring silently wrong state).
    """
    driver._require_setup()
    assert driver._graph is not None and driver._sparsifier is not None
    assert driver._setup is not None
    extra, extra_arrays = driver._checkpoint_runtime_state()
    hierarchy_state = driver._setup.hierarchy.checkpoint_state()
    pinned = driver._resolved_config()

    arrays: dict = {}
    arrays.update(_edge_triplet(driver._graph, "graph"))
    arrays.update(_edge_triplet(driver._sparsifier, "sp"))
    arrays["hier_embedding"] = hierarchy_state["embedding"]
    for index, diameters in enumerate(hierarchy_state["cluster_diameters"]):
        arrays[f"hier_diam_{index}"] = np.asarray(diameters, dtype=np.float64)
    for name, array in extra_arrays.items():
        arrays[f"extra_{name}"] = array

    manifest = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "driver_class": type(driver).__name__,
        "config": asdict(driver.config),
        "num_nodes": int(driver._graph.num_nodes),
        "version": int(driver._version),
        "target_condition_number": driver._target_condition,
        "filtering_level": pinned.filtering_level,
        "history": [asdict(record) for record in driver._history],
        "total_update_seconds": float(driver._total_update_seconds),
        "full_resetups": int(driver._full_resetups),
        "resetup_seconds": float(driver._resetup_seconds),
        "setup_seconds": float(driver._setup.setup_seconds),
        "num_levels": int(driver._setup.num_levels),
        "hierarchy": {
            "num_levels": len(hierarchy_state["cluster_diameters"]),
            "diameter_thresholds": hierarchy_state["diameter_thresholds"],
            "noted_removals": hierarchy_state["noted_removals"],
            "version": hierarchy_state["version"],
            "labels_version": hierarchy_state["labels_version"],
            "level_labels_versions": hierarchy_state["level_labels_versions"],
            "inflation_ceiling": hierarchy_state["inflation_ceiling"],
        },
        "extra": extra,
    }

    os.makedirs(path, exist_ok=True)
    np.savez_compressed(os.path.join(path, _ARRAYS), **arrays)
    # Manifest last, and atomically (write-then-rename): the HTTP server
    # saves into a directory other processes may be inspecting or restoring
    # from concurrently — a reader must see either the previous complete
    # checkpoint or the new one, never a torn manifest.
    manifest_path = os.path.join(path, _MANIFEST)
    staging_path = manifest_path + ".tmp"
    with open(staging_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(staging_path, manifest_path)
    logger.info(
        "checkpoint saved to %s (version epoch %d, %d sparsifier edges)",
        path, manifest["version"], int(arrays["sp_us"].shape[0]),
    )


def _read_manifest(path: PathLike) -> dict:
    manifest_path = os.path.join(path, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise FileNotFoundError(f"no checkpoint manifest at {manifest_path}")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    found = manifest.get("format_version")
    if found != CHECKPOINT_FORMAT_VERSION:
        raise ValueError(
            f"checkpoint at {path} has format version {found!r}; this reader "
            f"understands {CHECKPOINT_FORMAT_VERSION}"
        )
    return manifest


def _config_from_manifest(manifest: dict) -> InGrassConfig:
    config_dict = dict(manifest["config"])
    lrd = LRDConfig(**config_dict.pop("lrd"))
    # Both `executor` and its legacy mirror `shard_mode` were saved, so
    # reconstruction never trips the deprecation warning.
    return InGrassConfig(lrd=lrd, **config_dict)


def is_checkpoint(path: PathLike) -> bool:
    """Whether ``path`` looks like a checkpoint directory (manifest present)."""
    return os.path.exists(os.path.join(path, _MANIFEST))


def describe_checkpoint(path: PathLike) -> dict:
    """Summarise a checkpoint without rebuilding the driver (CLI ``info``)."""
    manifest = _read_manifest(path)
    with np.load(os.path.join(path, _ARRAYS)) as data:
        graph_edges = int(data["graph_us"].shape[0])
        sparsifier_edges = int(data["sp_us"].shape[0])
    config = manifest["config"]
    summary = {
        "format_version": manifest["format_version"],
        "driver_class": manifest["driver_class"],
        "num_nodes": manifest["num_nodes"],
        "graph_edges": graph_edges,
        "sparsifier_edges": sparsifier_edges,
        "version": manifest["version"],
        "iterations": len(manifest["history"]),
        "filtering_level": manifest["filtering_level"],
        "target_condition_number": manifest["target_condition_number"],
        "executor": config.get("executor"),
        "num_shards": config.get("num_shards"),
        "hierarchy_mode": config.get("hierarchy_mode"),
        "num_levels": manifest["num_levels"],
    }
    sharding = manifest.get("extra", {}).get("sharding")
    if sharding:
        summary["plan_shards"] = sharding["num_shards"]
        summary["replans"] = sharding["replans"]
    return summary


def load_checkpoint(path: PathLike) -> InGrassSparsifier:
    """Rebuild a driver from the checkpoint directory ``path``.

    The restored driver continues byte-identically to the saved one: graphs
    are replayed in saved edge order (dict order preserved), the hierarchy
    is rebuilt from its level arrays with every staleness counter restored,
    and the driver-specific ``extra`` state (shard plan, replan policy
    accumulators, maintainer counters, pending splices) lands through
    ``_restore_runtime_state``.  No LRD re-run, no re-planning.
    """
    manifest = _read_manifest(path)
    config = _config_from_manifest(manifest)
    driver = InGrassSparsifier.from_config(config)

    with np.load(os.path.join(path, _ARRAYS)) as data:
        num_nodes = int(manifest["num_nodes"])
        graph = _rebuild_graph(num_nodes, data, "graph")
        sparsifier = _rebuild_graph(num_nodes, data, "sp")
        hier = manifest["hierarchy"]
        diameters = [data[f"hier_diam_{index}"]
                     for index in range(int(hier["num_levels"]))]
        hierarchy = ClusterHierarchy.from_level_arrays(
            data["hier_embedding"], diameters, hier["diameter_thresholds"])
        extra_arrays = {name[len("extra_"):]: data[name].copy()
                        for name in data.files if name.startswith("extra_")}

    hierarchy.restore_counters(
        noted_removals=hier["noted_removals"],
        version=hier["version"],
        labels_version=hier["labels_version"],
        level_labels_versions=hier["level_labels_versions"],
        inflation_ceiling=hier["inflation_ceiling"],
    )

    driver._graph = graph
    driver._sparsifier = sparsifier
    driver._setup = SetupResult(
        hierarchy=hierarchy,
        embedding=ResistanceEmbedding(hierarchy),
        setup_seconds=float(manifest["setup_seconds"]),
        num_levels=int(manifest["num_levels"]),
    )
    target = manifest["target_condition_number"]
    driver._target_condition = float(target) if target is not None else None
    level = manifest["filtering_level"]
    driver._pinned_config = (config if config.filtering_level == level
                             else replace(config, filtering_level=level))
    driver._history = [IterationRecord(**record) for record in manifest["history"]]
    driver._total_update_seconds = float(manifest["total_update_seconds"])
    driver._full_resetups = int(manifest["full_resetups"])
    driver._resetup_seconds = float(manifest["resetup_seconds"])
    driver._version = int(manifest["version"])

    driver._restore_runtime_state(manifest.get("extra", {}), extra_arrays)
    logger.info(
        "checkpoint restored from %s (version epoch %d, %d sparsifier edges)",
        path, driver._version, sparsifier.num_edges,
    )
    return driver
