"""Low-resistance-diameter (LRD) decomposition (Section III-B-2 of the paper).

The decomposition iteratively contracts the initial sparsifier into node
clusters whose effective-resistance diameter stays below a per-level
threshold:

* **(S1)** estimate the effective resistance of every edge of the current
  (contracted) sparsifier with the scalable embedding of Section III-B-1;
* **(S2)** contract edges in order of increasing resistance, merging two
  clusters only when the merged resistance diameter stays below the level's
  threshold (cluster diameters start at 0 for all singleton nodes);
* **(S3)** replace each contracted cluster with a supernode, aggregate
  parallel edges, carry the accumulated cluster diameters over, double the
  diameter threshold and move on to the next level.

After ``O(log N)`` levels every node carries one cluster index per level —
its resistance embedding vector — and the per-level cluster diameters give
the resistance upper bounds used by the update phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import LRDConfig
from repro.core.hierarchy import ClusterHierarchy, LRDLevel
from repro.graphs.graph import Graph
from repro.graphs.unionfind import UnionFind
from repro.spectral.effective_resistance import make_resistance_calculator


@dataclass
class _ContractionState:
    """Working state carried between levels of the decomposition."""

    graph: Graph                 # current contracted sparsifier
    node_labels: np.ndarray      # original node -> current supernode
    diameters: np.ndarray        # resistance diameter carried by each supernode


def _estimate_edge_resistances(graph: Graph, config: LRDConfig, level_index: int) -> np.ndarray:
    """Resistance estimate of every edge of ``graph`` (S1)."""
    if graph.num_edges == 0:
        return np.zeros(0)
    if graph.num_nodes < 3:
        # Tiny contracted graphs: series formula is exact enough.
        _, _, weights = graph.edge_arrays()
        return 1.0 / weights
    calculator = make_resistance_calculator(
        graph,
        config.resistance_method,
        order=config.resistance_order,
        seed=(config.seed if not isinstance(config.seed, np.random.Generator) else config.seed),
    )
    resistances = calculator.edge_resistances()
    # Effective resistance of an edge can never exceed the edge's own
    # resistance (1/w); clamping repairs approximation overshoot.
    _, _, weights = graph.edge_arrays()
    return np.minimum(np.maximum(resistances, 0.0), 1.0 / weights)


def _contract_level(state: _ContractionState, edge_resistances: np.ndarray,
                    threshold: float) -> Tuple[np.ndarray, np.ndarray, int]:
    """Greedy bounded-diameter contraction (S2).

    Returns ``(new_labels_for_current_nodes, new_cluster_diameters, merges)``.
    """
    current = state.graph
    us, vs, _ = current.edge_arrays()
    order = np.argsort(edge_resistances, kind="stable")
    uf = UnionFind(current.num_nodes)
    diameters: Dict[int, float] = {node: float(state.diameters[node]) for node in range(current.num_nodes)}
    merges = 0
    for index in order:
        u, v = int(us[index]), int(vs[index])
        root_u, root_v = uf.find(u), uf.find(v)
        if root_u == root_v:
            continue
        merged_diameter = diameters[root_u] + diameters[root_v] + float(edge_resistances[index])
        if merged_diameter > threshold:
            continue
        uf.union(root_u, root_v)
        new_root = uf.find(root_u)
        diameters[new_root] = merged_diameter
        merges += 1
    labels = uf.labels(compact=True)
    num_clusters = int(labels.max()) + 1 if labels.size else 0
    cluster_diameters = np.zeros(num_clusters)
    for node in range(current.num_nodes):
        cluster = int(labels[node])
        cluster_diameters[cluster] = max(cluster_diameters[cluster], diameters[uf.find(node)])
    return labels, cluster_diameters, merges


def _build_quotient(current: Graph, labels: np.ndarray, num_clusters: int) -> Graph:
    """Contract clusters into supernodes, merging parallel edges by weight sum (S3)."""
    quotient = Graph(num_clusters)
    for u, v, w in current.weighted_edges():
        cu, cv = int(labels[u]), int(labels[v])
        if cu != cv:
            quotient.add_edge(cu, cv, w, merge="add")
    return quotient


def _initial_threshold(graph: Graph, config: LRDConfig) -> float:
    """Level-0 diameter threshold (median edge resistance unless configured)."""
    if config.initial_diameter is not None:
        return config.initial_diameter
    _, _, weights = graph.edge_arrays()
    if weights.size == 0:
        return 1.0
    return float(np.median(1.0 / weights))


# --------------------------------------------------------------------------- #
# Localized re-decomposition (maintenance support)
# --------------------------------------------------------------------------- #
def induced_subgraph(graph: Graph, nodes: np.ndarray) -> Tuple[Graph, np.ndarray]:
    """Return the subgraph induced by ``nodes`` plus the original-id mapping.

    The subgraph relabels ``nodes`` to ``0 .. k-1`` (in input order); the
    returned array maps local ids back to the original ones.  Only edges with
    *both* endpoints inside ``nodes`` are kept, so by Rayleigh monotonicity
    every effective resistance measured on the subgraph upper-bounds the
    resistance between the same nodes in the full graph.

    The adjacency structures are filled directly (the inputs come from a
    validated :class:`Graph`, re-validating every edge would dominate the
    maintenance layer's splice cost).
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    local = {int(node): index for index, node in enumerate(nodes.tolist())}
    sub = Graph(nodes.shape[0])
    edge_map = sub._edges
    adjacency = sub._adjacency
    source_adjacency = graph._adjacency
    for node, index in local.items():
        for neighbor, weight in source_adjacency[node].items():
            other = local.get(int(neighbor))
            if other is not None and index < other:
                edge_map[(index, other)] = weight
                adjacency[index][other] = weight
                adjacency[other][index] = weight
    sub._invalidate_views()
    return sub, nodes


def _tree_diameter_bound_csr(adjacency) -> float:
    """Resistance-diameter upper bound via a minimum-resistance spanning tree.

    For any spanning tree ``T`` of the (connected) subgraph, the effective
    resistance between two nodes is at most the series resistance of their
    tree path, so the longest tree path under ``1/w`` edge lengths bounds the
    resistance diameter.  The tree minimising total resistance keeps the
    bound reasonably tight; MST and the classic double-sweep diameter both
    run in scipy's C layer, which is what makes this the cheap path for
    clusters too large for exact all-pairs resistances.

    ``adjacency`` is the symmetric weighted CSR adjacency of the subgraph; it
    is not modified.
    """
    from scipy.sparse.csgraph import dijkstra, minimum_spanning_tree

    if adjacency.nnz == 0:
        return 0.0
    lengths = adjacency.copy()
    lengths.data = 1.0 / lengths.data
    tree = minimum_spanning_tree(lengths)
    # Double sweep: the farthest node from an arbitrary root, then the
    # farthest node from *that* one — their distance is the tree diameter.
    first = dijkstra(tree, directed=False, indices=0)
    turn = int(np.argmax(np.where(np.isfinite(first), first, -1.0)))
    second = dijkstra(tree, directed=False, indices=turn)
    return float(np.max(second[np.isfinite(second)]))


def _dense_laplacian(adjacency) -> np.ndarray:
    """Dense Laplacian of a CSR adjacency without sparse intermediates.

    Negating the dense adjacency and writing the row sums on the (empty)
    diagonal produces exactly the floats of ``(diags(deg) - A).toarray()`` —
    negation and assignment are exact, and the degrees come from the sparse
    row sum so the accumulation order over stored entries is unchanged
    (a dense ``sum(axis=1)`` would pairwise-sum over interleaved zeros and
    round differently) — while skipping the sparse construction overhead
    that dominates at the small sizes the exact diameter path runs on.
    """
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    laplacian = -adjacency.toarray()
    # Negating the implicit zeros produced ``-0.0``; adding ``+0.0``
    # canonicalises them back (LAPACK's SVD is bit-sensitive to the sign of
    # zero) while leaving every other entry untouched.
    laplacian += 0.0
    np.fill_diagonal(laplacian, degrees)
    return laplacian


def _exact_diameter_csr(adjacency) -> float:
    """Exact resistance diameter of a (small, connected) subgraph.

    One dense pseudo-inverse of the Laplacian gives all pairwise resistances
    at once (``R[p, q] = L⁺[p, p] + L⁺[q, q] - 2 L⁺[p, q]``) — for the
    cluster sizes this is used on, orders of magnitude cheaper than per-pair
    grounded solves.  ``adjacency`` is the symmetric weighted CSR adjacency.
    """
    n = adjacency.shape[0]
    if n < 2 or adjacency.nnz == 0:
        return 0.0
    pseudo = np.linalg.pinv(_dense_laplacian(adjacency))
    diagonal = np.diag(pseudo)
    resistances = diagonal[:, None] + diagonal[None, :] - 2.0 * pseudo
    return float(max(resistances.max(), 0.0))


def _subgraph_diameter_bound_csr(adjacency, exact_limit: int) -> float:
    """Diameter bound of an already-extracted, connected CSR adjacency."""
    if adjacency.shape[0] <= exact_limit:
        return _exact_diameter_csr(adjacency)
    return _tree_diameter_bound_csr(adjacency)


def _tree_diameter_bound(subgraph: Graph) -> float:
    """Graph-object wrapper over :func:`_tree_diameter_bound_csr`."""
    if subgraph.num_edges == 0:
        return 0.0
    return _tree_diameter_bound_csr(subgraph.csr_view())


def _exact_diameter(subgraph: Graph) -> float:
    """Graph-object wrapper over :func:`_exact_diameter_csr`."""
    if subgraph.num_nodes < 2 or subgraph.num_edges == 0:
        return 0.0
    return _exact_diameter_csr(subgraph.csr_view())


def _subgraph_diameter_bound(subgraph: Graph, exact_limit: int) -> float:
    """Diameter bound of an already-built, connected subgraph (no re-checks)."""
    if subgraph.num_nodes <= exact_limit:
        return _exact_diameter(subgraph)
    return _tree_diameter_bound(subgraph)


def cluster_diameter_bound(graph: Graph, nodes: np.ndarray, *, exact_limit: int = 64) -> float:
    """Upper bound on the resistance diameter of ``nodes`` within ``graph``.

    Works on the induced subgraph (a restriction, hence conservative for the
    full graph): exact all-pairs resistances up to ``exact_limit`` nodes, the
    max-weight spanning-tree path bound beyond.  The bound is only meaningful
    when the induced subgraph is connected — disconnected inputs raise, since
    an infinite-resistance "cluster" should have been split by the caller.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.shape[0] <= 1:
        return 0.0
    subgraph, _ = induced_subgraph(graph, nodes)
    components = _local_components(subgraph)
    if len(components) != 1:
        raise ValueError(
            f"cluster of {nodes.shape[0]} nodes is not internally connected "
            f"({len(components)} components); split it before bounding its diameter"
        )
    return _subgraph_diameter_bound(subgraph, exact_limit)


def fragment_diameters_csr(adjacency, local_fragments: List[np.ndarray],
                           exact_limit: int) -> List[float]:
    """Diameter bound for each (connected) fragment of a CSR adjacency.

    ``local_fragments`` hold row/column indices of ``adjacency``; a fragment
    that covers the whole matrix is bounded without re-slicing, others get a
    ``adjacency[f][:, f]`` submatrix — bit-identical to rebuilding the induced
    subgraph's own adjacency because CSR content depends only on the edge set.
    """
    diameters: List[float] = []
    for fragment in local_fragments:
        if fragment.shape[0] <= 1:
            diameters.append(0.0)
        elif len(local_fragments) == 1:
            diameters.append(_subgraph_diameter_bound_csr(adjacency, exact_limit))
        else:
            block = adjacency[fragment][:, fragment]
            diameters.append(_subgraph_diameter_bound_csr(block, exact_limit))
    return diameters


def fragment_diameters(subgraph: Graph, local_fragments: List[np.ndarray],
                       exact_limit: int) -> List[float]:
    """Diameter bound for each (connected) fragment of an induced subgraph.

    ``local_fragments`` hold local node ids of ``subgraph``.  Shared by the
    contraction-based and the connectivity-based splitting paths so the
    single-fragment special case lives in exactly one place; delegates to the
    CSR kernel so both call styles share one implementation.
    """
    return fragment_diameters_csr(subgraph.csr_view(), local_fragments, exact_limit)


def _local_components_csr(adjacency) -> List[np.ndarray]:
    """Connected components of a CSR adjacency as index arrays (largest first).

    ``scipy.sparse.csgraph.connected_components`` labels components in
    ascending order of their smallest member, and a stable argsort over the
    labels keeps each component's members ascending — exactly the ordering
    the original python BFS produced (scan from node 0, ``sorted`` members,
    stable largest-first sort).
    """
    from scipy.sparse.csgraph import connected_components

    n = adjacency.shape[0]
    if n == 0:
        return []
    num_components, labels = connected_components(adjacency, directed=False)
    if num_components == 1:
        return [np.arange(n, dtype=np.int64)]
    order = np.argsort(labels, kind="stable")
    boundaries = np.flatnonzero(np.diff(labels[order])) + 1
    components = [members.astype(np.int64, copy=False)
                  for members in np.split(order, boundaries)]
    components.sort(key=len, reverse=True)
    return components


def _local_components(subgraph: Graph) -> List[np.ndarray]:
    """Connected components of a small graph as local-id arrays (largest first)."""
    return _local_components_csr(subgraph.csr_view())


def decompose_node_subset(sparsifier: Graph, nodes: np.ndarray, threshold: float,
                          config: Optional[LRDConfig] = None, *,
                          atoms: Optional[np.ndarray] = None,
                          atom_diameters: Optional[np.ndarray] = None,
                          exact_limit: int = 64) -> Tuple[List[np.ndarray], List[float]]:
    """Re-run the bounded-diameter contraction (S2) on one node subset.

    This is the localized counterpart of one :func:`lrd_decompose` level: the
    induced subgraph of ``nodes`` is contracted greedily (cheapest estimated
    resistance first) subject to ``threshold``, and the resulting fragments
    are returned with *freshly computed* diameter bounds — the primitive the
    maintenance layer uses to splice a cluster whose interior lost edges.

    Parameters
    ----------
    sparsifier:
        The current sparsifier the subset lives in.
    nodes:
        Original node ids of the cluster being re-decomposed.
    threshold:
        Resistance-diameter budget of the cluster's level.
    config:
        LRD parameters (resistance estimation method); defaults to
        :class:`LRDConfig()`.
    atoms:
        Optional array (aligned with ``nodes``) grouping nodes into atomic
        units that must never be separated — the finer-level cluster labels.
        Honouring them preserves the hierarchy's nesting invariant.
    atom_diameters:
        Diameter carried by each atom label (mapping ``atom label -> bound``
        is positional over ``np.unique(atoms)``); zero when omitted.
    exact_limit:
        Cluster size up to which fragment diameters use exact all-pairs
        resistances (beyond it, the spanning-tree path bound).

    Returns
    -------
    (fragments, diameters):
        Original-node-id arrays (largest fragment first) and a valid
        resistance-diameter upper bound for each.
    """
    config = config if config is not None else LRDConfig()
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.shape[0] == 0:
        return [], []
    if nodes.shape[0] == 1:
        return [nodes], [0.0]
    subgraph, mapping = induced_subgraph(sparsifier, nodes)

    if atoms is None:
        atom_labels = np.arange(nodes.shape[0], dtype=np.int64)
        base_diameters = np.zeros(nodes.shape[0])
    else:
        atom_values, atom_labels = np.unique(np.asarray(atoms), return_inverse=True)
        if atom_diameters is None:
            base_diameters = np.zeros(atom_values.shape[0])
        else:
            base_diameters = np.asarray(atom_diameters, dtype=float)
            if base_diameters.shape[0] != atom_values.shape[0]:
                raise ValueError("atom_diameters must align with the unique atom labels")

    # Quotient of the induced subgraph by the atoms (S3 of the fresh
    # decomposition), so contraction happens between atomic units.  Parallel
    # edges are merged with ``np.add.at`` — its unbuffered sequential adds
    # reproduce the scalar ``merge="add"`` accumulation order exactly — and
    # the quotient's edge dict is filled in first-occurrence order so the
    # stable contraction argsort sees the same tie-break order as before.
    num_atoms = int(atom_labels.max()) + 1
    quotient = Graph(num_atoms)
    sub_us, sub_vs, sub_ws = subgraph.edge_arrays()
    atom_us = atom_labels[sub_us]
    atom_vs = atom_labels[sub_vs]
    cross = atom_us != atom_vs
    if np.any(cross):
        lo = np.minimum(atom_us[cross], atom_vs[cross])
        hi = np.maximum(atom_us[cross], atom_vs[cross])
        cross_ws = sub_ws[cross]
        keys = lo * np.int64(num_atoms) + hi
        _, first_positions, inverse = np.unique(keys, return_index=True, return_inverse=True)
        merged = np.zeros(first_positions.shape[0])
        np.add.at(merged, inverse, cross_ws)
        order = np.argsort(first_positions, kind="stable")
        edge_map = quotient._edges
        adjacency = quotient._adjacency
        for position in order.tolist():
            edge_position = int(first_positions[position])
            qu, qv = int(lo[edge_position]), int(hi[edge_position])
            weight = float(merged[position])
            edge_map[(qu, qv)] = weight
            adjacency[qu][qv] = weight
            adjacency[qv][qu] = weight
        quotient._invalidate_views()

    # The quotient is disconnected exactly when the cluster interior was torn
    # apart — the solver-backed estimators need connectivity, so fall back to
    # the per-edge series bound (1/w >= true resistance, hence conservative
    # for the threshold test) whenever the subset is no longer whole.
    uf_probe = UnionFind(num_atoms)
    for u, v in quotient.edges():
        uf_probe.union(u, v)
    if uf_probe.num_sets == 1:
        if num_atoms <= 2 * exact_limit:
            # Small connected quotient: one dense pseudo-inverse gives exact
            # edge resistances — cheaper and tighter than the sampled
            # estimators at this size.
            pseudo = np.linalg.pinv(_dense_laplacian(quotient.csr_view()))
            qu, qv, quotient_weights = quotient.edge_arrays()
            diagonal = np.diag(pseudo)
            edge_resistances = np.maximum(diagonal[qu] + diagonal[qv] - 2.0 * pseudo[qu, qv], 0.0)
            edge_resistances = np.minimum(edge_resistances, 1.0 / quotient_weights)
        else:
            edge_resistances = _estimate_edge_resistances(quotient, config, 0)
    elif quotient.num_edges:
        _, _, quotient_weights = quotient.edge_arrays()
        edge_resistances = 1.0 / quotient_weights
    else:
        edge_resistances = np.zeros(0)
    state = _ContractionState(
        graph=quotient,
        node_labels=np.arange(num_atoms, dtype=np.int64),
        diameters=base_diameters,
    )
    group_labels, _, _ = _contract_level(state, edge_resistances, threshold)

    node_groups = group_labels[atom_labels]
    num_groups = int(group_labels.max()) + 1 if group_labels.size else 0
    local_fragments = [np.flatnonzero(node_groups == group) for group in range(num_groups)]
    fragments = [np.sort(mapping[members]) for members in local_fragments]
    diameters = fragment_diameters(subgraph, local_fragments, exact_limit)
    order = sorted(range(len(fragments)), key=lambda index: len(fragments[index]), reverse=True)
    return [fragments[index] for index in order], [diameters[index] for index in order]


def lrd_decompose(sparsifier: Graph, config: Optional[LRDConfig] = None) -> ClusterHierarchy:
    """Run the multilevel LRD decomposition of ``sparsifier``.

    Parameters
    ----------
    sparsifier:
        The initial graph sparsifier ``H(0)`` (connected, weighted).
    config:
        Decomposition parameters; defaults to :class:`LRDConfig()`.

    Returns
    -------
    ClusterHierarchy
        Finest-to-coarsest stack of levels; the number of levels is
        ``O(log N)`` thanks to the geometric growth of the diameter threshold.
    """
    config = config if config is not None else LRDConfig()
    n = sparsifier.num_nodes
    if n == 0:
        raise ValueError("cannot decompose an empty graph")
    if n == 1 or sparsifier.num_edges == 0:
        level = LRDLevel(labels=np.zeros(n, dtype=np.int64), cluster_diameters=np.zeros(max(n, 1)),
                         diameter_threshold=0.0)
        return ClusterHierarchy([level])

    state = _ContractionState(
        graph=sparsifier,
        node_labels=np.arange(n, dtype=np.int64),
        diameters=np.zeros(n),
    )
    threshold = _initial_threshold(sparsifier, config)
    levels: List[LRDLevel] = []

    for level_index in range(config.max_levels):
        if state.graph.num_nodes <= config.min_clusters or state.graph.num_edges == 0:
            break
        edge_resistances = _estimate_edge_resistances(state.graph, config, level_index)
        labels, cluster_diameters, merges = _contract_level(state, edge_resistances, threshold)
        threshold *= config.growth_factor
        if merges == 0:
            # Nothing contracted at this threshold: grow it and retry without
            # recording a duplicate level (which would waste an embedding
            # dimension on information identical to the previous level).
            continue
        num_clusters = cluster_diameters.shape[0]
        # Compose with the original-node labelling of the previous level.
        original_labels = labels[state.node_labels]
        levels.append(
            LRDLevel(
                labels=original_labels.astype(np.int64),
                cluster_diameters=cluster_diameters.copy(),
                diameter_threshold=threshold / config.growth_factor,
            )
        )
        quotient = _build_quotient(state.graph, labels, num_clusters)
        state = _ContractionState(
            graph=quotient,
            node_labels=original_labels.astype(np.int64),
            diameters=cluster_diameters,
        )

    if not levels:
        # Degenerate case (e.g. two nodes whose single edge exceeds every
        # threshold tried): record the identity level so the hierarchy is
        # still usable.
        levels.append(
            LRDLevel(
                labels=np.arange(n, dtype=np.int64),
                cluster_diameters=np.zeros(n),
                diameter_threshold=threshold,
            )
        )
    # Always top the hierarchy with a single-cluster level so any two nodes
    # share a cluster at the coarsest level (needed for the resistance upper
    # bounds of the update phase).  Its diameter is the accumulated bound of
    # the last contraction state plus the resistances of the remaining edges.
    coarsest = levels[-1]
    if coarsest.num_clusters > 1:
        remaining = state.graph
        if remaining.num_edges:
            extra = float(np.sum(1.0 / np.array([w for _, _, w in remaining.weighted_edges()])))
        else:
            extra = 0.0
        top_diameter = float(coarsest.cluster_diameters.sum() + extra)
        levels.append(
            LRDLevel(
                labels=np.zeros(n, dtype=np.int64),
                cluster_diameters=np.array([max(top_diameter, 1e-12)]),
                diameter_threshold=max(top_diameter, threshold),
            )
        )
    return ClusterHierarchy(levels)
