"""Low-resistance-diameter (LRD) decomposition (Section III-B-2 of the paper).

The decomposition iteratively contracts the initial sparsifier into node
clusters whose effective-resistance diameter stays below a per-level
threshold:

* **(S1)** estimate the effective resistance of every edge of the current
  (contracted) sparsifier with the scalable embedding of Section III-B-1;
* **(S2)** contract edges in order of increasing resistance, merging two
  clusters only when the merged resistance diameter stays below the level's
  threshold (cluster diameters start at 0 for all singleton nodes);
* **(S3)** replace each contracted cluster with a supernode, aggregate
  parallel edges, carry the accumulated cluster diameters over, double the
  diameter threshold and move on to the next level.

After ``O(log N)`` levels every node carries one cluster index per level —
its resistance embedding vector — and the per-level cluster diameters give
the resistance upper bounds used by the update phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import LRDConfig
from repro.core.hierarchy import ClusterHierarchy, LRDLevel
from repro.graphs.graph import Graph
from repro.graphs.unionfind import UnionFind
from repro.spectral.effective_resistance import make_resistance_calculator


@dataclass
class _ContractionState:
    """Working state carried between levels of the decomposition."""

    graph: Graph                 # current contracted sparsifier
    node_labels: np.ndarray      # original node -> current supernode
    diameters: np.ndarray        # resistance diameter carried by each supernode


def _estimate_edge_resistances(graph: Graph, config: LRDConfig, level_index: int) -> np.ndarray:
    """Resistance estimate of every edge of ``graph`` (S1)."""
    if graph.num_edges == 0:
        return np.zeros(0)
    if graph.num_nodes < 3:
        # Tiny contracted graphs: series formula is exact enough.
        _, _, weights = graph.edge_arrays()
        return 1.0 / weights
    calculator = make_resistance_calculator(
        graph,
        config.resistance_method,
        order=config.resistance_order,
        seed=(config.seed if not isinstance(config.seed, np.random.Generator) else config.seed),
    )
    resistances = calculator.edge_resistances()
    # Effective resistance of an edge can never exceed the edge's own
    # resistance (1/w); clamping repairs approximation overshoot.
    _, _, weights = graph.edge_arrays()
    return np.minimum(np.maximum(resistances, 0.0), 1.0 / weights)


def _contract_level(state: _ContractionState, edge_resistances: np.ndarray,
                    threshold: float) -> Tuple[np.ndarray, np.ndarray, int]:
    """Greedy bounded-diameter contraction (S2).

    Returns ``(new_labels_for_current_nodes, new_cluster_diameters, merges)``.
    """
    current = state.graph
    us, vs, _ = current.edge_arrays()
    order = np.argsort(edge_resistances, kind="stable")
    uf = UnionFind(current.num_nodes)
    diameters: Dict[int, float] = {node: float(state.diameters[node]) for node in range(current.num_nodes)}
    merges = 0
    for index in order:
        u, v = int(us[index]), int(vs[index])
        root_u, root_v = uf.find(u), uf.find(v)
        if root_u == root_v:
            continue
        merged_diameter = diameters[root_u] + diameters[root_v] + float(edge_resistances[index])
        if merged_diameter > threshold:
            continue
        uf.union(root_u, root_v)
        new_root = uf.find(root_u)
        diameters[new_root] = merged_diameter
        merges += 1
    labels = uf.labels(compact=True)
    num_clusters = int(labels.max()) + 1 if labels.size else 0
    cluster_diameters = np.zeros(num_clusters)
    for node in range(current.num_nodes):
        cluster = int(labels[node])
        cluster_diameters[cluster] = max(cluster_diameters[cluster], diameters[uf.find(node)])
    return labels, cluster_diameters, merges


def _build_quotient(current: Graph, labels: np.ndarray, num_clusters: int) -> Graph:
    """Contract clusters into supernodes, merging parallel edges by weight sum (S3)."""
    quotient = Graph(num_clusters)
    for u, v, w in current.weighted_edges():
        cu, cv = int(labels[u]), int(labels[v])
        if cu != cv:
            quotient.add_edge(cu, cv, w, merge="add")
    return quotient


def _initial_threshold(graph: Graph, config: LRDConfig) -> float:
    """Level-0 diameter threshold (median edge resistance unless configured)."""
    if config.initial_diameter is not None:
        return config.initial_diameter
    _, _, weights = graph.edge_arrays()
    if weights.size == 0:
        return 1.0
    return float(np.median(1.0 / weights))


def lrd_decompose(sparsifier: Graph, config: Optional[LRDConfig] = None) -> ClusterHierarchy:
    """Run the multilevel LRD decomposition of ``sparsifier``.

    Parameters
    ----------
    sparsifier:
        The initial graph sparsifier ``H(0)`` (connected, weighted).
    config:
        Decomposition parameters; defaults to :class:`LRDConfig()`.

    Returns
    -------
    ClusterHierarchy
        Finest-to-coarsest stack of levels; the number of levels is
        ``O(log N)`` thanks to the geometric growth of the diameter threshold.
    """
    config = config if config is not None else LRDConfig()
    n = sparsifier.num_nodes
    if n == 0:
        raise ValueError("cannot decompose an empty graph")
    if n == 1 or sparsifier.num_edges == 0:
        level = LRDLevel(labels=np.zeros(n, dtype=np.int64), cluster_diameters=np.zeros(max(n, 1)),
                         diameter_threshold=0.0)
        return ClusterHierarchy([level])

    state = _ContractionState(
        graph=sparsifier,
        node_labels=np.arange(n, dtype=np.int64),
        diameters=np.zeros(n),
    )
    threshold = _initial_threshold(sparsifier, config)
    levels: List[LRDLevel] = []

    for level_index in range(config.max_levels):
        if state.graph.num_nodes <= config.min_clusters or state.graph.num_edges == 0:
            break
        edge_resistances = _estimate_edge_resistances(state.graph, config, level_index)
        labels, cluster_diameters, merges = _contract_level(state, edge_resistances, threshold)
        threshold *= config.growth_factor
        if merges == 0:
            # Nothing contracted at this threshold: grow it and retry without
            # recording a duplicate level (which would waste an embedding
            # dimension on information identical to the previous level).
            continue
        num_clusters = cluster_diameters.shape[0]
        # Compose with the original-node labelling of the previous level.
        original_labels = labels[state.node_labels]
        levels.append(
            LRDLevel(
                labels=original_labels.astype(np.int64),
                cluster_diameters=cluster_diameters.copy(),
                diameter_threshold=threshold / config.growth_factor,
            )
        )
        quotient = _build_quotient(state.graph, labels, num_clusters)
        state = _ContractionState(
            graph=quotient,
            node_labels=original_labels.astype(np.int64),
            diameters=cluster_diameters,
        )

    if not levels:
        # Degenerate case (e.g. two nodes whose single edge exceeds every
        # threshold tried): record the identity level so the hierarchy is
        # still usable.
        levels.append(
            LRDLevel(
                labels=np.arange(n, dtype=np.int64),
                cluster_diameters=np.zeros(n),
                diameter_threshold=threshold,
            )
        )
    # Always top the hierarchy with a single-cluster level so any two nodes
    # share a cluster at the coarsest level (needed for the resistance upper
    # bounds of the update phase).  Its diameter is the accumulated bound of
    # the last contraction state plus the resistances of the remaining edges.
    coarsest = levels[-1]
    if coarsest.num_clusters > 1:
        remaining = state.graph
        if remaining.num_edges:
            extra = float(np.sum(1.0 / np.array([w for _, _, w in remaining.weighted_edges()])))
        else:
            extra = 0.0
        top_diameter = float(coarsest.cluster_diameters.sum() + extra)
        levels.append(
            LRDLevel(
                labels=np.zeros(n, dtype=np.int64),
                cluster_diameters=np.array([max(top_diameter, 1e-12)]),
                diameter_threshold=max(top_diameter, threshold),
            )
        )
    return ClusterHierarchy(levels)
