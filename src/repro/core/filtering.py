"""Spectral similarity filtering of new edges (Section III-C-2 of the paper).

Once the new edges are ranked by spectral distortion, inGRASS decides for each
one — in ``O(log N)`` using the filtering level ``L`` of the LRD hierarchy —
whether it is *spectrally unique* enough to enter the sparsifier:

* if the two endpoints fall in **the same level-``L`` cluster**, the edge is
  discarded and its weight is distributed proportionally over the sparsifier
  edges inside that cluster (the cluster already provides a low-resistance
  path, so the new edge mostly duplicates it);
* if **another sparsifier edge already connects the two clusters**, the edge
  is discarded and its weight added onto that existing inter-cluster edge;
* otherwise the edge is **added** to the sparsifier and the cluster
  connectivity map is updated so later edges in the same stream see it.

The cluster-pair connectivity map is the operational face of the paper's
"multilevel sparse data structure": one hash map per filtering level, keyed by
cluster pairs, valued with a representative sparsifier edge.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.distortion import DistortionEstimate
from repro.core.hierarchy import ClusterHierarchy
from repro.graphs.graph import Graph, canonical_edge

WeightedEdge = Tuple[int, int, float]
ClusterPair = Tuple[int, int]


class FilterAction(Enum):
    """What the similarity filter decided to do with a new edge."""

    ADDED = "added"
    MERGED_INTO_EXISTING = "merged_into_existing"
    REDISTRIBUTED_INTRA_CLUSTER = "redistributed_intra_cluster"
    DROPPED_LOW_DISTORTION = "dropped_low_distortion"


@dataclass
class FilterDecision:
    """Record of the filter's decision for one streamed edge."""

    edge: WeightedEdge
    action: FilterAction
    distortion: float
    target_edge: Optional[Tuple[int, int]] = None  # for merges: the edge that absorbed the weight
    cluster_pair: Optional[ClusterPair] = None


@dataclass
class FilterSummary:
    """Aggregate counts of one filtering pass."""

    added: int = 0
    merged: int = 0
    redistributed: int = 0
    dropped: int = 0

    @property
    def total(self) -> int:
        return self.added + self.merged + self.redistributed + self.dropped


class SimilarityFilter:
    """Stateful edge filter bound to a sparsifier and a filtering level.

    Parameters
    ----------
    sparsifier:
        The sparsifier ``H`` being maintained; mutated in place by
        :meth:`apply`.
    hierarchy:
        LRD hierarchy from the setup phase.
    filtering_level:
        Level ``L`` whose clusters define "spectral similarity".
    redistribute_intra_cluster_weight:
        When ``True`` (paper behaviour) the weight of an intra-cluster edge is
        spread proportionally over the sparsifier edges inside the cluster;
        when ``False`` the edge is simply dropped.
    """

    def __init__(self, sparsifier: Graph, hierarchy: ClusterHierarchy, filtering_level: int,
                 *, redistribute_intra_cluster_weight: bool = True) -> None:
        if filtering_level < 0 or filtering_level >= hierarchy.num_levels:
            raise ValueError(
                f"filtering_level {filtering_level} out of range for a hierarchy with "
                f"{hierarchy.num_levels} levels"
            )
        self._sparsifier = sparsifier
        self._hierarchy = hierarchy
        self._level_index = filtering_level
        self._labels = hierarchy.level(filtering_level).labels
        self._redistribute = redistribute_intra_cluster_weight
        self._connectivity: Dict[ClusterPair, Tuple[int, int]] = {}
        self._intra_cluster_edges: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        self._rebuild_connectivity()

    # ------------------------------------------------------------------ #
    @property
    def filtering_level(self) -> int:
        """The level ``L`` used for similarity decisions."""
        return self._level_index

    @property
    def sparsifier(self) -> Graph:
        """The sparsifier being maintained."""
        return self._sparsifier

    def _cluster_pair(self, p: int, q: int) -> ClusterPair:
        cp, cq = int(self._labels[p]), int(self._labels[q])
        return (cp, cq) if cp <= cq else (cq, cp)

    def _rebuild_connectivity(self) -> None:
        """Scan the sparsifier once and index its edges by cluster pair."""
        self._connectivity.clear()
        self._intra_cluster_edges.clear()
        for u, v in self._sparsifier.edges():
            pair = self._cluster_pair(u, v)
            if pair[0] == pair[1]:
                self._intra_cluster_edges[pair[0]].append((u, v))
            elif pair not in self._connectivity:
                self._connectivity[pair] = (u, v)

    def connects_clusters(self, p: int, q: int) -> bool:
        """Return ``True`` when a sparsifier edge already joins the clusters of p and q."""
        pair = self._cluster_pair(p, q)
        if pair[0] == pair[1]:
            return True
        return pair in self._connectivity

    # ------------------------------------------------------------------ #
    def _redistribute_weight(self, cluster: int, weight: float) -> None:
        """Spread ``weight`` proportionally over the sparsifier edges inside ``cluster``."""
        edges = self._intra_cluster_edges.get(cluster, [])
        if not edges:
            return
        current_weights = np.array([self._sparsifier.weight(u, v) for u, v in edges])
        total = current_weights.sum()
        if total <= 0:
            return
        for (u, v), share in zip(edges, current_weights / total):
            self._sparsifier.increase_weight(u, v, max(weight * share, 1e-300))

    def _apply_single(self, estimate: DistortionEstimate) -> FilterDecision:
        p, q, weight = estimate.edge
        pair = self._cluster_pair(p, q)
        if pair[0] == pair[1]:
            # Both endpoints already live in one low-resistance cluster.
            if self._sparsifier.has_edge(p, q):
                # The sparsifier already carries this exact edge; treat the new
                # weight as a parallel conductor.
                self._sparsifier.increase_weight(p, q, weight)
                return FilterDecision(estimate.edge, FilterAction.MERGED_INTO_EXISTING,
                                      estimate.distortion, target_edge=(p, q), cluster_pair=pair)
            if self._redistribute:
                self._redistribute_weight(pair[0], weight)
            return FilterDecision(estimate.edge, FilterAction.REDISTRIBUTED_INTRA_CLUSTER,
                                  estimate.distortion, cluster_pair=pair)
        existing = self._connectivity.get(pair)
        if existing is not None:
            u, v = existing
            self._sparsifier.increase_weight(u, v, weight)
            return FilterDecision(estimate.edge, FilterAction.MERGED_INTO_EXISTING,
                                  estimate.distortion, target_edge=existing, cluster_pair=pair)
        # Spectrally unique edge: admit it and register the new cluster connection.
        self._sparsifier.add_edge(p, q, weight, merge="add")
        self._connectivity[pair] = (p, q)
        return FilterDecision(estimate.edge, FilterAction.ADDED, estimate.distortion, cluster_pair=pair)

    def apply(self, estimates: Sequence[DistortionEstimate],
              *, max_additions: Optional[int] = None) -> Tuple[List[FilterDecision], FilterSummary]:
        """Filter a distortion-sorted batch of edges, mutating the sparsifier.

        Parameters
        ----------
        estimates:
            Candidate edges with distortion estimates, most distorting first
            (callers sort via :func:`repro.core.distortion.sort_by_distortion`).
        max_additions:
            Optional cap on how many edges may be added in this pass; once
            reached, remaining inter-cluster candidates are merged into their
            cluster-pair representative instead of being added.
        """
        decisions: List[FilterDecision] = []
        summary = FilterSummary()
        for estimate in estimates:
            if max_additions is not None and summary.added >= max_additions:
                p, q, weight = estimate.edge
                pair = self._cluster_pair(p, q)
                existing = self._connectivity.get(pair)
                if pair[0] != pair[1] and existing is not None:
                    u, v = existing
                    self._sparsifier.increase_weight(u, v, weight)
                    decision = FilterDecision(estimate.edge, FilterAction.MERGED_INTO_EXISTING,
                                              estimate.distortion, target_edge=existing, cluster_pair=pair)
                elif pair[0] == pair[1]:
                    if self._redistribute:
                        self._redistribute_weight(pair[0], weight)
                    decision = FilterDecision(estimate.edge, FilterAction.REDISTRIBUTED_INTRA_CLUSTER,
                                              estimate.distortion, cluster_pair=pair)
                else:
                    decision = FilterDecision(estimate.edge, FilterAction.DROPPED_LOW_DISTORTION,
                                              estimate.distortion, cluster_pair=pair)
            else:
                decision = self._apply_single(estimate)
            decisions.append(decision)
            if decision.action is FilterAction.ADDED:
                summary.added += 1
            elif decision.action is FilterAction.MERGED_INTO_EXISTING:
                summary.merged += 1
            elif decision.action is FilterAction.REDISTRIBUTED_INTRA_CLUSTER:
                summary.redistributed += 1
            else:
                summary.dropped += 1
        return decisions, summary
