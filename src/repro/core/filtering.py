"""Spectral similarity filtering of new edges (Section III-C-2 of the paper).

Once the new edges are ranked by spectral distortion, inGRASS decides for each
one — in ``O(log N)`` using the filtering level ``L`` of the LRD hierarchy —
whether it is *spectrally unique* enough to enter the sparsifier:

* if the two endpoints fall in **the same level-``L`` cluster**, the edge is
  discarded and its weight is distributed proportionally over the sparsifier
  edges inside that cluster (the cluster already provides a low-resistance
  path, so the new edge mostly duplicates it);
* if **another sparsifier edge already connects the two clusters**, the edge
  is discarded and its weight added onto that existing inter-cluster edge;
* otherwise the edge is **added** to the sparsifier and the cluster
  connectivity map is updated so later edges in the same stream see it.

The cluster-pair connectivity map is the operational face of the paper's
"multilevel sparse data structure": one hash map per filtering level, keyed by
cluster pairs, valued with the sparsifier edges realising that connection.
Keeping *all* realising edges (rather than one representative) lets the fully
dynamic update path invalidate the map in ``O(1)`` when a sparsifier edge is
deleted — see :meth:`SimilarityFilter.notify_edge_removed`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.distortion import DistortionBatch, DistortionEstimate
from repro.core.hierarchy import ClusterHierarchy
from repro.graphs.graph import Graph, canonical_edge

WeightedEdge = Tuple[int, int, float]
ClusterPair = Tuple[int, int]


class FilterAction(Enum):
    """What the similarity filter decided to do with a new edge."""

    ADDED = "added"
    MERGED_INTO_EXISTING = "merged_into_existing"
    REDISTRIBUTED_INTRA_CLUSTER = "redistributed_intra_cluster"
    DROPPED_LOW_DISTORTION = "dropped_low_distortion"


@dataclass
class FilterDecision:
    """Record of the filter's decision for one streamed edge."""

    edge: WeightedEdge
    action: FilterAction
    distortion: float
    target_edge: Optional[Tuple[int, int]] = None  # for merges: the edge that absorbed the weight
    cluster_pair: Optional[ClusterPair] = None


@dataclass
class FilterSummary:
    """Aggregate counts of one filtering pass."""

    added: int = 0
    merged: int = 0
    redistributed: int = 0
    dropped: int = 0

    @property
    def total(self) -> int:
        return self.added + self.merged + self.redistributed + self.dropped


#: Compact action codes used by the array-backed decision records.
_ACTION_TO_CODE = {
    FilterAction.ADDED: 0,
    FilterAction.MERGED_INTO_EXISTING: 1,
    FilterAction.REDISTRIBUTED_INTRA_CLUSTER: 2,
    FilterAction.DROPPED_LOW_DISTORTION: 3,
}
_CODE_TO_ACTION = [
    FilterAction.ADDED,
    FilterAction.MERGED_INTO_EXISTING,
    FilterAction.REDISTRIBUTED_INTRA_CLUSTER,
    FilterAction.DROPPED_LOW_DISTORTION,
]


@dataclass
class FilterDecisionBatch:
    """Array-backed decision report — the SoA twin of ``List[FilterDecision]``.

    At 10⁵-edge batches the per-edge :class:`FilterDecision` objects dominate
    the vectorised engine's remaining cost through allocation and GC
    pressure; this record keeps the same information in parallel numpy
    arrays and materialises :class:`FilterDecision` objects lazily, only when
    a consumer actually iterates.  Enabled via
    ``InGrassConfig.decision_records="arrays"``.

    ``target_us``/``target_vs`` are ``-1`` where the decision has no merge
    target; ``pair_los``/``pair_his`` are ``-1`` where no cluster pair was
    recorded (dropped-by-threshold edges that never reached the filter).
    """

    us: np.ndarray
    vs: np.ndarray
    ws: np.ndarray
    distortions: np.ndarray
    actions: np.ndarray       # int8 codes, see _CODE_TO_ACTION
    target_us: np.ndarray
    target_vs: np.ndarray
    pair_los: np.ndarray
    pair_his: np.ndarray

    @classmethod
    def empty(cls, size: int) -> "FilterDecisionBatch":
        """Preallocate a record batch for ``size`` decisions."""
        return cls(
            us=np.zeros(size, dtype=np.int64),
            vs=np.zeros(size, dtype=np.int64),
            ws=np.zeros(size),
            distortions=np.zeros(size),
            actions=np.zeros(size, dtype=np.int8),
            target_us=np.full(size, -1, dtype=np.int64),
            target_vs=np.full(size, -1, dtype=np.int64),
            pair_los=np.full(size, -1, dtype=np.int64),
            pair_his=np.full(size, -1, dtype=np.int64),
        )

    def __len__(self) -> int:
        return int(self.us.shape[0])

    def decision(self, index: int) -> FilterDecision:
        """Materialise the :class:`FilterDecision` object at ``index``."""
        target = None
        if self.target_us[index] >= 0:
            target = (int(self.target_us[index]), int(self.target_vs[index]))
        pair = None
        if self.pair_los[index] >= 0:
            pair = (int(self.pair_los[index]), int(self.pair_his[index]))
        return FilterDecision(
            edge=(int(self.us[index]), int(self.vs[index]), float(self.ws[index])),
            action=_CODE_TO_ACTION[int(self.actions[index])],
            distortion=float(self.distortions[index]),
            target_edge=target,
            cluster_pair=pair,
        )

    def __iter__(self):
        for index in range(len(self)):
            yield self.decision(index)

    def __getitem__(self, index: int) -> FilterDecision:
        if index < 0:
            index += len(self)
        if index < 0 or index >= len(self):
            raise IndexError(index)
        return self.decision(index)

    def action_counts(self) -> FilterSummary:
        """Aggregate the action codes into a :class:`FilterSummary`."""
        counts = np.bincount(self.actions, minlength=4)
        return FilterSummary(added=int(counts[0]), merged=int(counts[1]),
                             redistributed=int(counts[2]), dropped=int(counts[3]))

    def added_edges(self) -> List[WeightedEdge]:
        """Edges actually inserted into the sparsifier (ADDED decisions)."""
        mask = self.actions == _ACTION_TO_CODE[FilterAction.ADDED]
        indices = np.flatnonzero(mask)
        return [(int(self.us[i]), int(self.vs[i]), float(self.ws[i])) for i in indices]

    @classmethod
    def concat(cls, batches: Sequence["FilterDecisionBatch"]) -> "FilterDecisionBatch":
        """Concatenate several record batches (the sharded engine's merge step)."""
        batches = [batch for batch in batches if len(batch)]
        if not batches:
            return cls.empty(0)
        if len(batches) == 1:
            return batches[0]
        return cls(
            us=np.concatenate([b.us for b in batches]),
            vs=np.concatenate([b.vs for b in batches]),
            ws=np.concatenate([b.ws for b in batches]),
            distortions=np.concatenate([b.distortions for b in batches]),
            actions=np.concatenate([b.actions for b in batches]),
            target_us=np.concatenate([b.target_us for b in batches]),
            target_vs=np.concatenate([b.target_vs for b in batches]),
            pair_los=np.concatenate([b.pair_los for b in batches]),
            pair_his=np.concatenate([b.pair_his for b in batches]),
        )

    def extended_with_dropped(self, us: np.ndarray, vs: np.ndarray, ws: np.ndarray,
                              distortions: np.ndarray) -> "FilterDecisionBatch":
        """Return a new batch with trailing DROPPED_LOW_DISTORTION records."""
        extra = int(us.shape[0])
        if extra == 0:
            return self
        sentinel = np.full(extra, -1, dtype=np.int64)
        return FilterDecisionBatch(
            us=np.concatenate([self.us, np.asarray(us, dtype=np.int64)]),
            vs=np.concatenate([self.vs, np.asarray(vs, dtype=np.int64)]),
            ws=np.concatenate([self.ws, np.asarray(ws, dtype=float)]),
            distortions=np.concatenate([self.distortions, np.asarray(distortions, dtype=float)]),
            actions=np.concatenate([
                self.actions,
                np.full(extra, _ACTION_TO_CODE[FilterAction.DROPPED_LOW_DISTORTION], dtype=np.int8),
            ]),
            target_us=np.concatenate([self.target_us, sentinel]),
            target_vs=np.concatenate([self.target_vs, sentinel]),
            pair_los=np.concatenate([self.pair_los, sentinel]),
            pair_his=np.concatenate([self.pair_his, sentinel]),
        )


class SimilarityFilter:
    """Stateful edge filter bound to a sparsifier and a filtering level.

    Parameters
    ----------
    sparsifier:
        The sparsifier ``H`` being maintained; mutated in place by
        :meth:`apply`.
    hierarchy:
        LRD hierarchy from the setup phase.
    filtering_level:
        Level ``L`` whose clusters define "spectral similarity".
    redistribute_intra_cluster_weight:
        When ``True`` (paper behaviour) the weight of an intra-cluster edge is
        spread proportionally over the sparsifier edges inside the cluster;
        when ``False`` the edge is simply dropped.
    """

    def __init__(self, sparsifier: Graph, hierarchy: ClusterHierarchy, filtering_level: int,
                 *, redistribute_intra_cluster_weight: bool = True) -> None:
        if filtering_level < 0 or filtering_level >= hierarchy.num_levels:
            raise ValueError(
                f"filtering_level {filtering_level} out of range for a hierarchy with "
                f"{hierarchy.num_levels} levels"
            )
        self._sparsifier = sparsifier
        self._hierarchy = hierarchy
        self._level_index = filtering_level
        self._redistribute = redistribute_intra_cluster_weight
        # Label-version checkpoint: the maintenance layer re-keys this map in
        # place and marks it synced; any out-of-band relabel of the filtering
        # level shows up as a version mismatch and triggers one rebuild.
        self._synced_labels_version = hierarchy.level_labels_version(filtering_level)
        # Cluster pair -> ordered set of sparsifier edges realising the
        # connection (dict used as an ordered set for O(1) add/discard).
        self._connectivity: Dict[ClusterPair, Dict[Tuple[int, int], None]] = {}
        self._intra_cluster_edges: Dict[int, Dict[Tuple[int, int], None]] = defaultdict(dict)
        self._rebuild_connectivity()

    # ------------------------------------------------------------------ #
    @property
    def _labels(self) -> np.ndarray:
        """The live label array of the filtering level — never cached.

        Read through the hierarchy on every access: an epoch-snapshot export
        followed by a mutation detaches the hierarchy onto fresh buffers
        (copy-on-write), re-pointing ``level.labels`` at a new array.  A
        reference cached at construction would keep reading the detached
        (frozen) buffer and silently miss every subsequent relabel.
        """
        return self._hierarchy.level(self._level_index).labels

    @property
    def filtering_level(self) -> int:
        """The level ``L`` used for similarity decisions."""
        return self._level_index

    @property
    def sparsifier(self) -> Graph:
        """The sparsifier being maintained."""
        return self._sparsifier

    def state_summary(self) -> dict:
        """Plain-dict summary of the filter's live state (for snapshots).

        The returned dict is detached from the filter (safe to hold across
        writer mutations) and cheap to build: counts only, no edge copies.
        """
        return {
            "filtering_level": self._level_index,
            "cluster_pairs": len(self._connectivity),
            "intra_cluster_buckets": len(self._intra_cluster_edges),
            "registered_edges": (sum(len(b) for b in self._connectivity.values())
                                 + sum(len(b) for b in self._intra_cluster_edges.values())),
            "synced_labels_version": self._synced_labels_version,
        }

    def _cluster_pair(self, p: int, q: int) -> ClusterPair:
        cp, cq = int(self._labels[p]), int(self._labels[q])
        return (cp, cq) if cp <= cq else (cq, cp)

    def _rebuild_connectivity(self) -> None:
        """Scan the sparsifier once and index its edges by cluster pair."""
        self._connectivity.clear()
        self._intra_cluster_edges.clear()
        us, vs, _weights = self._sparsifier.edge_arrays()
        self._register_pairs(us, vs)

    def _register_edge(self, u: int, v: int) -> None:
        """Index one sparsifier edge in the connectivity map."""
        key = canonical_edge(u, v)
        pair = self._cluster_pair(u, v)
        if pair[0] == pair[1]:
            self._intra_cluster_edges[pair[0]][key] = None
        else:
            self._connectivity.setdefault(pair, {})[key] = None

    def _unregister_edge(self, u: int, v: int) -> None:
        """Drop one sparsifier edge from the connectivity map (no-op if absent)."""
        key = canonical_edge(u, v)
        pair = self._cluster_pair(u, v)
        if pair[0] == pair[1]:
            bucket = self._intra_cluster_edges.get(pair[0])
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del self._intra_cluster_edges[pair[0]]
        else:
            bucket = self._connectivity.get(pair)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del self._connectivity[pair]

    def _representative(self, pair: ClusterPair) -> Optional[Tuple[int, int]]:
        """Return the canonical sparsifier edge realising ``pair`` (or ``None``).

        The smallest edge key of the bucket, *not* an iteration-order pick:
        bucket insertion order is history (it differs between a filter that
        evolved in place and one rebuilt from a sparsifier scan, e.g. a shard
        replan), and the representative decides where merged weight lands —
        so it must be a pure function of the bucket's *content* for the
        sharded driver's oracle guarantee to hold.
        """
        bucket = self._connectivity.get(pair)
        if not bucket:
            return None
        return min(bucket)

    # ------------------------------------------------------------------ #
    # Invalidation hooks for the fully dynamic update path
    # ------------------------------------------------------------------ #
    def notify_edge_added(self, u: int, v: int) -> None:
        """Keep the connectivity map in sync with an out-of-band edge insertion.

        The repair step of :func:`repro.core.update.run_removal` adds
        replacement edges directly to the sparsifier (connectivity repair must
        happen regardless of spectral similarity); this hook registers them so
        later filtering decisions see the connection.
        """
        self._register_edge(u, v)

    def notify_edges_added(self, us: np.ndarray, vs: np.ndarray) -> None:
        """Bulk :meth:`notify_edge_added` over parallel endpoint arrays.

        The process-executor replay path registers every edge a shard worker
        admitted in one call; bucket state is a pure function of the
        registered edge *set* (no weights, no history), so replaying the
        membership notifications is all it takes to keep a parent-side view
        decision-identical to the worker's live filter.
        """
        for u, v in zip(np.asarray(us, dtype=np.int64).tolist(),
                        np.asarray(vs, dtype=np.int64).tolist()):
            self._register_edge(u, v)

    def notify_edge_removed(self, u: int, v: int) -> None:
        """Keep the connectivity map in sync with a sparsifier edge deletion.

        ``O(1)``: the edge is discarded from its cluster-pair bucket; when the
        bucket empties the cluster pair is genuinely disconnected at this
        level and future streamed edges between those clusters will be ADDED
        again rather than merged into a stale representative.
        """
        self._unregister_edge(u, v)

    def reassign_weight(self, u: int, v: int, weight: float) -> bool:
        """Fold ``weight`` onto surviving support of ``(u, v)``'s cluster pair.

        Used by the deletion path when a removed sparsifier edge carried more
        weight than its physical counterpart (earlier MERGED/REDISTRIBUTED
        decisions parked other edges' conductance on it): the excess belongs
        to edges that still exist in the graph, so it is re-homed onto the
        surviving representative of the same cluster pair (or spread inside
        the cluster for intra-cluster pairs).  Returns ``False`` when no
        surviving support exists — the caller decides what to do then.

        Call *after* :meth:`notify_edge_removed` so the removed edge itself
        can never absorb the weight.
        """
        pair = self._cluster_pair(u, v)
        if pair[0] == pair[1]:
            if self._redistribute and self._intra_cluster_edges.get(pair[0]):
                self._redistribute_weight(pair[0], weight)
                return True
            return False
        representative = self._representative(pair)
        if representative is None:
            return False
        self._sparsifier.increase_weight(representative[0], representative[1], weight)
        return True

    def connects_clusters(self, p: int, q: int) -> bool:
        """Return ``True`` when a sparsifier edge already joins the clusters of p and q."""
        pair = self._cluster_pair(p, q)
        if pair[0] == pair[1]:
            return True
        return bool(self._connectivity.get(pair))

    # ------------------------------------------------------------------ #
    # Cluster-rename protocol for the hierarchy maintenance layer
    # ------------------------------------------------------------------ #
    def _scope_mask(self, us: np.ndarray, vs: np.ndarray) -> Optional[np.ndarray]:
        """Boolean ownership mask for bulk operations (``None`` = own all).

        The base filter owns every sparsifier edge; shard-scoped subclasses
        override this with their plan lookup so the shared bulk register /
        unregister kernels below stay the single implementation.
        """
        return None

    def incident_edge_arrays(self, nodes) -> Tuple[np.ndarray, np.ndarray]:
        """Canonical ``(u, v)`` arrays of every sparsifier edge touching ``nodes``.

        Gathered from the sparsifier's cached CSR view in one shot —
        deduplicated and sorted by canonical key.  Cost is proportional to
        the degree sum of ``nodes``, with no per-node adjacency-dict copies.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        if nodes.size == 0:
            return empty, empty
        csr = self._sparsifier.csr_view()
        starts = csr.indptr[nodes]
        counts = csr.indptr[nodes + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return empty, empty
        ends = np.cumsum(counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
        cols = csr.indices[np.repeat(starts, counts) + offsets].astype(np.int64, copy=False)
        rows = np.repeat(nodes, counts)
        lo = np.minimum(rows, cols)
        hi = np.maximum(rows, cols)
        keys = (lo << np.int64(32)) | hi
        _, first = np.unique(keys, return_index=True)
        return lo[first], hi[first]

    def _register_pairs(self, us: np.ndarray, vs: np.ndarray) -> None:
        """Bulk :meth:`_register_edge` over canonical endpoint arrays.

        Cluster labels are gathered with one vectorised lookup; the bucket
        dict updates themselves replay the scalar path, so bucket *contents*
        are identical to per-edge registration (insertion order within a
        bucket is not part of the filter's contract — representatives and
        redistribution are content-canonical).
        """
        mask = self._scope_mask(us, vs)
        if mask is not None:
            us, vs = us[mask], vs[mask]
        if us.size == 0:
            return
        labels = self._labels
        cluster_us = labels[us]
        cluster_vs = labels[vs]
        pair_los = np.minimum(cluster_us, cluster_vs).tolist()
        pair_his = np.maximum(cluster_us, cluster_vs).tolist()
        connectivity = self._connectivity
        intra = self._intra_cluster_edges
        for u, v, p, q in zip(us.tolist(), vs.tolist(), pair_los, pair_his):
            if p == q:
                intra[p][(u, v)] = None
            else:
                connectivity.setdefault((p, q), {})[(u, v)] = None

    def _unregister_pairs(self, us: np.ndarray, vs: np.ndarray) -> None:
        """Bulk :meth:`_unregister_edge` over canonical endpoint arrays."""
        mask = self._scope_mask(us, vs)
        if mask is not None:
            us, vs = us[mask], vs[mask]
        if us.size == 0:
            return
        labels = self._labels
        cluster_us = labels[us]
        cluster_vs = labels[vs]
        pair_los = np.minimum(cluster_us, cluster_vs).tolist()
        pair_his = np.maximum(cluster_us, cluster_vs).tolist()
        connectivity = self._connectivity
        intra = self._intra_cluster_edges
        for u, v, p, q in zip(us.tolist(), vs.tolist(), pair_los, pair_his):
            if p == q:
                bucket = intra.get(p)
                if bucket is not None:
                    bucket.pop((u, v), None)
                    if not bucket:
                        del intra[p]
            else:
                bucket = connectivity.get((p, q))
                if bucket is not None:
                    bucket.pop((u, v), None)
                    if not bucket:
                        del connectivity[(p, q)]

    def unregister_incident_edges(self, nodes) -> List[Tuple[int, int]]:
        """Pop every sparsifier edge incident to ``nodes`` from the map.

        First half of the splice/merge re-keying protocol: the maintenance
        layer calls this *before* relabelling ``nodes`` at the filtering
        level (the current labels are needed to find the stale buckets),
        mutates the hierarchy, then hands the returned edges back to
        :meth:`register_edges`.  Cost is proportional to the degree sum of
        ``nodes`` — the local neighbourhood, not the sparsifier.
        """
        us, vs = self.incident_edge_arrays(nodes)
        self._unregister_pairs(us, vs)
        return list(zip(us.tolist(), vs.tolist()))

    def register_edges(self, edges: Sequence[Tuple[int, int]]) -> None:
        """Re-index edges under the (re-labelled) current clusters.

        Second half of the re-keying protocol; see
        :meth:`unregister_incident_edges`.
        """
        if not len(edges):
            return
        pairs = np.asarray(edges, dtype=np.int64)
        us = np.minimum(pairs[:, 0], pairs[:, 1])
        vs = np.maximum(pairs[:, 0], pairs[:, 1])
        self._register_pairs(us, vs)

    def mark_synced(self) -> None:
        """Record that the map reflects the hierarchy's current labels."""
        self._synced_labels_version = self._hierarchy.level_labels_version(self._level_index)

    def in_sync_with_hierarchy(self) -> bool:
        """``False`` when the filtering level was relabelled behind our back."""
        return self._synced_labels_version == self._hierarchy.level_labels_version(self._level_index)

    def resync(self) -> None:
        """Rebuild the cluster-pair map from scratch if (and only if) stale."""
        if not self.in_sync_with_hierarchy():
            self._rebuild_connectivity()
            self.mark_synced()

    # ------------------------------------------------------------------ #
    def _redistribution_deltas(self, cluster: int, weight: float):
        """Per-edge increments spreading ``weight`` proportionally inside ``cluster``.

        Returns ``(edges, deltas)`` or ``None`` when the cluster offers no
        positive-weight support — the single source of the redistribution
        arithmetic shared by the scalar and batched apply paths.  The edges
        are sorted canonically: the proportional split divides by the float
        *sum* of the current weights, whose rounding depends on summation
        order, so the arithmetic must not see bucket insertion order (which
        differs between an evolved filter and one rebuilt by a shard replan).
        """
        edges = sorted(self._intra_cluster_edges.get(cluster, {}))
        if not edges:
            return None
        # Keys in the bucket are canonical, so the weights can be gathered
        # straight from the edge map (same floats as ``Graph.weight``,
        # without its per-call canonicalisation/validation overhead).
        edge_map = self._sparsifier._edges
        current_weights = np.fromiter((edge_map[edge] for edge in edges),
                                      dtype=float, count=len(edges))
        total = current_weights.sum()
        if total <= 0:
            return None
        return edges, np.maximum(weight * (current_weights / total), 1e-300)

    def _redistribute_weight(self, cluster: int, weight: float) -> None:
        """Spread ``weight`` proportionally over the sparsifier edges inside ``cluster``.

        Applied through :meth:`~repro.graphs.graph.Graph.increase_weights`,
        which adds the same per-edge deltas in the same order as a scalar
        ``increase_weight`` loop (bit-identical floats) while validating the
        batch once and invalidating the cached views once.
        """
        spread = self._redistribution_deltas(cluster, weight)
        if spread is None:
            return
        edges, deltas = spread
        self._sparsifier.increase_weights(edges, deltas)

    def _redistribute_weight_bulk(self, cluster: int, weight: float) -> None:
        """Aggregated :meth:`_redistribute_weight`: one pass over the cluster.

        Sequential redistributions scale every member edge proportionally, so
        spreading ``w1`` then ``w2`` equals spreading ``w1 + w2`` in one shot
        — this method exploits that identity to touch each cluster edge once
        per batch instead of once per redistributed stream edge.
        """
        spread = self._redistribution_deltas(cluster, weight)
        if spread is None:
            return
        edges, deltas = spread
        self._sparsifier.increase_weights(edges, deltas)

    def _apply_single(self, estimate: DistortionEstimate) -> FilterDecision:
        p, q, weight = estimate.edge
        pair = self._cluster_pair(p, q)
        if pair[0] == pair[1]:
            # Both endpoints already live in one low-resistance cluster.
            if self._sparsifier.has_edge(p, q):
                # The sparsifier already carries this exact edge; treat the new
                # weight as a parallel conductor.
                self._sparsifier.increase_weight(p, q, weight)
                return FilterDecision(estimate.edge, FilterAction.MERGED_INTO_EXISTING,
                                      estimate.distortion, target_edge=(p, q), cluster_pair=pair)
            if self._redistribute:
                self._redistribute_weight(pair[0], weight)
            return FilterDecision(estimate.edge, FilterAction.REDISTRIBUTED_INTRA_CLUSTER,
                                  estimate.distortion, cluster_pair=pair)
        existing = self._representative(pair)
        if existing is not None:
            u, v = existing
            self._sparsifier.increase_weight(u, v, weight)
            return FilterDecision(estimate.edge, FilterAction.MERGED_INTO_EXISTING,
                                  estimate.distortion, target_edge=existing, cluster_pair=pair)
        # Spectrally unique edge: admit it and register the new cluster connection.
        self._sparsifier.add_edge(p, q, weight, merge="add")
        self._register_edge(p, q)
        return FilterDecision(estimate.edge, FilterAction.ADDED, estimate.distortion, cluster_pair=pair)

    def apply(self, estimates: Sequence[DistortionEstimate],
              *, max_additions: Optional[int] = None) -> Tuple[List[FilterDecision], FilterSummary]:
        """Filter a distortion-sorted batch of edges, mutating the sparsifier.

        Parameters
        ----------
        estimates:
            Candidate edges with distortion estimates, most distorting first
            (callers sort via :func:`repro.core.distortion.sort_by_distortion`).
        max_additions:
            Optional cap on how many edges may be added in this pass; once
            reached, remaining inter-cluster candidates are merged into their
            cluster-pair representative instead of being added.
        """
        decisions: List[FilterDecision] = []
        summary = FilterSummary()
        for estimate in estimates:
            if max_additions is not None and summary.added >= max_additions:
                p, q, weight = estimate.edge
                pair = self._cluster_pair(p, q)
                existing = self._representative(pair)
                if pair[0] != pair[1] and existing is not None:
                    u, v = existing
                    self._sparsifier.increase_weight(u, v, weight)
                    decision = FilterDecision(estimate.edge, FilterAction.MERGED_INTO_EXISTING,
                                              estimate.distortion, target_edge=existing, cluster_pair=pair)
                elif pair[0] == pair[1]:
                    if self._redistribute:
                        self._redistribute_weight(pair[0], weight)
                    decision = FilterDecision(estimate.edge, FilterAction.REDISTRIBUTED_INTRA_CLUSTER,
                                              estimate.distortion, cluster_pair=pair)
                else:
                    decision = FilterDecision(estimate.edge, FilterAction.DROPPED_LOW_DISTORTION,
                                              estimate.distortion, cluster_pair=pair)
            else:
                decision = self._apply_single(estimate)
            decisions.append(decision)
            if decision.action is FilterAction.ADDED:
                summary.added += 1
            elif decision.action is FilterAction.MERGED_INTO_EXISTING:
                summary.merged += 1
            elif decision.action is FilterAction.REDISTRIBUTED_INTRA_CLUSTER:
                summary.redistributed += 1
            else:
                summary.dropped += 1
        return decisions, summary

    def apply_batch(self, batch: DistortionBatch, *, max_additions: Optional[int] = None,
                    record_arrays: bool = False,
                    ) -> Tuple[Union[List[FilterDecision], FilterDecisionBatch], FilterSummary]:
        """Vectorised :meth:`apply`: resolve a distortion-sorted batch by cluster group.

        Produces exactly the same decisions and sparsifier *edge set* as
        feeding the batch through :meth:`apply` edge by edge; weight
        mutations are aggregated per target edge / per cluster (differing
        from the scalar path only in floating-point association), except for
        clusters that receive both merge and redistribution traffic in one
        batch, whose operations are replayed in stream order so even the
        weights stay bit-identical there.

        The mechanism: the cluster labels of every endpoint are gathered in
        one shot, edges sharing a cluster pair form a group, and each group
        is resolved once — the first edge of a previously unconnected
        inter-cluster group is ADDED, everything else merges into its group's
        representative or redistributes inside its cluster.

        With ``record_arrays=True`` the decisions come back as one
        :class:`FilterDecisionBatch` (SoA arrays, no per-edge objects) —
        identical information, an order of magnitude less allocator/GC
        traffic on 10⁵-edge batches.

        Without an additions cap the batch is resolved *per cluster-pair
        group* rather than per edge: unique cluster pairs are far fewer than
        streamed edges on paper-scale streams (10⁵ edges typically collapse
        onto ~10⁴ pairs), so the remaining Python loop runs once per group
        while the per-edge work — labels, grouping, decision records,
        aggregated merge weights — stays in numpy.  With ``max_additions``
        the decision of each edge depends on how many additions preceded it,
        so the streamed per-edge loop is kept for that case.
        """
        m = len(batch)
        if m == 0:
            if record_arrays:
                return FilterDecisionBatch.empty(0), FilterSummary()
            return [], FilterSummary()
        if max_additions is None:
            return self._apply_batch_grouped(batch, record_arrays)
        return self._apply_batch_streamed(batch, max_additions, record_arrays)

    def _apply_batch_grouped(self, batch: DistortionBatch, record_arrays: bool,
                             ) -> Tuple[Union[List[FilterDecision], FilterDecisionBatch], FilterSummary]:
        """Group-resolved :meth:`apply_batch` for the uncapped case.

        Produces decisions, sparsifier edge set *and weights* identical to
        the streamed loop: ADDED edges are inserted in stream order (so the
        sparsifier's edge-dict order — and therefore any later connectivity
        rebuild — matches), aggregated merge weights accumulate per target in
        stream order, and intra-cluster operations keep the streamed loop's
        dirty-cluster replay.
        """
        m = len(batch)
        summary = FilterSummary()
        sparsifier = self._sparsifier
        labels = np.asarray(self._labels)
        us, vs, ws = batch.us, batch.vs, batch.ws
        cu = labels[us]
        cv = labels[vs]
        lo = np.minimum(cu, cv).astype(np.int64, copy=False)
        hi = np.maximum(cu, cv).astype(np.int64, copy=False)
        inter_idx = np.flatnonzero(lo != hi)
        intra_idx = np.flatnonzero(lo == hi)

        actions = np.empty(m, dtype=np.int8)
        target_us = np.full(m, -1, dtype=np.int64)
        target_vs = np.full(m, -1, dtype=np.int64)

        # ---- inter-cluster edges: one resolution per unique cluster pair.
        merge_pairs: List[Tuple[int, int]] = []
        merge_deltas = np.zeros(0)
        if inter_idx.size:
            keys = (lo[inter_idx] << np.int64(32)) | hi[inter_idx]
            _, first_pos, inverse = np.unique(keys, return_index=True, return_inverse=True)
            num_groups = first_pos.shape[0]
            first_global = inter_idx[first_pos]
            group_tu = np.empty(num_groups, dtype=np.int64)
            group_tv = np.empty(num_groups, dtype=np.int64)
            group_added = np.zeros(num_groups, dtype=bool)
            lo_first = lo[first_global].tolist()
            hi_first = hi[first_global].tolist()
            us_first = us[first_global].tolist()
            vs_first = vs[first_global].tolist()
            ws_first = ws[first_global].tolist()
            connectivity = self._connectivity
            add_unchecked = sparsifier.add_edge_unchecked
            # Visit groups in stream order of their first edge: the streamed
            # loop inserts ADDED edges in exactly that order.
            for g in np.argsort(first_pos, kind="stable").tolist():
                pair = (lo_first[g], hi_first[g])
                bucket = connectivity.get(pair)
                if bucket:
                    # Canonical representative (see _representative): merged
                    # weight must land on a bucket-content-determined edge.
                    tu, tv = min(bucket)
                else:
                    p, q = us_first[g], vs_first[g]
                    tu, tv = (p, q) if p <= q else (q, p)
                    add_unchecked(p, q, ws_first[g])
                    if bucket is None:
                        connectivity[pair] = {(tu, tv): None}
                    else:
                        bucket[(tu, tv)] = None
                    group_added[g] = True
                group_tu[g] = tu
                group_tv[g] = tv
            actions[inter_idx] = _ACTION_TO_CODE[FilterAction.MERGED_INTO_EXISTING]
            target_us[inter_idx] = group_tu[inverse]
            target_vs[inter_idx] = group_tv[inverse]
            added_first = first_global[group_added]
            actions[added_first] = _ACTION_TO_CODE[FilterAction.ADDED]
            target_us[added_first] = -1
            target_vs[added_first] = -1
            # Aggregated merge weights: every inter edge except the ADDED
            # firsts; bincount accumulates in array (= stream) order, so the
            # per-target float sums equal the streamed loop's.
            contrib = np.ones(inter_idx.size, dtype=bool)
            contrib[first_pos[group_added]] = False
            totals = np.bincount(inverse[contrib], weights=ws[inter_idx[contrib]],
                                 minlength=num_groups)
            carriers = np.flatnonzero(totals > 0)
            merge_pairs = list(zip(group_tu[carriers].tolist(), group_tv[carriers].tolist()))
            merge_deltas = totals[carriers]
            summary.added = int(group_added.sum())
            summary.merged = int(inter_idx.size) - summary.added

        # ---- intra-cluster edges: streamed (they are few, and the dirty-
        # cluster replay is inherently order-sensitive).
        intra_ops: List[Tuple[str, int, Optional[Tuple[int, int]], float]] = []
        spread_clusters: set = set()
        merge_clusters: set = set()
        redistribute = self._redistribute
        if intra_idx.size:
            sparsifier_edges = sparsifier._edges  # membership probes only
            merged_code = _ACTION_TO_CODE[FilterAction.MERGED_INTO_EXISTING]
            redistributed_code = _ACTION_TO_CODE[FilterAction.REDISTRIBUTED_INTRA_CLUSTER]
            for e, p, q, weight, cluster in zip(intra_idx.tolist(), us[intra_idx].tolist(),
                                                vs[intra_idx].tolist(), ws[intra_idx].tolist(),
                                                lo[intra_idx].tolist()):
                key = (p, q) if p <= q else (q, p)
                if key in sparsifier_edges:
                    intra_ops.append(("merge", cluster, key, weight))
                    merge_clusters.add(cluster)
                    actions[e] = merged_code
                    target_us[e] = p
                    target_vs[e] = q
                    summary.merged += 1
                else:
                    if redistribute:
                        intra_ops.append(("spread", cluster, None, weight))
                        spread_clusters.add(cluster)
                    actions[e] = redistributed_code
                    summary.redistributed += 1

        # ---- aggregated mutations, replicating the streamed loop's order:
        # dirty-cluster replay first, then one bulk weight increase, then the
        # per-cluster bulk redistributions.
        dirty = merge_clusters & spread_clusters
        merge_totals: Dict[Tuple[int, int], float] = {}
        spread_totals: Dict[int, float] = {}
        for kind, cluster, key, weight in intra_ops:
            if cluster in dirty:
                if kind == "merge":
                    sparsifier.increase_weight(key[0], key[1], weight)
                else:
                    self._redistribute_weight(cluster, weight)
            elif kind == "merge":
                merge_totals[key] = merge_totals.get(key, 0.0) + weight
            else:
                spread_totals[cluster] = spread_totals.get(cluster, 0.0) + weight
        targets = merge_pairs + list(merge_totals.keys())
        if targets:
            deltas = np.concatenate([
                merge_deltas,
                np.fromiter(merge_totals.values(), dtype=float, count=len(merge_totals)),
            ])
            sparsifier.increase_weights(targets, deltas)
        for cluster, weight in spread_totals.items():
            self._redistribute_weight_bulk(cluster, weight)

        if record_arrays:
            records = FilterDecisionBatch(
                us=us.copy(), vs=vs.copy(), ws=ws.copy(),
                distortions=batch.distortions.copy(),
                actions=actions, target_us=target_us, target_vs=target_vs,
                pair_los=lo, pair_his=hi,
            )
            return records, summary
        decisions: List[FilterDecision] = []
        us_l, vs_l, ws_l = us.tolist(), vs.tolist(), ws.tolist()
        lo_l, hi_l = lo.tolist(), hi.tolist()
        distortions_l = batch.distortions.tolist()
        actions_l = actions.tolist()
        tus_l, tvs_l = target_us.tolist(), target_vs.tolist()
        for i in range(m):
            target = None if tus_l[i] < 0 else (tus_l[i], tvs_l[i])
            decisions.append(
                FilterDecision((us_l[i], vs_l[i], ws_l[i]), _CODE_TO_ACTION[actions_l[i]],
                               distortions_l[i], target, (lo_l[i], hi_l[i]))
            )
        return decisions, summary

    def _apply_batch_streamed(self, batch: DistortionBatch, max_additions: Optional[int],
                              record_arrays: bool,
                              ) -> Tuple[Union[List[FilterDecision], FilterDecisionBatch], FilterSummary]:
        """Per-edge :meth:`apply_batch` loop (the additions-capped path)."""
        m = len(batch)
        decisions: List[FilterDecision] = []
        summary = FilterSummary()

        labels = np.asarray(self._labels)
        cu = labels[batch.us]
        cv = labels[batch.vs]
        lo = np.minimum(cu, cv).tolist()
        hi = np.maximum(cu, cv).tolist()
        us = batch.us.tolist()
        vs = batch.vs.tolist()
        ws = batch.ws.tolist()
        distortions = batch.distortions.tolist()
        sparsifier = self._sparsifier
        sparsifier_edges = sparsifier._edges  # membership probes + in-loop inserts below

        # Per-cluster-pair state, resolved lazily on first encounter.
        pair_reps: Dict[ClusterPair, Optional[Tuple[int, int]]] = {}
        # Aggregated weight increments onto existing/added edges (inter-cluster
        # merges and clean intra-cluster merges — pure additions, no reads).
        merge_totals: Dict[Tuple[int, int], float] = defaultdict(float)
        # Ordered intra-cluster operations; replayed or aggregated after the
        # decision pass depending on whether the cluster is "dirty" (mixes
        # merges and redistributions, making order significant).
        intra_ops: List[Tuple[str, int, Optional[Tuple[int, int]], float]] = []
        spread_clusters: set = set()
        merge_clusters: set = set()

        # Local bindings: this loop runs once per streamed edge and is the
        # only per-edge Python left in the batched engine.
        decision_cls = FilterDecision
        action_added = FilterAction.ADDED
        action_merged = FilterAction.MERGED_INTO_EXISTING
        action_redistributed = FilterAction.REDISTRIBUTED_INTRA_CLUSTER
        action_dropped = FilterAction.DROPPED_LOW_DISTORTION
        redistribute = self._redistribute
        connectivity = self._connectivity
        add_unchecked = sparsifier.add_edge_unchecked
        added = merged = redistributed = dropped = 0
        append_decision = decisions.append
        append_intra = intra_ops.append
        reps_get = pair_reps.get
        missing = object()  # sentinel: pair not seen yet (None = "seen, no rep")
        no_cap = max_additions is None
        if record_arrays:
            records = FilterDecisionBatch(
                us=batch.us.copy(), vs=batch.vs.copy(), ws=batch.ws.copy(),
                distortions=batch.distortions.copy(),
                actions=np.zeros(m, dtype=np.int8),
                target_us=np.full(m, -1, dtype=np.int64),
                target_vs=np.full(m, -1, dtype=np.int64),
                pair_los=np.asarray(lo, dtype=np.int64),
                pair_his=np.asarray(hi, dtype=np.int64),
            )
            record_actions = records.actions
            record_target_us = records.target_us
            record_target_vs = records.target_vs
        else:
            records = None
            record_actions = record_target_us = record_target_vs = None

        for index, (p, q, weight, cluster_lo, cluster_hi, distortion) in enumerate(
                zip(us, vs, ws, lo, hi, distortions)):
            target_edge = None
            if cluster_lo == cluster_hi:
                capped = not (no_cap or added < max_additions)
                key = (p, q) if p <= q else (q, p)
                if not capped and key in sparsifier_edges:
                    # Parallel conductor of an edge the sparsifier carries.
                    append_intra(("merge", cluster_lo, key, weight))
                    merge_clusters.add(cluster_lo)
                    action = action_merged
                    target_edge = (p, q)
                    merged += 1
                else:
                    if redistribute:
                        append_intra(("spread", cluster_lo, None, weight))
                        spread_clusters.add(cluster_lo)
                    action = action_redistributed
                    redistributed += 1
            else:
                pair = (cluster_lo, cluster_hi)
                representative = reps_get(pair, missing)
                if representative is missing:
                    representative = self._representative(pair)
                    pair_reps[pair] = representative
                if representative is not None:
                    merge_totals[representative] += weight
                    action = action_merged
                    target_edge = representative
                    merged += 1
                elif not (no_cap or added < max_additions):
                    action = action_dropped
                    dropped += 1
                else:
                    # Spectrally unique: admit and make the connection visible
                    # to the rest of the batch (inline _register_edge — the
                    # cluster pair is already in hand).
                    key = (p, q) if p <= q else (q, p)
                    add_unchecked(p, q, weight)
                    bucket = connectivity.get(pair)
                    if bucket is None:
                        connectivity[pair] = {key: None}
                    else:
                        bucket[key] = None
                    pair_reps[pair] = key
                    action = action_added
                    added += 1
            if record_actions is not None:
                record_actions[index] = _ACTION_TO_CODE[action]
                if target_edge is not None:
                    record_target_us[index] = target_edge[0]
                    record_target_vs[index] = target_edge[1]
            else:
                append_decision(decision_cls((p, q, weight), action, distortion,
                                             target_edge, (cluster_lo, cluster_hi)))
        summary.added = added
        summary.merged = merged
        summary.redistributed = redistributed
        summary.dropped = dropped

        # Apply the aggregated mutations.  Inter-cluster merge targets are
        # disjoint from intra-cluster redistribution targets, so their order
        # does not matter; intra ops in clusters mixing merges and
        # redistributions are replayed in stream order for exactness.
        dirty = merge_clusters & spread_clusters
        spread_totals: Dict[int, float] = {}
        for kind, cluster, key, weight in intra_ops:
            if cluster in dirty:
                if kind == "merge":
                    self._sparsifier.increase_weight(key[0], key[1], weight)
                else:
                    self._redistribute_weight(cluster, weight)
            elif kind == "merge":
                merge_totals[key] = merge_totals.get(key, 0.0) + weight
            else:
                spread_totals[cluster] = spread_totals.get(cluster, 0.0) + weight
        if merge_totals:
            targets = list(merge_totals.keys())
            self._sparsifier.increase_weights(targets, np.fromiter(merge_totals.values(), dtype=float,
                                                                   count=len(targets)))
        for cluster, weight in spread_totals.items():
            self._redistribute_weight_bulk(cluster, weight)
        if records is not None:
            return records, summary
        return decisions, summary
