"""inGRASS update phase (Algorithm 1, steps 4-5) and its fully dynamic extension.

Each insertion update call receives a batch of newly streamed edges and,
using only the ``O(log N)``-dimensional embeddings produced by the setup
phase:

1. estimates the spectral distortion of every new edge (Section III-C-1) and
   sorts the batch so the most spectrally-critical edges are considered first;
2. runs the spectral-similarity filter at the level matching the target
   condition number (Section III-C-2), which adds unique edges, merges
   redundant inter-cluster edges into existing ones, and redistributes the
   weight of intra-cluster edges.

The cost is ``O(log N)`` per streamed edge — no resistance recomputation, no
re-sparsification.

:func:`run_removal` extends the protocol beyond the paper to *edge deletions*:
a removed edge always leaves the tracked graph, and when it was also carried
by the sparsifier the function (a) invalidates the similarity filter's
connectivity map and the hierarchy's cached cluster diameters, (b) reconnects
the sparsifier with the most-distorting surviving graph edges if the removal
split a cluster, (c) locally re-admits the best replacement off-tree edges
around the removal through the same similarity filter, and (d) optionally
keeps admitting globally most-distorting edges until κ returns under a
configured guard bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import InGrassConfig
from repro.core.distortion import (
    DistortionBatch,
    estimate_distortions,
    filter_by_threshold,
    score_edge_arrays,
    score_edges,
    sort_by_distortion,
)
from repro.core.filtering import (
    FilterAction,
    FilterDecision,
    FilterDecisionBatch,
    FilterSummary,
    SimilarityFilter,
)
from repro.core.maintenance import HierarchyMaintainer
from repro.core.setup import SetupResult
from repro.graphs.graph import Graph, canonical_edge
from repro.graphs.unionfind import UnionFind
from repro.graphs.validation import (
    GraphValidationError,
    canonicalize_edge_pairs,
    validate_new_edge_arrays,
)
from repro.utils.timing import Timer

Edge = Tuple[int, int]
WeightedEdge = Tuple[int, int, float]


@dataclass
class UpdateResult:
    """Outcome of one incremental update call."""

    #: Per-edge filter decisions: a list of :class:`FilterDecision` objects,
    #: or one SoA :class:`FilterDecisionBatch` when the batch ran with
    #: ``config.decision_records="arrays"`` (iterating either yields the same
    #: :class:`FilterDecision` values).
    decisions: Union[List[FilterDecision], FilterDecisionBatch]
    summary: FilterSummary
    filtering_level: int
    update_seconds: float
    dropped_low_distortion: int = 0
    #: Report of the κ-guard pass, when the driver ran one after this batch
    #: (mirrors :attr:`RemovalResult.kappa_guard` so insertion-only batches
    #: carry the same quality bookkeeping as mixed ones).
    kappa_guard: Optional["KappaGuardReport"] = None
    #: Clusters fused by the hierarchy maintainer after this batch
    #: (``hierarchy_mode="maintain"`` only).
    hierarchy_merges: int = 0

    @property
    def added_edges(self) -> List[WeightedEdge]:
        """Edges that were actually inserted into the sparsifier."""
        if isinstance(self.decisions, FilterDecisionBatch):
            return self.decisions.added_edges()
        return [d.edge for d in self.decisions if d.action is FilterAction.ADDED]


def _select_filtering_level(setup: SetupResult, config: InGrassConfig,
                            target_condition_number: Optional[float]) -> int:
    """Resolve the similarity filtering level from config / target κ."""
    if config.filtering_level is not None:
        return config.filtering_level
    target = target_condition_number if target_condition_number is not None else config.target_condition_number
    if target is None:
        raise ValueError(
            "a target condition number (or an explicit filtering_level) is required "
            "to choose the similarity filtering level"
        )
    return setup.filtering_level_for(target, config.filtering_size_divisor)


def _ensure_filter(sparsifier: Graph, setup: SetupResult, level: int, config: InGrassConfig,
                   similarity_filter: Optional[SimilarityFilter]) -> SimilarityFilter:
    """Reuse the caller's filter when it matches the level, else build a fresh one."""
    if similarity_filter is not None and similarity_filter.filtering_level == level:
        # An out-of-band relabel of the filtering level (a maintainer the
        # caller drove without handing over the filter) shows up as a label
        # version mismatch; resync rebuilds the cluster-pair map exactly once.
        similarity_filter.resync()
        return similarity_filter
    return SimilarityFilter(
        sparsifier, setup.hierarchy, level,
        redistribute_intra_cluster_weight=config.redistribute_intra_cluster_weight,
    )


def _ensure_maintainer(sparsifier: Graph, setup: SetupResult, config: InGrassConfig,
                       maintainer: Optional[HierarchyMaintainer]) -> Optional[HierarchyMaintainer]:
    """Resolve the hierarchy maintainer for ``config.hierarchy_mode``.

    Returns ``None`` in rebuild mode; in maintain mode the caller's
    maintainer is reused when it is bound to this setup's hierarchy,
    otherwise a fresh one is built.
    """
    if config.hierarchy_mode != "maintain":
        return None
    if maintainer is not None and maintainer.hierarchy is setup.hierarchy:
        return maintainer
    return setup.make_maintainer(sparsifier, config)


def run_update(sparsifier: Graph, setup: SetupResult, new_edges: Sequence[WeightedEdge],
               config: Optional[InGrassConfig] = None, *,
               target_condition_number: Optional[float] = None,
               similarity_filter: Optional[SimilarityFilter] = None,
               maintainer: Optional[HierarchyMaintainer] = None,
               distortion_median: Optional[float] = None,
               scored_batch: Optional["DistortionBatch"] = None) -> UpdateResult:
    """Apply one batch of streamed edges to ``sparsifier`` (mutated in place).

    Parameters
    ----------
    sparsifier:
        Current sparsifier ``H(k)``; updated in place to ``H(k+1)``.
    setup:
        Artifacts from :func:`repro.core.setup.run_setup`.
    new_edges:
        Batch of ``(u, v, weight)`` edges newly added to the original graph.
    config:
        inGRASS configuration (filtering level override, distortion threshold,
        weight-redistribution toggle, fill cap).
    target_condition_number:
        Target κ used to select the filtering level; overrides
        ``config.target_condition_number`` when given.  Required through one
        of the two routes unless ``config.filtering_level`` is set.
    similarity_filter:
        Reuse an existing filter (keeps its cluster-connectivity state across
        batches); by default a fresh filter is built from the sparsifier.
    maintainer:
        Hierarchy maintainer driving in-place cluster merges after the batch
        (``config.hierarchy_mode="maintain"``); built on demand when omitted
        in that mode, ignored in rebuild mode.
    distortion_median:
        Precomputed median distortion used as the reference of the relative
        ``config.distortion_threshold`` cut.  The sharded driver passes the
        *global* batch median here so per-shard sub-batches drop exactly the
        edges the unsharded oracle would; ``None`` (default) derives the
        median from ``new_edges`` itself.
    scored_batch:
        Pre-scored, pre-validated batch (``new_edges`` is then ignored).
        The sharded driver's threshold pipeline scores each shard's slice
        once in its parallel phase, takes the global median at the barrier
        and hands the slices here, so no edge is ever scored twice.
    """
    config = config if config is not None else InGrassConfig()
    timer = Timer().start()
    if scored_batch is not None:
        us, vs, ws = scored_batch.us, scored_batch.vs, scored_batch.ws
    else:
        us, vs, ws = validate_new_edge_arrays(sparsifier, new_edges)
    batch_size = int(us.shape[0])

    level = _select_filtering_level(setup, config, target_condition_number)
    similarity_filter = _ensure_filter(sparsifier, setup, level, config, similarity_filter)
    maintainer = _ensure_maintainer(sparsifier, setup, config, maintainer)

    max_additions = None
    if config.max_fill_fraction < 1.0:
        max_additions = max(1, int(round(config.max_fill_fraction * batch_size)))

    if config.use_vectorized(batch_size):
        # Batched engine: score, threshold and sort the whole stream as
        # numpy arrays, then resolve the similarity filter per cluster group.
        batch = (scored_batch if scored_batch is not None
                 else score_edge_arrays(setup.embedding, us, vs, ws))
        batch, dropped_batch = batch.split_by_threshold(config.distortion_threshold,
                                                        median=distortion_median)
        record_arrays = config.decision_records == "arrays"
        decisions, summary = similarity_filter.apply_batch(batch.sort(), max_additions=max_additions,
                                                           record_arrays=record_arrays)
        num_dropped = len(dropped_batch)
        summary.dropped += num_dropped
        if record_arrays:
            decisions = decisions.extended_with_dropped(
                dropped_batch.us, dropped_batch.vs, dropped_batch.ws, dropped_batch.distortions,
            )
        else:
            dropped_distortions = dropped_batch.distortions.tolist()
            for index in range(num_dropped):
                decisions.append(
                    FilterDecision(edge=dropped_batch.edge(index),
                                   action=FilterAction.DROPPED_LOW_DISTORTION,
                                   distortion=dropped_distortions[index])
                )
    else:
        cleaned = list(zip(us.tolist(), vs.tolist(), ws.tolist()))
        estimates = estimate_distortions(setup.embedding, cleaned)
        estimates, dropped = filter_by_threshold(estimates, config.distortion_threshold,
                                                 median=distortion_median)
        estimates = sort_by_distortion(estimates)
        decisions, summary = similarity_filter.apply(estimates, max_additions=max_additions)
        num_dropped = len(dropped)
        summary.dropped += num_dropped
        for item in dropped:
            decisions.append(
                FilterDecision(edge=item.edge, action=FilterAction.DROPPED_LOW_DISTORTION,
                               distortion=item.distortion)
            )
    hierarchy_merges = 0
    if maintainer is not None and summary.added:
        added = (decisions.added_edges() if isinstance(decisions, FilterDecisionBatch)
                 else [d.edge for d in decisions if d.action is FilterAction.ADDED])
        hierarchy_merges = maintainer.note_insertions(added, similarity_filter=similarity_filter)
    timer.stop()
    return UpdateResult(
        decisions=decisions,
        summary=summary,
        filtering_level=level,
        update_seconds=timer.elapsed,
        dropped_low_distortion=num_dropped,
        hierarchy_merges=hierarchy_merges,
    )


# --------------------------------------------------------------------------- #
# Deletion path (fully dynamic extension)
# --------------------------------------------------------------------------- #
def prepare_removal_batch(graph: Graph, removals: Sequence) -> Tuple[List[Edge], dict]:
    """Canonicalise a removal batch and capture its physical graph weights.

    Returns the deduplicated canonical pairs (the ``requested`` list every
    removal record reports) and the ``(u, v) -> weight`` map of the weights
    the edges had in the tracked graph before their removal (present only for
    ``(u, v, w)`` triples).  Raises when a requested pair is still present in
    ``graph`` — the deletions must be applied to the tracked graph first,
    because it is the candidate pool for replacement edges.
    """
    requested = canonicalize_edge_pairs(removals)
    graph_weights: dict[Edge, float] = {}
    for item in removals:
        if len(item) >= 3:
            u, v = int(item[0]), int(item[1])
            graph_weights[(u, v) if u <= v else (v, u)] = float(item[2])
    for u, v in requested:
        if graph.has_edge(u, v):
            raise GraphValidationError(
                f"removal ({u}, {v}) is still present in the tracked graph; "
                "remove the edges from the graph before calling run_removal"
            )
    return requested, graph_weights


def slice_graph_weights(requested: Sequence[Tuple[int, Edge]],
                        graph_weights: dict) -> dict:
    """Restrict a removal batch's physical-weight map to one job's pairs.

    The process executor ships each shard only the ``(u, v) -> weight``
    entries its drop-stage items can actually read, so the per-worker payload
    scales with the shard's slice instead of the whole batch.
    """
    return {pair: graph_weights[pair] for _position, pair in requested
            if pair in graph_weights}


@dataclass
class RemovalStage1Result:
    """Outcome of the drop stage of one removal (sub-)batch.

    The entries carry the position of each edge in the canonical ``requested``
    list of the whole batch, so the sharded driver — which runs one drop stage
    per shard — can stitch the per-shard outcomes back into the exact record
    the unsharded pipeline produces (lists in request order, weight sums
    accumulated in request order).
    """

    #: ``(position, (u, v, carried_weight))`` for every edge the sparsifier
    #: carried and dropped.
    removed: List[Tuple[int, WeightedEdge]] = field(default_factory=list)
    #: ``(position, excess_weight, reassigned)`` for every dropped edge that
    #: had absorbed weight beyond its physical share.
    excesses: List[Tuple[int, float, bool]] = field(default_factory=list)
    #: Hierarchy levels whose cached diameters were inflated (``inflate`` only).
    inflated_levels: int = 0


def run_removal_drop_stage(sparsifier: Graph, setup: SetupResult,
                           requested: Sequence[Tuple[int, Edge]],
                           graph_weights: dict, *,
                           similarity_filter, config: InGrassConfig,
                           inflate: bool) -> RemovalStage1Result:
    """Stage 1 of the removal pipeline: drop, invalidate, re-home.

    For every ``(position, (u, v))`` pair the sparsifier carries: remove the
    edge, discard it from the similarity filter's cluster-pair bucket, and
    re-home any excess weight earlier merge/redistribute decisions parked on
    it onto surviving support of the same cluster pair.  With ``inflate``
    (rebuild mode) the cached cluster diameters containing both endpoints are
    additionally stretched via
    :meth:`~repro.core.hierarchy.ClusterHierarchy.note_edge_removed`.

    Every mutation touches only state reachable through ``similarity_filter``
    and the dropped edges' own cluster pairs, which is what lets the sharded
    driver run one drop stage per shard (each against its
    :class:`~repro.core.sharding.ShardScopedFilter` view) — concurrently for
    intra-shard edges — and still reproduce the unsharded pipeline bit for
    bit: operations of different shards touch disjoint buckets and disjoint
    sparsifier edges, so any interleaving commutes.  Hierarchy inflation is
    the one globally shared mutation, which is why the sharded driver passes
    ``inflate=False`` here and replays the inflations post-barrier in request
    order.

    The per-edge loop stays sequential — re-homing edge ``i``'s excess may
    pick a representative that a later request removes, so remove/notify/
    re-home must interleave exactly as written — but everything derivable
    up front is batched: cluster pairs come from one vectorised label
    gather (labels never change during the drop stage), and the graph/
    filter mutations are inlined dict operations with a single view
    invalidation for the whole stage instead of one per removal.
    """
    result = RemovalStage1Result()
    items = list(requested)
    if not items:
        return result
    us = np.fromiter((pair[0] for _pos, pair in items), dtype=np.int64,
                     count=len(items))
    vs = np.fromiter((pair[1] for _pos, pair in items), dtype=np.int64,
                     count=len(items))
    node_los = np.minimum(us, vs)
    node_his = np.maximum(us, vs)
    labels = similarity_filter._labels
    cluster_us = labels[node_los]
    cluster_vs = labels[node_his]
    ps = np.minimum(cluster_us, cluster_vs).tolist()
    qs = np.maximum(cluster_us, cluster_vs).tolist()
    keys = list(zip(node_los.tolist(), node_his.tolist()))
    positions = [position for position, _pair in items]
    physicals = [graph_weights.get(key) for key in keys]

    edge_map = sparsifier._edges
    adjacency = sparsifier._adjacency
    intra = similarity_filter._intra_cluster_edges
    connectivity = similarity_filter._connectivity
    redistribute = similarity_filter._redistribute
    hierarchy = setup.hierarchy
    inflation = config.removal_diameter_inflation
    removed_append = result.removed.append
    excess_append = result.excesses.append
    try:
        for position, key, p, q, physical in zip(positions, keys, ps, qs,
                                                 physicals):
            weight = edge_map.pop(key, None)
            if weight is None:
                continue
            u, v = key
            del adjacency[u][v]
            del adjacency[v][u]
            # Inlined filter unregister.  ``pop(..., None)`` self-gates
            # shard-scoped views: an edge the view does not own is never in
            # its buckets, matching the ``owns_edge`` guard of the scalar
            # protocol.
            if p == q:
                bucket = intra.get(p)
                if bucket is not None:
                    bucket.pop(key, None)
                    if not bucket:
                        del intra[p]
            else:
                bucket = connectivity.get((p, q))
                if bucket is not None:
                    bucket.pop(key, None)
                    if not bucket:
                        del connectivity[(p, q)]
            if inflate:
                result.inflated_levels += hierarchy.note_edge_removed(
                    u, v, inflation_factor=inflation
                )
            removed_append((position, (u, v, weight)))
            if physical is not None and weight > physical:
                excess = weight - physical
                # Inlined reassign_weight with the precomputed cluster pair.
                if p == q:
                    if redistribute and intra.get(p):
                        similarity_filter._redistribute_weight(p, excess)
                        reassigned = True
                    else:
                        reassigned = False
                else:
                    bucket = connectivity.get((p, q))
                    if bucket:
                        rep_u, rep_v = min(bucket)
                        sparsifier.increase_weight(rep_u, rep_v, excess)
                        reassigned = True
                    else:
                        reassigned = False
                excess_append((position, excess, reassigned))
    finally:
        sparsifier._invalidate_views()
    return result


def merge_drop_stages(result: RemovalResult,
                      stages: Sequence[RemovalStage1Result]) -> None:
    """Fold per-shard drop stages into ``result`` in request order.

    Restores exactly the record the single-stage pipeline produces: the
    ``removed_from_sparsifier`` list ordered by request position and the
    reassigned/discarded weight sums accumulated in that same order (float
    addition is not associative, so the summation order is part of the
    bit-exactness contract).
    """
    removed = sorted((entry for stage in stages for entry in stage.removed),
                     key=lambda item: item[0])
    result.removed_from_sparsifier = [edge for _, edge in removed]
    excesses = sorted((entry for stage in stages for entry in stage.excesses),
                      key=lambda item: item[0])
    reassigned = 0.0
    discarded = 0.0
    for _, excess, was_reassigned in excesses:
        if was_reassigned:
            reassigned += excess
        else:
            discarded += excess
    result.reassigned_weight = reassigned
    result.discarded_weight = discarded
    result.inflated_levels = sum(stage.inflated_levels for stage in stages)


@dataclass
class RemovalResult:
    """Outcome of one edge-removal call against the sparsifier."""

    #: Canonical pairs the caller asked to delete (deduplicated).
    requested: List[Edge]
    #: Edges that were carried by the sparsifier and removed from it (with
    #: the weight they carried at removal time).
    removed_from_sparsifier: List[WeightedEdge]
    #: Replacement edges added purely to restore sparsifier connectivity.
    reconnection_edges: List[WeightedEdge]
    #: Replacement edges admitted by the local quality-repair pass.
    repair_edges: List[WeightedEdge] = field(default_factory=list)
    #: Repair candidates skipped because the filtering level already carries
    #: an equivalent connection (no weight is ever duplicated on skips).
    repair_skipped: int = 0
    #: Excess weight (beyond the physical edge weight) that removed
    #: sparsifier edges had absorbed from earlier merge/redistribute
    #: decisions, re-homed onto surviving support of the same cluster pair.
    reassigned_weight: float = 0.0
    #: Excess weight for which no surviving support existed (dropped).
    discarded_weight: float = 0.0
    #: Hierarchy levels whose cached cluster diameters were inflated
    #: (rebuild mode only; the maintenance mode recomputes instead).
    inflated_levels: int = 0
    filtering_level: int = 0
    removal_seconds: float = 0.0
    #: Report of the κ-guard pass, when the driver ran one after this batch.
    kappa_guard: Optional["KappaGuardReport"] = None
    #: Clusters whose interior the hierarchy maintainer re-examined
    #: (``hierarchy_mode="maintain"`` only).
    spliced_clusters: int = 0
    #: New cluster fragments the maintainer created by splitting.
    split_fragments: int = 0
    #: Clusters the maintainer fused around repair/reconnection edges.
    hierarchy_merges: int = 0

    @property
    def repaired_edges(self) -> List[WeightedEdge]:
        """All edges (re)admitted into the sparsifier by this removal call."""
        return self.reconnection_edges + self.repair_edges

    @property
    def num_repairs(self) -> int:
        """Total number of edges admitted (reconnection + repair + guard)."""
        total = len(self.reconnection_edges) + len(self.repair_edges)
        if self.kappa_guard is not None:
            total += len(self.kappa_guard.added_edges)
        return total


@dataclass
class KappaGuardReport:
    """Outcome of one κ-guard pass (see :func:`run_kappa_guard`)."""

    bound: float
    kappa_before: float
    kappa_after: float
    rounds: int = 0
    added_edges: List[WeightedEdge] = field(default_factory=list)
    guard_seconds: float = 0.0

    @property
    def satisfied(self) -> bool:
        """``True`` when the final κ is within the guard bound."""
        return self.kappa_after <= self.bound


def _rank_candidates(setup: SetupResult, candidates: Sequence[WeightedEdge], config: InGrassConfig,
                     *, relative_threshold: float = 0.0) -> List[WeightedEdge]:
    """Candidate edges sorted by decreasing estimated distortion.

    Dispatches between the vectorised batch kernels and the per-edge scalar
    path via ``config.batch_mode``; both give the same (stable) order.
    """
    if not candidates:
        return []
    if config.use_vectorized(len(candidates)):
        batch = score_edges(setup.embedding, candidates)
        if relative_threshold > 0:
            batch, _ = batch.split_by_threshold(relative_threshold)
        batch = batch.sort()
        return list(zip(batch.us.tolist(), batch.vs.tolist(), batch.ws.tolist()))
    estimates = estimate_distortions(setup.embedding, candidates)
    if relative_threshold > 0:
        estimates, _ = filter_by_threshold(estimates, relative_threshold)
    return [estimate.edge for estimate in sort_by_distortion(estimates)]


def _offtree_candidates(graph: Graph, sparsifier: Graph, around: Sequence[int]) -> List[WeightedEdge]:
    """Graph edges incident to ``around`` nodes that the sparsifier does not carry."""
    seen: dict[Edge, float] = {}
    for node in around:
        for neighbor, weight in graph.neighbors(node).items():
            key = canonical_edge(node, int(neighbor))
            if key not in seen and not sparsifier.has_edge(*key):
                seen[key] = float(weight)
    return [(u, v, w) for (u, v), w in seen.items()]


def _reconnect_sparsifier(sparsifier: Graph, graph: Graph, setup: SetupResult,
                          similarity_filter: SimilarityFilter,
                          config: InGrassConfig) -> List[WeightedEdge]:
    """Restore sparsifier connectivity using the most-distorting graph edges.

    Builds the component structure of the (possibly split) sparsifier, ranks
    every surviving graph edge that crosses two components by estimated
    spectral distortion, and greedily admits edges — highest distortion first,
    one per component merge — until a single component remains.

    The component structure comes from one vectorised sweep
    (:func:`repro.graphs.components.connected_components`) and the crossing
    candidates from one mask over the tracked graph's cached edge arrays, so
    the per-batch cost is a few numpy passes over ``E``; only the greedy
    admission loop — bounded by the component count, not the edge count —
    stays in Python, as a union-find over the *components*.
    """
    from repro.graphs.components import connected_components

    labels = connected_components(sparsifier)
    num_components = int(labels.max()) + 1 if labels.size else 0
    if num_components <= 1:
        return []
    us, vs, ws = graph.edge_arrays()
    crossing_mask = labels[us] != labels[vs]
    if not crossing_mask.any():
        raise GraphValidationError(
            "sparsifier disconnected and the tracked graph offers no reconnecting edge "
            "(was the graph itself disconnected by the removals?)"
        )
    crossing = list(zip(us[crossing_mask].tolist(), vs[crossing_mask].tolist(),
                        ws[crossing_mask].tolist()))
    ranked = _rank_candidates(setup, crossing, config)
    uf = UnionFind(num_components)
    added: List[WeightedEdge] = []
    for u, v, w in ranked:
        if uf.union(int(labels[u]), int(labels[v])):
            sparsifier.add_edge(u, v, w, merge="add")
            similarity_filter.notify_edge_added(u, v)
            added.append((u, v, w))
            if uf.num_sets <= 1:
                break
    if uf.num_sets > 1:
        raise GraphValidationError(
            "sparsifier could not be reconnected: the tracked graph is disconnected"
        )
    return added


def run_removal(sparsifier: Graph, setup: SetupResult, removals: Sequence, *,
                graph: Graph, config: Optional[InGrassConfig] = None,
                target_condition_number: Optional[float] = None,
                similarity_filter: Optional[SimilarityFilter] = None,
                maintainer: Optional[HierarchyMaintainer] = None) -> RemovalResult:
    """Apply one batch of edge deletions to ``sparsifier`` (mutated in place).

    Parameters
    ----------
    sparsifier:
        Current sparsifier ``H(k)``; updated in place to ``H(k+1)``.
    setup:
        Artifacts from :func:`repro.core.setup.run_setup`.  Cached cluster
        diameters are inflated in place for removed sparsifier edges.
    removals:
        ``(u, v)`` pairs or ``(u, v, w)`` triples deleted from the original
        graph, where ``w`` is the weight the edge had *in the graph* before
        its removal.  When given, the weight is used to preserve conductance
        that earlier merge decisions parked on the removed sparsifier edge:
        only the physical share disappears, the excess is re-homed onto
        surviving support of the same cluster pair.  Pairs the sparsifier
        does not carry only affect the tracked graph and need no repair.
    graph:
        The tracked original graph ``G(k+1)`` — **after** the removals were
        applied to it.  It is the candidate pool for replacement edges, which
        is why the deletions must already be reflected (a deleted edge must
        never be re-admitted).
    config:
        inGRASS configuration (repair caps, diameter inflation, κ guard).
    target_condition_number:
        Target κ used both for filtering-level selection and as the reference
        of the κ guard.
    similarity_filter:
        Reuse an existing filter (its connectivity map is invalidated /
        updated in place); by default a fresh filter is built.
    maintainer:
        Hierarchy maintainer (``config.hierarchy_mode="maintain"``): instead
        of inflating cluster diameters, the affected clusters are spliced in
        place after the reconnection step — split along their surviving
        interior connectivity with locally recomputed diameters.  Built on
        demand when omitted in maintain mode, ignored in rebuild mode.

    Notes
    -----
    The function mutates ``sparsifier`` (and the filter / hierarchy caches)
    as it goes and does **not** roll back on failure: if the graph itself was
    disconnected by the removals, the raised :class:`GraphValidationError`
    leaves the sparsifier partially repaired.  Pre-flight deletion batches
    with :func:`repro.graphs.validation.removals_keep_connected` (the
    :class:`~repro.core.incremental.InGrassSparsifier` driver does) when the
    input is not already known to be safe.
    """
    config = config if config is not None else InGrassConfig()
    timer = Timer().start()
    requested, graph_weights = prepare_removal_batch(graph, removals)

    level = _select_filtering_level(setup, config, target_condition_number)
    similarity_filter = _ensure_filter(sparsifier, setup, level, config, similarity_filter)
    maintainer = _ensure_maintainer(sparsifier, setup, config, maintainer)

    # Step 1: drop the edges the sparsifier carries, invalidating caches.
    # Weight a removed edge absorbed on behalf of *other* (still existing)
    # graph edges through earlier merge decisions is re-homed onto surviving
    # support of the same cluster pair rather than silently discarded.  In
    # rebuild mode the affected cluster diameters are inflated here; in
    # maintain mode the clusters are spliced structurally after step 2, once
    # the sparsifier is reconnected.
    stage1 = run_removal_drop_stage(
        sparsifier, setup, list(enumerate(requested)), graph_weights,
        similarity_filter=similarity_filter, config=config,
        inflate=maintainer is None,
    )
    result = RemovalResult(
        requested=requested,
        removed_from_sparsifier=[],
        reconnection_edges=[],
        filtering_level=level,
    )
    merge_drop_stages(result, [stage1])
    if not result.removed_from_sparsifier:
        timer.stop()
        result.removal_seconds = timer.elapsed
        return result

    run_removal_repair_stages(sparsifier, setup, result, graph=graph, config=config,
                              similarity_filter=similarity_filter, maintainer=maintainer)
    timer.stop()
    result.removal_seconds = timer.elapsed
    return result


def run_removal_repair_stages(sparsifier: Graph, setup: SetupResult, result: RemovalResult, *,
                              graph: Graph, config: InGrassConfig,
                              similarity_filter, maintainer: Optional[HierarchyMaintainer]) -> None:
    """Global stages of the removal pipeline (steps 2, 2b and 3).

    Everything here is inherently batch-global — union-find reconnection,
    maintain-mode splices judged against the repaired structure, the
    distortion-ranked repair pass with its batch-wide cap — so the sharded
    driver runs it once, post-barrier, against the composite filter, in
    exactly the order the unsharded pipeline uses.  Mutates ``result`` in
    place (reconnection, splice and repair fields).
    """
    removed_from_sparsifier = result.removed_from_sparsifier

    # Step 2: reconnect if any removal split the sparsifier.
    result.reconnection_edges = _reconnect_sparsifier(sparsifier, graph, setup,
                                                      similarity_filter, config)

    # Step 2b (maintain mode): splice the clusters the removals touched, now
    # that the sparsifier is whole again — interior connectivity is judged
    # against the repaired structure, so the coarsest (all-nodes) cluster
    # never splits and the fallback bound stays meaningful.  Reconnection
    # edges may additionally let the maintainer fuse clusters back together.
    if maintainer is not None:
        splice = maintainer.note_removals(removed_from_sparsifier,
                                          similarity_filter=similarity_filter)
        result.spliced_clusters = len(splice.spliced)
        result.split_fragments = splice.splits
        if result.reconnection_edges:
            result.hierarchy_merges += maintainer.note_insertions(
                result.reconnection_edges, similarity_filter=similarity_filter)

    # Step 3: local quality repair around the removed edges — the best
    # off-sparsifier graph edges incident to the endpoints, ranked by the LRD
    # distortion estimate.  Only spectrally *unique* candidates (no existing
    # connection at the filtering level) are admitted: repair candidates are
    # existing graph edges, not new conductance, so folding their weight onto
    # other sparsifier edges would double-count weight the graph does not
    # have and degrade κ from the λ_min side.
    repair_cap = config.max_repair_edges_per_removal * len(removed_from_sparsifier)
    if repair_cap > 0:
        endpoints = sorted({node for u, v, _ in removed_from_sparsifier for node in (u, v)})
        candidates = _offtree_candidates(graph, sparsifier, endpoints)
        if candidates:
            ranked = _rank_candidates(setup, candidates, config,
                                      relative_threshold=config.distortion_threshold)
            for p, q, weight in ranked:
                if len(result.repair_edges) >= repair_cap:
                    break
                if similarity_filter.connects_clusters(p, q):
                    result.repair_skipped += 1
                    continue
                sparsifier.add_edge(p, q, weight, merge="add")
                similarity_filter.notify_edge_added(p, q)
                result.repair_edges.append((p, q, weight))
        if maintainer is not None and result.repair_edges:
            result.hierarchy_merges += maintainer.note_insertions(
                result.repair_edges, similarity_filter=similarity_filter)


def run_kappa_guard(sparsifier: Graph, setup: SetupResult, *, graph: Graph,
                    config: Optional[InGrassConfig] = None,
                    target_condition_number: Optional[float] = None,
                    similarity_filter: Optional[SimilarityFilter] = None,
                    maintainer: Optional[HierarchyMaintainer] = None) -> KappaGuardReport:
    """Escalating quality guard for the deletion path.

    Measures κ(G, H) and, while it exceeds ``kappa_guard_factor * target``,
    admits off-sparsifier graph edges in rounds of ``kappa_guard_batch``
    (pure additions — candidate edges exist in the graph, so no weight is
    ever duplicated).  Candidates are ranked by the dominant generalized
    eigenvector ``x`` of the pencil ``(L_G, L_H)``: by first-order
    perturbation the score ``w · (x_p - x_q)²`` measures exactly how much an
    edge relieves the mode the sparsifier supports worst, which makes the
    guard surgical where the (post-removal, inflated) LRD estimates are only
    upper bounds.  Intended to run after a full update batch so it sees the
    combined effect of deletions and insertions; the
    :class:`~repro.core.incremental.InGrassSparsifier` driver does exactly
    that.  This trades one extreme-eigenpair solve per round for a hard
    quality bound — use it when the workload needs the guarantee, skip it to
    stay strictly ``O(log N)`` per event.

    When a ``maintainer`` is active (``hierarchy_mode="maintain"``), the
    guard is *maintenance-aware*: the splice reports accumulated since the
    last guard pass mark exactly the clusters whose interior just lost
    sparsifier support, so the first round restricts its candidate pool to
    off-sparsifier edges incident to those split neighbourhoods.  Only when
    the local pool is empty — or a later round shows the local additions did
    not relieve κ — does the guard widen to the full off-sparsifier pool.
    """
    import numpy as np

    from repro.spectral.condition import dominant_generalized_eigenvector, relative_condition_number

    config = config if config is not None else InGrassConfig()
    if config.kappa_guard_factor is None:
        raise ValueError("run_kappa_guard requires config.kappa_guard_factor to be set")
    target = target_condition_number if target_condition_number is not None else config.target_condition_number
    if target is None:
        raise ValueError("a target condition number is required for the κ guard")
    timer = Timer().start()
    level = _select_filtering_level(setup, config, target)
    similarity_filter = _ensure_filter(sparsifier, setup, level, config, similarity_filter)
    maintainer = _ensure_maintainer(sparsifier, setup, config, maintainer)

    bound = config.kappa_guard_factor * target
    kappa = relative_condition_number(graph, sparsifier,
                                      dense_limit=config.kappa_guard_dense_limit)
    report = KappaGuardReport(bound=bound, kappa_before=kappa, kappa_after=kappa)
    # Maintenance-aware candidate seeding: the maintainer's splice reports
    # name the nodes whose clusters were just split, so round 0 searches the
    # off-sparsifier edges incident to that neighbourhood before paying for
    # the global pool.  Drained exactly once per guard pass, whether or not
    # the guard ends up admitting anything.
    splice_nodes = (maintainer.drain_splice_neighbourhood()
                    if maintainer is not None else np.zeros(0, dtype=np.int64))
    while report.kappa_after > bound and report.rounds < config.kappa_guard_max_rounds:
        local_pool = None
        if report.rounds == 0 and splice_nodes.size:
            local_pool = _offtree_candidates(graph, sparsifier, splice_nodes.tolist())
        pool = local_pool or [(u, v, w) for u, v, w in graph.weighted_edges()
                              if not sparsifier.has_edge(u, v)]
        if not pool:
            break
        _, mode = dominant_generalized_eigenvector(graph, sparsifier,
                                                   dense_limit=config.kappa_guard_dense_limit)

        def score_pool(candidates):
            ps = np.fromiter((u for u, _, _ in candidates), dtype=np.int64, count=len(candidates))
            qs = np.fromiter((v for _, v, _ in candidates), dtype=np.int64, count=len(candidates))
            ws = np.fromiter((w for _, _, w in candidates), dtype=float, count=len(candidates))
            return ws * (mode[ps] - mode[qs]) ** 2

        scores = score_pool(pool)
        if local_pool and float(scores.max()) <= 1e-12:
            # The split neighbourhood does not touch the violating mode at
            # all (the κ breach originates elsewhere) — fall straight back
            # to the global pool rather than burning round 0 on dead edges.
            pool = [(u, v, w) for u, v, w in graph.weighted_edges()
                    if not sparsifier.has_edge(u, v)]
            if not pool:
                break
            scores = score_pool(pool)
        # Escalate geometrically: a later round means the previous additions
        # did not relieve the bottleneck, so widen the net.
        budget = min(config.kappa_guard_batch * (2 ** report.rounds), len(pool))
        order = np.argsort(scores)[::-1][:budget]
        admitted = 0
        round_edges: List[WeightedEdge] = []
        for index in order:
            u, v, w = pool[int(index)]
            sparsifier.add_edge(u, v, w, merge="add")
            similarity_filter.notify_edge_added(u, v)
            report.added_edges.append((u, v, w))
            round_edges.append((u, v, w))
            admitted += 1
        if maintainer is not None and round_edges:
            maintainer.note_insertions(round_edges, similarity_filter=similarity_filter)
        if admitted == 0:
            break
        report.rounds += 1
        report.kappa_after = relative_condition_number(graph, sparsifier,
                                                       dense_limit=config.kappa_guard_dense_limit)
    timer.stop()
    report.guard_seconds = timer.elapsed
    return report
