"""inGRASS update phase (Algorithm 1, steps 4-5).

Each update call receives a batch of newly streamed edges and, using only the
``O(log N)``-dimensional embeddings produced by the setup phase:

1. estimates the spectral distortion of every new edge (Section III-C-1) and
   sorts the batch so the most spectrally-critical edges are considered first;
2. runs the spectral-similarity filter at the level matching the target
   condition number (Section III-C-2), which adds unique edges, merges
   redundant inter-cluster edges into existing ones, and redistributes the
   weight of intra-cluster edges.

The cost is ``O(log N)`` per streamed edge — no resistance recomputation, no
re-sparsification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.config import InGrassConfig
from repro.core.distortion import (
    DistortionEstimate,
    estimate_distortions,
    filter_by_threshold,
    sort_by_distortion,
)
from repro.core.filtering import FilterAction, FilterDecision, FilterSummary, SimilarityFilter
from repro.core.setup import SetupResult
from repro.graphs.graph import Graph
from repro.graphs.validation import validate_new_edges
from repro.utils.timing import Timer

WeightedEdge = Tuple[int, int, float]


@dataclass
class UpdateResult:
    """Outcome of one incremental update call."""

    decisions: List[FilterDecision]
    summary: FilterSummary
    filtering_level: int
    update_seconds: float
    dropped_low_distortion: int = 0

    @property
    def added_edges(self) -> List[WeightedEdge]:
        """Edges that were actually inserted into the sparsifier."""
        return [d.edge for d in self.decisions if d.action is FilterAction.ADDED]


def run_update(sparsifier: Graph, setup: SetupResult, new_edges: Sequence[WeightedEdge],
               config: Optional[InGrassConfig] = None, *,
               target_condition_number: Optional[float] = None,
               similarity_filter: Optional[SimilarityFilter] = None) -> UpdateResult:
    """Apply one batch of streamed edges to ``sparsifier`` (mutated in place).

    Parameters
    ----------
    sparsifier:
        Current sparsifier ``H(k)``; updated in place to ``H(k+1)``.
    setup:
        Artifacts from :func:`repro.core.setup.run_setup`.
    new_edges:
        Batch of ``(u, v, weight)`` edges newly added to the original graph.
    config:
        inGRASS configuration (filtering level override, distortion threshold,
        weight-redistribution toggle, fill cap).
    target_condition_number:
        Target κ used to select the filtering level; overrides
        ``config.target_condition_number`` when given.  Required through one
        of the two routes unless ``config.filtering_level`` is set.
    similarity_filter:
        Reuse an existing filter (keeps its cluster-connectivity state across
        batches); by default a fresh filter is built from the sparsifier.
    """
    config = config if config is not None else InGrassConfig()
    timer = Timer().start()
    cleaned = validate_new_edges(sparsifier, new_edges)

    if config.filtering_level is not None:
        level = config.filtering_level
    else:
        target = target_condition_number if target_condition_number is not None else config.target_condition_number
        if target is None:
            raise ValueError(
                "a target condition number (or an explicit filtering_level) is required "
                "to choose the similarity filtering level"
            )
        level = setup.filtering_level_for(target, config.filtering_size_divisor)

    if similarity_filter is None or similarity_filter.filtering_level != level:
        similarity_filter = SimilarityFilter(
            sparsifier, setup.hierarchy, level,
            redistribute_intra_cluster_weight=config.redistribute_intra_cluster_weight,
        )

    estimates = estimate_distortions(setup.embedding, cleaned)
    estimates, dropped = filter_by_threshold(estimates, config.distortion_threshold)
    estimates = sort_by_distortion(estimates)
    max_additions = None
    if config.max_fill_fraction < 1.0:
        max_additions = max(1, int(round(config.max_fill_fraction * len(cleaned))))
    decisions, summary = similarity_filter.apply(estimates, max_additions=max_additions)
    summary.dropped += len(dropped)
    for item in dropped:
        decisions.append(
            FilterDecision(edge=item.edge, action=FilterAction.DROPPED_LOW_DISTORTION,
                           distortion=item.distortion)
        )
    timer.stop()
    return UpdateResult(
        decisions=decisions,
        summary=summary,
        filtering_level=level,
        update_seconds=timer.elapsed,
        dropped_low_distortion=len(dropped),
    )
