"""inGRASS core: LRD decomposition, resistance embedding, incremental updates."""

from repro.core.config import InGrassConfig, LRDConfig
from repro.core.distortion import (
    DistortionBatch,
    DistortionEstimate,
    estimate_distortions,
    filter_by_threshold,
    score_edges,
    sort_by_distortion,
)
from repro.core.embedding import EmbeddingStats, ResistanceEmbedding
from repro.core.filtering import (
    FilterAction,
    FilterDecision,
    FilterDecisionBatch,
    FilterSummary,
    SimilarityFilter,
)
from repro.core.hierarchy import ClusterHierarchy, LRDLevel
from repro.core.incremental import (
    InGrassSparsifier,
    IterationRecord,
    MixedUpdateResult,
    ReweightResult,
)
from repro.core.lrd import cluster_diameter_bound, decompose_node_subset, lrd_decompose
from repro.core.maintenance import HierarchyMaintainer, MaintenanceStats, SpliceReport
from repro.core.setup import SetupResult, run_local_setup, run_setup
from repro.core.sharding import (
    CompositeSimilarityFilter,
    ReplanPolicy,
    ShardBatchReport,
    ShardContext,
    ShardedRemovalResult,
    ShardedSparsifier,
    ShardedUpdateResult,
    ShardPlan,
    ShardScopedFilter,
)
from repro.core.update import (
    KappaGuardReport,
    RemovalResult,
    UpdateResult,
    run_kappa_guard,
    run_removal,
    run_update,
)

__all__ = [
    "InGrassConfig",
    "LRDConfig",
    "InGrassSparsifier",
    "IterationRecord",
    "MixedUpdateResult",
    "lrd_decompose",
    "ClusterHierarchy",
    "LRDLevel",
    "ResistanceEmbedding",
    "EmbeddingStats",
    "DistortionBatch",
    "DistortionEstimate",
    "estimate_distortions",
    "score_edges",
    "sort_by_distortion",
    "filter_by_threshold",
    "SimilarityFilter",
    "FilterAction",
    "FilterDecision",
    "FilterDecisionBatch",
    "FilterSummary",
    "HierarchyMaintainer",
    "MaintenanceStats",
    "SpliceReport",
    "ReweightResult",
    "cluster_diameter_bound",
    "decompose_node_subset",
    "SetupResult",
    "run_setup",
    "run_local_setup",
    "ShardPlan",
    "ShardContext",
    "ShardScopedFilter",
    "CompositeSimilarityFilter",
    "ShardedSparsifier",
    "ShardedUpdateResult",
    "ShardedRemovalResult",
    "ShardBatchReport",
    "ReplanPolicy",
    "UpdateResult",
    "run_update",
    "RemovalResult",
    "run_removal",
    "KappaGuardReport",
    "run_kappa_guard",
]
