"""Configuration dataclasses for the inGRASS core algorithm."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive, check_positive_int


@dataclass
class LRDConfig:
    """Parameters of the multilevel low-resistance-diameter decomposition.

    Attributes
    ----------
    initial_diameter:
        Resistance-diameter threshold of the first level.  ``None`` picks the
        median edge resistance of the initial sparsifier, which contracts
        roughly half of the edges at level 0 — the behaviour the paper's
        Figure 2 sketches.
    growth_factor:
        Multiplicative growth of the diameter threshold per level; the paper
        doubles it (clusters roughly double in radius each level), giving the
        ``O(log N)`` level count.
    max_levels:
        Hard cap on the number of levels (and therefore on the embedding
        dimension).
    min_clusters:
        Decomposition stops once the coarsest level has at most this many
        clusters.
    resistance_method:
        How edge effective resistances of the (contracted) sparsifier are
        estimated at every level: ``"jl"`` (accurate, solver-based),
        ``"krylov"`` (solver-free surrogate, the paper's equation (3)) or
        ``"exact"`` (tests only).
    resistance_order:
        Embedding dimension / Krylov order for the approximate methods.
    seed:
        Seed for the stochastic pieces (random probes, tie-breaking).
    """

    initial_diameter: Optional[float] = None
    growth_factor: float = 2.0
    max_levels: int = 40
    min_clusters: int = 1
    resistance_method: str = "jl"
    resistance_order: Optional[int] = None
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if self.initial_diameter is not None:
            check_positive(self.initial_diameter, "initial_diameter")
        check_positive(self.growth_factor, "growth_factor")
        if self.growth_factor <= 1.0:
            raise ValueError(f"growth_factor must exceed 1, got {self.growth_factor}")
        check_positive_int(self.max_levels, "max_levels")
        check_positive_int(self.min_clusters, "min_clusters")
        if self.resistance_method not in ("jl", "krylov", "exact"):
            raise ValueError(f"unknown resistance_method {self.resistance_method!r}")


@dataclass
class InGrassConfig:
    """Parameters of the full inGRASS incremental sparsifier.

    Attributes
    ----------
    target_condition_number:
        Target κ(L_G, L_H) used to pick the similarity filtering level
        (Section III-C-2: the level whose largest cluster holds at most
        ``target_condition_number / 2`` nodes).  ``None`` defers the choice to
        :meth:`InGrassSparsifier.setup` callers, which typically pass the
        measured condition number of the initial sparsifier.
    lrd:
        LRD decomposition parameters for the setup phase.
    filtering_level:
        Explicit filtering level override (mainly for tests and the ablation
        benches); ``None`` derives it from ``target_condition_number``.
    filtering_size_divisor:
        The filtering level is the coarsest level whose largest cluster holds
        at most ``target_condition_number / filtering_size_divisor`` nodes.
        The paper uses 2; larger values pick a finer level, which admits more
        edges but tracks the target condition number more tightly (see the
        filtering-level ablation bench).
    distortion_threshold:
        New edges whose estimated spectral distortion falls below this value
        are dropped outright (they cannot meaningfully improve κ).  Expressed
        relative to the median estimated distortion of the batch; ``0``
        disables the cut.
    redistribute_intra_cluster_weight:
        Whether the weight of a discarded intra-cluster edge is spread over
        the sparsifier edges inside that cluster (Section III-C-2).  Disabling
        it simply drops the edge; exposed for the ablation bench.
    max_fill_fraction:
        Upper bound on how many of the streamed edges may be added per update
        call, as a fraction of the batch (safety valve; 1.0 = unlimited).
    max_repair_edges_per_removal:
        Deletion path: cap on how many replacement edges the local repair
        step may admit per sparsifier edge removed (connectivity repair is
        exempt — the sparsifier is always reconnected).
    removal_diameter_inflation:
        Deletion path: multiplicative inflation applied to the cached cluster
        diameters containing both endpoints of a removed sparsifier edge
        (resistances can only grow under removals, so the cached upper bounds
        must be stretched to stay conservative).
    kappa_guard_factor:
        Deletion path: when set, after a removal batch the driver measures
        κ(G, H) and keeps admitting the most-distorting off-sparsifier edges
        until κ <= ``kappa_guard_factor * target`` (or the round budget runs
        out).  ``None`` disables the guard (pure O(log N) updates).
    kappa_guard_max_rounds:
        Maximum guard iterations per removal batch.
    kappa_guard_batch:
        Edges admitted per guard round.
    kappa_guard_dense_limit:
        Node-count threshold below which the guard uses the dense eigensolver.
    resetup_after_removals:
        When set, the incremental driver re-runs the setup phase (fresh LRD
        hierarchy + embedding) once this many sparsifier edges have been
        removed since the last setup — the coarse-grained refresh that keeps
        long deletion streams accurate.  ``None`` never refreshes.  Only
        honoured in ``hierarchy_mode="rebuild"``: the maintenance mode keeps
        the hierarchy accurate structurally and never pays a full re-setup.
    hierarchy_mode:
        How the LRD hierarchy tracks sparsifier mutations.  ``"maintain"``
        (default) splices clusters in place through
        :class:`repro.core.maintenance.HierarchyMaintainer` — splitting
        clusters whose interior lost connectivity, recomputing diameters
        locally and fusing clusters joined by admitted edges — so long churn
        streams never pay a full ``O(m log n)`` re-setup and the resistance
        bounds stay tight between batches.  ``"rebuild"`` (the PR 1
        behaviour, default through PR 8) inflates cluster diameters per
        removal and relies on ``resetup_after_removals`` to periodically
        rebuild the whole hierarchy; pin it for streams whose per-batch
        removal volume is so large that structural splices cost more than a
        periodic re-setup.
    maintenance_exact_limit:
        Maintenance mode: cluster size up to which splices run a localized
        re-decomposition with exact fragment diameters; larger clusters use
        the connectivity split plus the spanning-tree diameter bound.
    decision_records:
        Representation of per-edge filter decisions on the vectorised batch
        path: ``"objects"`` (default) builds one :class:`FilterDecision` per
        edge, ``"arrays"`` returns a single SoA
        :class:`~repro.core.filtering.FilterDecisionBatch`, which removes the
        dominant allocator/GC cost at 10⁵-edge batches.  The scalar reference
        path always uses objects.
    batch_mode:
        How streamed batches are scored and filtered: ``"vectorized"`` uses
        the numpy batch engine (one-shot distortion kernels, group-resolved
        similarity filtering), ``"scalar"`` keeps the per-edge reference path
        (the oracle the equivalence suite compares against), and ``"auto"``
        (default) picks vectorized once a batch reaches
        ``batch_mode_threshold`` edges.  Both modes produce identical filter
        decisions and sparsifier edge sets.
    batch_mode_threshold:
        Batch size at which ``batch_mode="auto"`` switches to the vectorized
        engine (below it, numpy dispatch overhead exceeds the win).
    num_shards:
        Number of node-set shards of the update engine.  ``1`` (default) is
        the classic single-context driver; above 1,
        :meth:`repro.core.incremental.InGrassSparsifier.from_config` builds a
        :class:`repro.core.sharding.ShardedSparsifier` whose
        :class:`~repro.core.sharding.ShardPlan` partitions nodes along a
        coarse LRD level (clusters never straddle shards) and runs per-shard
        similarity filters; cross-shard edges drain through a global escrow
        stage.  Any shard count produces the same sparsifier as ``1``.
    executor:
        How per-shard sub-batches execute: ``"serial"`` one after another in
        the calling thread, ``"threads"`` concurrently on a thread pool (the
        numpy scoring/grouping kernels release the GIL, so shards overlap on
        multi-core hosts), ``"processes"`` on persistent worker processes
        (one per shard; pickle-framed pipe protocol, bit-exact with every
        other executor), or ``"auto"`` (default), which picks threads when
        more than one shard is populated, the host has more than one CPU and
        the batch reaches ``shard_batch_threshold`` events — ``"auto"``
        never selects processes (worker processes are an explicit opt-in).
    shard_mode:
        Deprecated alias of ``executor`` (pre-PR 7 name).  Setting it emits
        a :class:`DeprecationWarning` and copies the value into
        ``executor``; both fields always hold the same normalised value so
        legacy readers keep working.
    shard_batch_threshold:
        Batch size at which ``executor="auto"`` starts using threads
        (below it, pool dispatch overhead exceeds the win).
    replan_escrow_fraction:
        Adaptive replanning: once the fraction of streamed events routed to
        the cross-shard escrow (accumulated since the current
        :class:`~repro.core.sharding.ShardPlan` was derived) exceeds this
        threshold, the plan is re-derived from the current tracked graph —
        the stream's locality has drifted away from the partition and the
        Fiedler sweep can find a better one.  Defaults to ``0.5`` (armed);
        ``None`` disables the trigger, leaving the plan to re-derive only on
        invariant violations (cross-shard cluster fusions).  Replans never
        change results (the oracle guarantee is plan-independent), only
        routing efficiency.
    replan_imbalance:
        Adaptive replanning: once the realised per-shard event imbalance —
        the busiest shard's intra-shard event share divided by the ideal
        ``1 / num_shards`` share, accumulated since the current plan —
        exceeds this factor, the plan is re-derived.  Defaults to ``2.0``
        (armed); ``None`` disables the trigger.  Values must be ≥ 1 (1
        would replan on any deviation from perfect balance).
    replan_min_events:
        Adaptive replanning: events that must accumulate under the current
        plan before either trigger arms, so a handful of unlucky batches
        right after a (re)plan cannot thrash the partition.  The threshold
        doubles after every adaptive replan (exponential back-off), which
        bounds any stream's total adaptive replans at
        ``log2(stream length / replan_min_events)`` even when the workload's
        intrinsic cross-shard floor sits above the trigger.
    seed:
        Seed for stochastic components.
    """

    target_condition_number: Optional[float] = None
    lrd: LRDConfig = field(default_factory=LRDConfig)
    filtering_level: Optional[int] = None
    filtering_size_divisor: float = 2.0
    distortion_threshold: float = 0.0
    redistribute_intra_cluster_weight: bool = True
    max_fill_fraction: float = 1.0
    max_repair_edges_per_removal: int = 2
    removal_diameter_inflation: float = 1.25
    kappa_guard_factor: Optional[float] = None
    kappa_guard_max_rounds: int = 6
    kappa_guard_batch: int = 8
    kappa_guard_dense_limit: int = 1500
    resetup_after_removals: Optional[int] = None
    hierarchy_mode: str = "maintain"
    maintenance_exact_limit: int = 64
    decision_records: str = "objects"
    batch_mode: str = "auto"
    batch_mode_threshold: int = 32
    num_shards: int = 1
    executor: Optional[str] = None
    shard_mode: Optional[str] = None
    shard_batch_threshold: int = 4096
    replan_escrow_fraction: Optional[float] = 0.5
    replan_imbalance: Optional[float] = 2.0
    replan_min_events: int = 256
    seed: SeedLike = 0

    def use_vectorized(self, batch_size: int) -> bool:
        """Resolve the batch-engine choice for a batch of ``batch_size`` edges."""
        if self.batch_mode == "vectorized":
            return True
        if self.batch_mode == "scalar":
            return False
        return batch_size >= self.batch_mode_threshold

    def use_shard_threads(self, batch_size: int, populated_shards: int,
                          cpu_count: Optional[int]) -> bool:
        """Resolve the thread-executor choice for one batch.

        Threads only ever pay off with at least two populated shards; in
        ``"auto"`` mode they additionally require a multi-core host and a
        batch large enough to amortise the pool dispatch.  ``"processes"``
        dispatches elsewhere (:meth:`use_shard_processes`), never here.
        """
        if populated_shards <= 1 or self.executor in ("serial", "processes"):
            return False
        if self.executor == "threads":
            return True
        return bool(cpu_count and cpu_count > 1 and batch_size >= self.shard_batch_threshold)

    def use_shard_processes(self, populated_shards: int) -> bool:
        """Resolve the process-executor choice for one batch.

        Worker processes are an explicit opt-in (``executor="processes"``)
        and need at least two populated shards to pay off; unlike the thread
        heuristic there is no batch-size floor — once opted in, every batch
        runs on the workers so their mirrored state stays in lockstep.
        """
        return self.executor == "processes" and populated_shards > 1

    def __post_init__(self) -> None:
        if self.target_condition_number is not None:
            check_positive(self.target_condition_number, "target_condition_number")
        if self.filtering_level is not None and self.filtering_level < 0:
            raise ValueError("filtering_level must be non-negative")
        check_positive(self.filtering_size_divisor, "filtering_size_divisor")
        if self.distortion_threshold < 0:
            raise ValueError("distortion_threshold must be non-negative")
        if not 0.0 < self.max_fill_fraction <= 1.0:
            raise ValueError("max_fill_fraction must lie in (0, 1]")
        if self.max_repair_edges_per_removal < 0:
            raise ValueError("max_repair_edges_per_removal must be non-negative")
        if self.removal_diameter_inflation < 1.0:
            raise ValueError("removal_diameter_inflation must be >= 1")
        if self.kappa_guard_factor is not None:
            check_positive(self.kappa_guard_factor, "kappa_guard_factor")
            if self.kappa_guard_factor < 1.0:
                raise ValueError("kappa_guard_factor must be >= 1")
        check_positive_int(self.kappa_guard_max_rounds, "kappa_guard_max_rounds")
        check_positive_int(self.kappa_guard_batch, "kappa_guard_batch")
        check_positive_int(self.kappa_guard_dense_limit, "kappa_guard_dense_limit")
        if self.resetup_after_removals is not None:
            check_positive_int(self.resetup_after_removals, "resetup_after_removals")
        if self.hierarchy_mode not in ("rebuild", "maintain"):
            raise ValueError(f"unknown hierarchy_mode {self.hierarchy_mode!r}; "
                             "expected 'rebuild' or 'maintain'")
        check_positive_int(self.maintenance_exact_limit, "maintenance_exact_limit")
        if self.maintenance_exact_limit < 2:
            raise ValueError("maintenance_exact_limit must be at least 2")
        if self.decision_records not in ("objects", "arrays"):
            raise ValueError(f"unknown decision_records {self.decision_records!r}; "
                             "expected 'objects' or 'arrays'")
        if self.batch_mode not in ("auto", "vectorized", "scalar"):
            raise ValueError(f"unknown batch_mode {self.batch_mode!r}; "
                             "expected 'auto', 'vectorized' or 'scalar'")
        if self.batch_mode_threshold < 0:
            raise ValueError("batch_mode_threshold must be non-negative")
        check_positive_int(self.num_shards, "num_shards")
        if self.executor is None and self.shard_mode is not None:
            # Warn only on the original construction: dataclasses.replace()
            # re-runs __post_init__ on copies where both fields are already
            # normalised, and those must stay silent.
            warnings.warn(
                "InGrassConfig.shard_mode is deprecated; use "
                "InGrassConfig.executor instead",
                DeprecationWarning, stacklevel=3)
            self.executor = self.shard_mode
        if self.executor is None:
            self.executor = "auto"
        if self.executor not in ("auto", "serial", "threads", "processes"):
            raise ValueError(f"unknown executor {self.executor!r}; "
                             "expected 'auto', 'serial', 'threads' or 'processes'")
        # Keep the deprecated alias mirrored so legacy readers see the
        # normalised value.
        self.shard_mode = self.executor
        if self.shard_batch_threshold < 0:
            raise ValueError("shard_batch_threshold must be non-negative")
        if self.replan_escrow_fraction is not None:
            if not 0.0 < self.replan_escrow_fraction <= 1.0:
                raise ValueError("replan_escrow_fraction must lie in (0, 1]")
        if self.replan_imbalance is not None and self.replan_imbalance < 1.0:
            raise ValueError("replan_imbalance must be >= 1")
        check_positive_int(self.replan_min_events, "replan_min_events")
