"""Process-parallel shard execution: persistent workers over a pipe protocol.

The sharded driver's ``threads`` executor overlaps the numpy kernels of the
per-shard pipelines, but everything Python-level still serialises on the GIL.
This module supplies the ``processes`` backend: one persistent worker process
per shard, fed over a ``multiprocessing.Pipe`` whose ``send``/``recv`` framing
is plain pickle — stdlib only, no shared-memory segments to manage, and every
payload the protocol ships (numpy arrays, the engine's result dataclasses,
:class:`~repro.core.config.InGrassConfig`) pickles losslessly.

Protocol
--------
Messages are ``(kind, payload)`` tuples; every request gets exactly one reply
(``("ok", result)`` or ``("error", (repr, traceback))``), so requests to one
worker pipeline FIFO and the dispatcher can send a state refresh and a task
back to back without a round trip between them.

* ``"state"`` — (re)build the worker's **mirror**: a private sparsifier
  holding exactly the shard-owned edge slice, a hierarchy rebuilt from the
  shipped level arrays (:meth:`ClusterHierarchy.from_level_arrays` — live
  hierarchies are deliberately never pickled, see that method), and a
  :class:`~repro.core.sharding.ShardScopedFilter` rescanned from the mirror.
  Rebuilt filters are decision-identical to the parent's live view because
  every bucket consumer is content-canonical.
* ``"update"`` — run :func:`~repro.core.update.run_update` on the mirror and
  return the :class:`UpdateResult` plus the mirror's **edge diff** (edges
  appended past the pre-call count, and pre-existing rows whose weight
  changed — updates never remove or reorder sparsifier edges, so index
  alignment against the pre-call weight array is exact).  The parent replays
  the diff into the shared sparsifier, which is bit-identical to having run
  the kernel in place: the mirror held exactly the state the kernel could
  read, and the kernels are deterministic.
* ``"drop"`` — run :func:`~repro.core.update.run_removal_drop_stage`
  (``inflate=False``) and return the :class:`RemovalStage1Result` plus the
  weight-dict diff (removals break index alignment, so this diff compares
  edge dicts instead).
* ``"shutdown"`` — exit the worker loop (EOF on the pipe does the same).

Failure model
-------------
Transport-level failures — a worker that cannot start, died, or closed its
pipe — raise :class:`ExecutorUnavailableError`; the sharded driver catches
exactly that, logs a warning and re-runs the batch serially (worker tasks
never mutate parent state, so a failed dispatch is fully retryable).  An
exception raised *inside* a kernel on the worker comes back as
:class:`WorkerTaskError` carrying the remote traceback and is not swallowed
by the fallback: it would fail identically in-process and should surface.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.utils.logging import get_logger

logger = get_logger("core.executors")


class ExecutorUnavailableError(RuntimeError):
    """The processes backend could not start, or lost a worker mid-dispatch."""


class WorkerTaskError(RuntimeError):
    """A shard worker raised inside a kernel; the remote traceback is attached."""

    def __init__(self, shard: int, exc_repr: str, remote_traceback: str) -> None:
        super().__init__(
            f"shard worker {shard} raised {exc_repr}\n"
            f"--- remote traceback ---\n{remote_traceback}"
        )
        self.shard = shard
        self.remote_traceback = remote_traceback


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
def _build_mirror(state: Dict[str, Any]) -> Dict[str, Any]:
    """Materialise one shard's private update stack from a state payload.

    Imports are deferred: this module is imported by ``core.sharding`` (the
    parent side), while the worker needs ``ShardScopedFilter`` *from*
    ``core.sharding`` — lazy importing here breaks the cycle and keeps spawn
    -started workers from paying the full package import before they know
    which symbols they need.
    """
    from repro.core.embedding import ResistanceEmbedding
    from repro.core.hierarchy import ClusterHierarchy
    from repro.core.setup import SetupResult
    from repro.core.sharding import ShardScopedFilter
    from repro.graphs.graph import Graph

    mirror = Graph(int(state["num_nodes"]))
    for u, v, w in zip(state["edge_us"].tolist(), state["edge_vs"].tolist(),
                       state["edge_ws"].tolist()):
        mirror.add_edge_unchecked(int(u), int(v), float(w))
    hierarchy = ClusterHierarchy.from_level_arrays(
        state["embedding"], state["cluster_diameters"], state["diameter_thresholds"],
    )
    setup = SetupResult(
        hierarchy=hierarchy,
        embedding=ResistanceEmbedding(hierarchy),
        setup_seconds=0.0,
        num_levels=hierarchy.num_levels,
    )
    scoped = ShardScopedFilter(
        mirror, hierarchy, int(state["filtering_level"]),
        plan=state["plan"], shard_id=int(state["shard_id"]),
        redistribute_intra_cluster_weight=bool(state["redistribute"]),
    )
    return {"sparsifier": mirror, "setup": setup, "filter": scoped}


def _run_update_task(mirror: Dict[str, Any], task: Dict[str, Any]) -> Dict[str, Any]:
    """One shard's insertion sub-batch against the mirror, diffed for replay."""
    from repro.core.update import run_update

    sparsifier = mirror["sparsifier"]
    n0 = sparsifier.num_edges
    ws0 = sparsifier.edge_arrays()[2].copy() if n0 else np.zeros(0)
    result = run_update(
        sparsifier, mirror["setup"], task["triples"], task["config"],
        target_condition_number=task["target"],
        similarity_filter=mirror["filter"], maintainer=None,
        distortion_median=task["median"], scored_batch=task["scored"],
    )
    us1, vs1, ws1 = sparsifier.edge_arrays()
    # Insertions only append and reweigh: the first n0 rows still describe the
    # pre-call edges in order, so the changed-weight diff is a plain index
    # compare and the appended tail is the added set, in decision order.
    changed = np.flatnonzero(ws1[:n0] != ws0)
    return {
        "result": result,
        "added": (us1[n0:].copy(), vs1[n0:].copy(), ws1[n0:].copy()),
        "changed": (us1[changed].copy(), vs1[changed].copy(), ws1[changed].copy()),
    }


def _run_drop_task(mirror: Dict[str, Any], task: Dict[str, Any]) -> Dict[str, Any]:
    """One shard's removal drop stage against the mirror, diffed for replay."""
    from repro.core.update import run_removal_drop_stage

    sparsifier = mirror["sparsifier"]
    before = dict(sparsifier._edges)
    stage = run_removal_drop_stage(
        sparsifier, mirror["setup"], task["items"], task["graph_weights"],
        similarity_filter=mirror["filter"], config=task["config"], inflate=False,
    )
    # Removals break index alignment, so the diff compares edge dicts: weight
    # re-homing changes surviving rows in place, removals come back inside the
    # stage result itself (with positions), and nothing is ever added here.
    after = sparsifier._edges
    changed = [(u, v, w) for (u, v), w in after.items()
               if (u, v) in before and before[(u, v)] != w]
    added = [(u, v, w) for (u, v), w in after.items() if (u, v) not in before]
    return {"result": stage, "changed": changed, "added": added}


def _shard_worker_main(conn) -> None:
    """Request loop of one persistent shard worker (runs in the child)."""
    mirror: Dict[str, Any] = {}
    while True:
        try:
            kind, payload = conn.recv()
        except (EOFError, OSError):
            break
        if kind == "shutdown":
            break
        try:
            if kind == "state":
                mirror = _build_mirror(payload)
                reply: Tuple[str, Any] = ("ok", None)
            elif kind == "update":
                if not mirror:
                    raise RuntimeError("worker received a task before its shard state")
                reply = ("ok", _run_update_task(mirror, payload))
            elif kind == "drop":
                if not mirror:
                    raise RuntimeError("worker received a task before its shard state")
                reply = ("ok", _run_drop_task(mirror, payload))
            else:
                raise RuntimeError(f"unknown shard-worker message kind {kind!r}")
        except BaseException as exc:  # noqa: BLE001 - ship *any* failure back
            reply = ("error", (repr(exc), traceback.format_exc()))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:  # pragma: no cover - teardown race
        pass


# --------------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------------- #
class ProcessShardExecutor:
    """Persistent per-shard worker processes behind the pipe protocol.

    Workers start lazily (one per shard id on first use) and stay alive
    across batches, so a warm shard pays per batch only the task payload and
    the result diff — not a state rebuild.  :meth:`run_tasks` pipelines an
    arbitrary request list (state refreshes and kernel tasks interleaved),
    sending everything before collecting any reply: requests to one worker
    answer FIFO, requests to different workers run concurrently.
    """

    def __init__(self) -> None:
        try:
            self._context = multiprocessing.get_context()
        except Exception as exc:  # pragma: no cover - exotic platforms
            raise ExecutorUnavailableError(f"multiprocessing unavailable: {exc}") from exc
        self._workers: Dict[int, Tuple[Any, Any]] = {}

    @property
    def num_workers(self) -> int:
        """Workers currently alive."""
        return sum(1 for process, _ in self._workers.values() if process.is_alive())

    def ensure_worker(self, shard: int) -> None:
        """Start (or restart) the worker owning ``shard``."""
        worker = self._workers.get(shard)
        if worker is not None:
            if worker[0].is_alive():
                return
            self._drop_worker(shard)
        try:
            parent_conn, child_conn = self._context.Pipe()
            process = self._context.Process(
                target=_shard_worker_main, args=(child_conn,),
                name=f"ingrass-shard-worker-{shard}", daemon=True,
            )
            process.start()
            child_conn.close()
        except ExecutorUnavailableError:
            raise
        except BaseException as exc:
            raise ExecutorUnavailableError(
                f"could not start shard worker {shard}: {exc!r}"
            ) from exc
        self._workers[shard] = (process, parent_conn)

    def _drop_worker(self, shard: int) -> None:
        process, conn = self._workers.pop(shard)
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if process.is_alive():  # pragma: no cover - only on abnormal paths
            process.terminate()
        process.join(timeout=1.0)

    def _send(self, shard: int, message: Tuple[str, Any]) -> None:
        worker = self._workers.get(shard)
        if worker is None or not worker[0].is_alive():
            raise ExecutorUnavailableError(f"shard worker {shard} is not running")
        try:
            worker[1].send(message)
        except (BrokenPipeError, OSError, EOFError) as exc:
            raise ExecutorUnavailableError(
                f"shard worker {shard} dropped its pipe mid-send: {exc!r}"
            ) from exc

    def _recv(self, shard: int) -> Any:
        worker = self._workers.get(shard)
        if worker is None:
            raise ExecutorUnavailableError(f"shard worker {shard} is not running")
        try:
            status, payload = worker[1].recv()
        except (EOFError, OSError) as exc:
            raise ExecutorUnavailableError(
                f"shard worker {shard} died before replying: {exc!r}"
            ) from exc
        if status == "error":
            exc_repr, remote_traceback = payload
            raise WorkerTaskError(shard, exc_repr, remote_traceback)
        return payload

    def run_tasks(self, requests: Sequence[Tuple[int, str, Any]]) -> List[Any]:
        """Dispatch ``(shard, kind, payload)`` requests; replies in request order.

        All requests are sent before any reply is awaited, so per-shard
        state refreshes piggyback on the same round trip as the task that
        needs them and distinct workers execute concurrently.
        """
        for shard, kind, payload in requests:
            self.ensure_worker(shard)
            self._send(shard, (kind, payload))
        return [self._recv(shard) for shard, _kind, _payload in requests]

    def close(self) -> None:
        """Shut every worker down (best effort, idempotent)."""
        for shard in list(self._workers):
            process, conn = self._workers[shard]
            if process.is_alive():
                try:
                    conn.send(("shutdown", None))
                except (BrokenPipeError, OSError):
                    pass
            self._drop_worker(shard)

    def __del__(self) -> None:  # pragma: no cover - interpreter-driven
        try:
            self.close()
        except Exception:
            pass
