"""inGRASS setup phase (Algorithm 1, steps 1-3).

The setup phase is a one-time investment on the initial sparsifier ``H(0)``:

1. estimate the effective resistances of the sparsifier's edges with a
   scalable embedding (Krylov surrogate or Johnson–Lindenstrauss solves);
2. run the multilevel LRD decomposition, assigning every node an
   ``O(log N)``-dimensional vector of cluster indices;
3. materialise the multilevel sparse data structure (the cluster hierarchy
   plus the cluster-pair connectivity used by the similarity filter).

Its cost is ``O(N log N)`` and is amortised over arbitrarily many update
iterations, which is the core economics the paper's Table I/Figure 4 measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import InGrassConfig
from repro.core.embedding import ResistanceEmbedding
from repro.core.hierarchy import ClusterHierarchy
from repro.core.lrd import decompose_node_subset, lrd_decompose
from repro.graphs.components import is_connected
from repro.graphs.graph import Graph
from repro.utils.timing import Timer


@dataclass
class SetupResult:
    """Artifacts of the setup phase consumed by every subsequent update."""

    hierarchy: ClusterHierarchy
    embedding: ResistanceEmbedding
    setup_seconds: float
    num_levels: int

    def filtering_level_for(self, target_condition_number: float, size_divisor: float = 2.0) -> int:
        """Delegate filtering-level selection to the hierarchy."""
        return self.hierarchy.filtering_level_for_condition(target_condition_number, size_divisor)

    def make_maintainer(self, sparsifier: Graph, config: Optional[InGrassConfig] = None):
        """Build a :class:`~repro.core.maintenance.HierarchyMaintainer` for this setup.

        The maintainer mutates this result's hierarchy in place; build a new
        one whenever the setup is refreshed.
        """
        from repro.core.maintenance import HierarchyMaintainer

        config = config if config is not None else InGrassConfig()
        return HierarchyMaintainer.from_config(self.hierarchy, sparsifier, config)


def run_local_setup(sparsifier: Graph, nodes: np.ndarray, threshold: float,
                    config: Optional[InGrassConfig] = None, *,
                    hierarchy: Optional[ClusterHierarchy] = None,
                    level_index: int = 0,
                    ) -> Tuple[List[np.ndarray], List[float]]:
    """Localized re-decomposition of one node subset of the sparsifier.

    The setup-phase counterpart of :func:`run_setup` for a *subset*: re-runs
    the bounded-diameter contraction on the induced subgraph only, returning
    ``(fragments, diameter_bounds)`` — what the maintenance layer applies to
    the hierarchy through its in-place mutation API instead of rebuilding all
    levels.  The cost is proportional to the subset's induced neighbourhood,
    not to the sparsifier.

    When re-decomposing a cluster of an existing ``hierarchy`` at a level
    above the finest, pass both — the level-``level_index - 1`` clusters are
    then treated as atomic units, which is what preserves the hierarchy's
    nesting invariant (fragments must never separate a finer-level cluster).
    """
    config = config if config is not None else InGrassConfig()
    atoms = None
    atom_diameters = None
    if hierarchy is not None and level_index > 0:
        finer = hierarchy.level(level_index - 1)
        atoms = finer.labels[np.asarray(nodes, dtype=np.int64)]
        atom_diameters = finer.cluster_diameters[np.unique(atoms)]
    return decompose_node_subset(sparsifier, nodes, threshold, config.lrd,
                                 atoms=atoms, atom_diameters=atom_diameters,
                                 exact_limit=config.maintenance_exact_limit)


def run_setup(sparsifier: Graph, config: Optional[InGrassConfig] = None) -> SetupResult:
    """Execute the inGRASS setup phase on the initial sparsifier ``H(0)``.

    Parameters
    ----------
    sparsifier:
        The initial sparsifier.  It must be connected: a disconnected
        sparsifier has unbounded condition number and the resistance
        embedding would be meaningless.
    config:
        Full inGRASS configuration; only its ``lrd`` sub-config is used here.
    """
    config = config if config is not None else InGrassConfig()
    if sparsifier.num_nodes == 0:
        raise ValueError("cannot set up inGRASS on an empty sparsifier")
    if sparsifier.num_nodes > 1 and not is_connected(sparsifier):
        raise ValueError("the initial sparsifier must be connected")
    timer = Timer().start()
    hierarchy = lrd_decompose(sparsifier, config.lrd)
    embedding = ResistanceEmbedding(hierarchy)
    timer.stop()
    return SetupResult(
        hierarchy=hierarchy,
        embedding=embedding,
        setup_seconds=timer.elapsed,
        num_levels=hierarchy.num_levels,
    )
