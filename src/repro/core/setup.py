"""inGRASS setup phase (Algorithm 1, steps 1-3).

The setup phase is a one-time investment on the initial sparsifier ``H(0)``:

1. estimate the effective resistances of the sparsifier's edges with a
   scalable embedding (Krylov surrogate or Johnson–Lindenstrauss solves);
2. run the multilevel LRD decomposition, assigning every node an
   ``O(log N)``-dimensional vector of cluster indices;
3. materialise the multilevel sparse data structure (the cluster hierarchy
   plus the cluster-pair connectivity used by the similarity filter).

Its cost is ``O(N log N)`` and is amortised over arbitrarily many update
iterations, which is the core economics the paper's Table I/Figure 4 measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import InGrassConfig
from repro.core.embedding import ResistanceEmbedding
from repro.core.hierarchy import ClusterHierarchy
from repro.core.lrd import lrd_decompose
from repro.graphs.components import is_connected
from repro.graphs.graph import Graph
from repro.utils.timing import Timer


@dataclass
class SetupResult:
    """Artifacts of the setup phase consumed by every subsequent update."""

    hierarchy: ClusterHierarchy
    embedding: ResistanceEmbedding
    setup_seconds: float
    num_levels: int

    def filtering_level_for(self, target_condition_number: float, size_divisor: float = 2.0) -> int:
        """Delegate filtering-level selection to the hierarchy."""
        return self.hierarchy.filtering_level_for_condition(target_condition_number, size_divisor)


def run_setup(sparsifier: Graph, config: Optional[InGrassConfig] = None) -> SetupResult:
    """Execute the inGRASS setup phase on the initial sparsifier ``H(0)``.

    Parameters
    ----------
    sparsifier:
        The initial sparsifier.  It must be connected: a disconnected
        sparsifier has unbounded condition number and the resistance
        embedding would be meaningless.
    config:
        Full inGRASS configuration; only its ``lrd`` sub-config is used here.
    """
    config = config if config is not None else InGrassConfig()
    if sparsifier.num_nodes == 0:
        raise ValueError("cannot set up inGRASS on an empty sparsifier")
    if sparsifier.num_nodes > 1 and not is_connected(sparsifier):
        raise ValueError("the initial sparsifier must be connected")
    timer = Timer().start()
    hierarchy = lrd_decompose(sparsifier, config.lrd)
    embedding = ResistanceEmbedding(hierarchy)
    timer.stop()
    return SetupResult(
        hierarchy=hierarchy,
        embedding=embedding,
        setup_seconds=timer.elapsed,
        num_levels=hierarchy.num_levels,
    )
