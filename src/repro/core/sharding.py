"""Sharded update engine: per-shard filters with a global escrow stage.

The classic :class:`~repro.core.incremental.InGrassSparsifier` is one
monolithic pipeline — one similarity-filter map, one hierarchy, one
maintenance pass — so its per-event floor at 10⁵+ nodes is global state.
This module partitions the *node set* along a coarse LRD level and runs the
update stack per shard, the same shape as parallel-readout DAQ designs:
independent per-partition pipelines with a thin cross-partition merge stage.

* :class:`ShardPlan` assigns every node to a shard such that **no cluster of
  the partition level (or any finer level) straddles a shard**.  Because LRD
  clusters are nested, two nodes in different shards then share no cluster at
  or below the partition level — in particular not at the similarity
  filtering level — which makes the filter's cluster-pair buckets
  shard-disjoint: intra-shard streamed edges only ever read and mutate state
  their own shard owns.
* :class:`ShardContext` bundles one shard's :class:`ShardScopedFilter` view
  (the slice of the similarity-filter map whose edges live inside the shard)
  and its :class:`~repro.core.maintenance.HierarchyMaintainer`.
* Cross-shard edges — endpoints in different shards — drain through a small
  global **escrow** context that reuses the batch engine's group resolution;
  its filter owns exactly the cross-shard slice of the map.
* :class:`ShardedSparsifier` routes each incoming batch per shard (numpy
  masks over the validated endpoint arrays), dispatches the intra-shard
  sub-batches to the existing :func:`~repro.core.update.run_update` kernels —
  serially or on a thread pool (``InGrassConfig.shard_mode``); the scoring /
  grouping kernels are numpy and release the GIL, so shards overlap on
  multi-core hosts — then drains the escrow and replays hierarchy
  maintenance in the exact order the unsharded engine would have used.

**Oracle guarantee.**  Sharding is an execution strategy, not an
approximation: for every ``num_shards`` and ``shard_mode`` the resulting
sparsifier (edge set *and* weights), the per-edge filter decisions and the
κ-guard history are identical to the unsharded driver's, because

1. intra-shard decisions touch only shard-owned buckets and shard-interior
   sparsifier edges (disjoint across shards, so any interleaving commutes),
2. escrow decisions touch only the cross-shard slice, which no shard
   mutates, and
3. deletions, weight changes, the κ guard and all hierarchy maintenance run
   globally — through a :class:`CompositeSimilarityFilter` that routes the
   full filter protocol to the owning slice — in the unsharded order.

``num_shards=1`` degenerates to a single shard owning every node with an
empty escrow, i.e. literally today's behaviour.  The parity property suite
(``tests/test_sharded.py``) asserts shard-count invariance on mixed churn
streams.

When hierarchy maintenance fuses two partition-level clusters that lived in
different shards (possible only through escrow edges), the plan is stale;
every entry point revalidates the partition invariant against the level's
label version and re-derives the plan — rebuilding the per-shard filter
slices — before routing anything else.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import InGrassConfig
from repro.core.distortion import DistortionBatch, score_edge_arrays
from repro.core.filtering import (
    FilterAction,
    FilterDecision,
    FilterDecisionBatch,
    FilterSummary,
    SimilarityFilter,
    _ACTION_TO_CODE,
)
from repro.core.hierarchy import ClusterHierarchy
from repro.core.incremental import InGrassSparsifier
from repro.core.maintenance import HierarchyMaintainer, MaintenanceStats
from repro.core.update import UpdateResult, _select_filtering_level, run_update
from repro.graphs.graph import Graph, canonical_edge
from repro.graphs.validation import validate_new_edge_arrays
from repro.utils.timing import Timer

Edge = Tuple[int, int]
WeightedEdge = Tuple[int, int, float]

#: Shard id of the escrow context (cross-shard edges).
ESCROW = -1

#: Compact action code of ADDED decisions in :class:`FilterDecisionBatch`.
_ADDED_CODE = _ACTION_TO_CODE[FilterAction.ADDED]

#: Upper bound on the cluster-quotient size the shard planner works with:
#: the finest LRD level below this count is used as the partition level
#: (keeps the Fiedler solve cheap while giving the sweep fine granularity).
QUOTIENT_LIMIT = 4096


# --------------------------------------------------------------------------- #
# Shard plan
# --------------------------------------------------------------------------- #
@dataclass
class ShardPlan:
    """Node partition derived from a coarse LRD level.

    Attributes
    ----------
    num_shards:
        Realised shard count (may be lower than requested when the partition
        level offers fewer clusters).
    partition_level:
        The LRD level whose clusters were packed into shards — the coarsest
        level with at least ``num_shards`` non-empty clusters that is not
        finer than the similarity filtering level (the invariant
        "clusters never straddle shards" must hold at the filtering level).
    node_shard:
        ``int64`` array mapping every node to its shard.
    """

    num_shards: int
    partition_level: int
    node_shard: np.ndarray

    @classmethod
    def from_hierarchy(cls, hierarchy: ClusterHierarchy, num_shards: int, *,
                       min_level: int = 0, sparsifier: Optional[Graph] = None) -> "ShardPlan":
        """Partition the node set into (at most) ``num_shards`` shards.

        Scans from the coarsest level down to ``min_level`` for the first
        level with at least ``num_shards`` non-empty clusters, then packs
        that level's clusters into shards without ever splitting a cluster.
        ``min_level`` is the filtering level: partitioning at a finer level
        would let a filtering-level cluster straddle shards.

        When ``sparsifier`` is given (the driver passes the *tracked graph*,
        whose edges reflect real traffic locality), packing is spectral: the
        clusters are swept along the Fiedler vector of the cluster quotient
        graph and cut into node-balanced bands, so shards follow the weak
        cuts and the cross-shard (escrow) traffic of locality-biased streams
        stays near the geometric minimum.  Without an adjacency source,
        clusters are packed largest first onto the least-loaded shard.

        The partition level is the *finest* level at or above ``min_level``
        whose quotient stays below :data:`QUOTIENT_LIMIT` clusters — finer
        clusters are rounder and give the sweep more freedom, which measured
        2-5x lower escrow fractions than coarse (often dendritic) LRD
        mega-clusters; the cap keeps the Fiedler solve cheap at any scale.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        min_level = max(0, min(min_level, hierarchy.num_levels - 1))
        chosen_level = hierarchy.num_levels - 1
        chosen_sizes: Optional[np.ndarray] = None
        for level_index in range(min_level, hierarchy.num_levels):
            level = hierarchy.level(level_index)
            sizes = np.bincount(level.labels, minlength=level.num_clusters)
            if int((sizes > 0).sum()) <= QUOTIENT_LIMIT:
                chosen_level = level_index
                chosen_sizes = sizes
                break
        if chosen_sizes is None:  # pragma: no cover - top level always has few clusters
            level = hierarchy.level(chosen_level)
            chosen_sizes = np.bincount(level.labels, minlength=level.num_clusters)
        num_shards = max(1, min(num_shards, int((chosen_sizes > 0).sum())))
        labels = hierarchy.level(chosen_level).labels
        cluster_shard = None
        if num_shards > 1 and sparsifier is not None:
            cluster_shard = cls._pack_spectral(labels, chosen_sizes, num_shards, sparsifier)
        if cluster_shard is None:
            cluster_shard = cls._pack_by_size(chosen_sizes, num_shards)
        node_shard = cluster_shard[labels]
        return cls(num_shards=num_shards, partition_level=chosen_level,
                   node_shard=np.ascontiguousarray(node_shard, dtype=np.int64))

    @staticmethod
    def _pack_by_size(sizes: np.ndarray, num_shards: int) -> np.ndarray:
        """Greedy balance: biggest cluster first onto the least-loaded shard."""
        cluster_shard = np.zeros(sizes.shape[0], dtype=np.int64)
        loads = np.zeros(num_shards, dtype=np.int64)
        for cluster in np.argsort(-sizes, kind="stable").tolist():
            if sizes[cluster] == 0:
                continue
            shard = int(np.argmin(loads))
            cluster_shard[cluster] = shard
            loads[shard] += int(sizes[cluster])
        return cluster_shard

    @staticmethod
    def _pack_spectral(labels: np.ndarray, sizes: np.ndarray, num_shards: int,
                       adjacency_source: Graph) -> Optional[np.ndarray]:
        """Fiedler-sweep band partition of the cluster quotient graph.

        Builds the quotient graph of the partition level (one vertex per
        cluster, edges counting the ``adjacency_source`` edges between
        clusters), computes its Fiedler vector and sweeps the clusters in
        that order into ``num_shards`` node-balanced bands — the classic
        spectral band partition, which on mesh/grid-like circuits tracks the
        geometric minimum cut closely.  Deterministic (dense solve or fixed
        start vector; canonical sign).  Returns ``None`` when the quotient
        is degenerate (no crossing edges, or the eigensolve fails), letting
        the caller fall back to size-greedy packing.
        """
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla

        num_clusters = int(sizes.shape[0])
        if num_clusters < 2:
            return None
        us, vs, _ = adjacency_source.edge_arrays()
        if us.shape[0] == 0:
            return None
        cu = labels[us]
        cv = labels[vs]
        crossing = cu != cv
        if not crossing.any():
            return None
        ones = np.ones(int(crossing.sum()))
        rows = np.concatenate([cu[crossing], cv[crossing]])
        cols = np.concatenate([cv[crossing], cu[crossing]])
        data = np.concatenate([ones, ones])
        adjacency = sp.coo_matrix((data, (rows, cols)),
                                  shape=(num_clusters, num_clusters)).tocsr()
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        laplacian = sp.diags(degrees) - adjacency
        try:
            if num_clusters <= 1500:
                _, vectors = np.linalg.eigh(laplacian.toarray())
                fiedler = vectors[:, 1]
            else:
                values, vectors = spla.eigsh(laplacian + 1e-10 * sp.identity(num_clusters),
                                             k=2, sigma=0, which="LM",
                                             v0=np.ones(num_clusters))
                fiedler = vectors[:, int(np.argsort(values)[1])]
        except Exception:  # pragma: no cover - eigensolver corner cases
            return None
        anchor = int(np.argmax(np.abs(fiedler)))
        if fiedler[anchor] < 0:
            fiedler = -fiedler
        order = np.argsort(fiedler, kind="stable")
        total = int(sizes.sum())
        cluster_shard = np.zeros(num_clusters, dtype=np.int64)
        cumulative = 0
        shard = 0
        for cluster in order.tolist():
            if shard < num_shards - 1 and cumulative >= (shard + 1) * total / num_shards:
                shard += 1
            cluster_shard[cluster] = shard
            cumulative += int(sizes[cluster])
        if np.unique(cluster_shard[sizes > 0]).shape[0] < num_shards:
            return None  # a band ended up empty; let the caller fall back
        return cluster_shard

    def shard_of_edge(self, u: int, v: int) -> int:
        """Shard owning edge ``(u, v)``; :data:`ESCROW` when it crosses shards."""
        su = int(self.node_shard[u])
        return su if su == int(self.node_shard[v]) else ESCROW

    def shard_of_pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`shard_of_edge` (``ESCROW`` marks cross-shard pairs)."""
        su = self.node_shard[us]
        sv = self.node_shard[vs]
        return np.where(su == sv, su, ESCROW)

    def shard_sizes(self) -> np.ndarray:
        """Node count per shard."""
        return np.bincount(self.node_shard, minlength=self.num_shards)

    def is_consistent(self, hierarchy: ClusterHierarchy) -> bool:
        """``True`` while no partition-level cluster straddles two shards.

        Clusters *splitting* keeps the plan valid (fragments stay inside
        their shard); only a cross-shard *fusion* at the partition level —
        possible through escrow-edge maintenance merges — breaks it.
        """
        labels = hierarchy.level(self.partition_level).labels
        num_clusters = hierarchy.level(self.partition_level).num_clusters
        lowest = np.full(num_clusters, np.iinfo(np.int64).max, dtype=np.int64)
        highest = np.full(num_clusters, -1, dtype=np.int64)
        np.minimum.at(lowest, labels, self.node_shard)
        np.maximum.at(highest, labels, self.node_shard)
        populated = highest >= 0
        return bool(np.all(lowest[populated] == highest[populated]))


# --------------------------------------------------------------------------- #
# Scoped filter views
# --------------------------------------------------------------------------- #
class ShardScopedFilter(SimilarityFilter):
    """A :class:`SimilarityFilter` view owning one shard's slice of the map.

    The filter indexes only the sparsifier edges its shard owns — both
    endpoints inside the shard, or both endpoints in *different* shards for
    the escrow view (``shard_id=ESCROW``).  Because shards are unions of
    partition-level clusters and clusters nest, a cluster pair at the
    filtering level is realised either entirely by one shard's edges or
    entirely by cross-shard edges, so each scoped view holds whole buckets:
    queries against the owning view return exactly what the global filter
    would.
    """

    def __init__(self, sparsifier: Graph, hierarchy: ClusterHierarchy, filtering_level: int,
                 *, plan: ShardPlan, shard_id: int,
                 redistribute_intra_cluster_weight: bool = True) -> None:
        # Scope attributes must exist before the base constructor scans the
        # sparsifier through the overridden _register_edge.
        self._plan = plan
        self._shard_id = int(shard_id)
        super().__init__(sparsifier, hierarchy, filtering_level,
                         redistribute_intra_cluster_weight=redistribute_intra_cluster_weight)

    @property
    def shard_id(self) -> int:
        """The shard this view belongs to (:data:`ESCROW` for the escrow)."""
        return self._shard_id

    def owns_edge(self, u: int, v: int) -> bool:
        """Whether this view indexes sparsifier edge ``(u, v)``."""
        return self._plan.shard_of_edge(u, v) == self._shard_id

    def _register_edge(self, u: int, v: int) -> None:
        if self.owns_edge(u, v):
            super()._register_edge(u, v)

    def _unregister_edge(self, u: int, v: int) -> None:
        if self.owns_edge(u, v):
            super()._unregister_edge(u, v)


class CompositeSimilarityFilter:
    """Routes the full similarity-filter protocol across the shard views.

    The global stages of the driver — deletions, weight changes, the κ guard,
    hierarchy maintenance — run the existing kernels unchanged; this object
    stands in for their single ``SimilarityFilter`` and forwards every
    operation to the scoped view owning the touched edge.  Each bucket of
    the conceptual global map lives in exactly one view (see
    :class:`ShardScopedFilter`), so routed queries, weight re-homing and the
    splice re-keying protocol return byte-identical results to the unsharded
    filter.  Every public call first revalidates the shard plan so a
    cross-shard cluster fusion can never route through a stale partition.
    """

    def __init__(self, driver: "ShardedSparsifier") -> None:
        self._driver = driver

    # -- plumbing ------------------------------------------------------- #
    def _fresh_views(self) -> List[ShardScopedFilter]:
        self._driver._replan_if_stale()
        return self._driver._filter_views()

    def _owner(self, u: int, v: int) -> ShardScopedFilter:
        self._driver._replan_if_stale()
        return self._driver._owner_view(u, v)

    @property
    def filtering_level(self) -> int:
        """Filtering level shared by every view."""
        return self._driver._filter_views()[0].filtering_level

    @property
    def sparsifier(self) -> Graph:
        """The (shared) sparsifier being maintained."""
        return self._driver._filter_views()[0].sparsifier

    # -- SimilarityFilter protocol -------------------------------------- #
    def notify_edge_added(self, u: int, v: int) -> None:
        self._owner(u, v).notify_edge_added(u, v)

    def notify_edge_removed(self, u: int, v: int) -> None:
        self._owner(u, v).notify_edge_removed(u, v)

    def reassign_weight(self, u: int, v: int, weight: float) -> bool:
        return self._owner(u, v).reassign_weight(u, v, weight)

    def connects_clusters(self, p: int, q: int) -> bool:
        return self._owner(p, q).connects_clusters(p, q)

    def unregister_incident_edges(self, nodes) -> List[Edge]:
        views = self._fresh_views()
        sparsifier = views[0].sparsifier
        edges: Dict[Edge, None] = {}
        adjacency_of = sparsifier.neighbors
        for node in np.asarray(nodes, dtype=np.int64).tolist():
            for neighbor in adjacency_of(node):
                edges[canonical_edge(node, int(neighbor))] = None
        owner_view = self._driver._owner_view
        for u, v in edges:
            owner_view(u, v).notify_edge_removed(u, v)
        return list(edges)

    def register_edges(self, edges: Sequence[Edge]) -> None:
        self._driver._replan_if_stale()
        owner_view = self._driver._owner_view
        for u, v in edges:
            owner_view(u, v).notify_edge_added(u, v)

    def mark_synced(self) -> None:
        for view in self._driver._filter_views():
            view.mark_synced()

    def in_sync_with_hierarchy(self) -> bool:
        return all(view.in_sync_with_hierarchy() for view in self._driver._filter_views())

    def resync(self) -> None:
        for view in self._fresh_views():
            view.resync()


# --------------------------------------------------------------------------- #
# Shard contexts and the driver
# --------------------------------------------------------------------------- #
@dataclass
class ShardContext:
    """One shard's slice of the update stack."""

    shard_id: int
    filter: ShardScopedFilter
    maintainer: Optional[HierarchyMaintainer]


@dataclass
class ShardBatchReport:
    """How one insertion batch was executed across the shards."""

    #: ``"serial"`` or ``"threads"``.
    mode: str
    #: Events routed to each shard (index = shard id).
    shard_events: List[int] = field(default_factory=list)
    #: Cross-shard events drained through the escrow stage.
    escrow_events: int = 0
    #: Shard plans re-derived so far over the driver's lifetime.
    replans: int = 0


@dataclass
class ShardedUpdateResult(UpdateResult):
    """:class:`UpdateResult` plus the shard execution report."""

    shard_report: Optional[ShardBatchReport] = None


class ShardedSparsifier(InGrassSparsifier):
    """Shard-aware :class:`InGrassSparsifier` (see the module docstring).

    Drop-in replacement: the public API, the history records and — by the
    oracle guarantee — every produced sparsifier are identical to the base
    driver's; only the execution strategy of the insertion engine changes.
    Configure through ``InGrassConfig.num_shards`` / ``shard_mode`` and build
    via :meth:`InGrassSparsifier.from_config`.
    """

    def __init__(self, config: Optional[InGrassConfig] = None) -> None:
        super().__init__(config)
        self._plan: Optional[ShardPlan] = None
        self._contexts: Optional[List[ShardContext]] = None
        self._escrow: Optional[ShardContext] = None
        self._composite: Optional[CompositeSimilarityFilter] = None
        self._plan_version = -1
        self._replans = 0
        self._executor: Optional[ThreadPoolExecutor] = None
        self._retired_stats = MaintenanceStats()

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #
    @property
    def plan(self) -> ShardPlan:
        """The current node partition."""
        self._require_setup()
        self._ensure_contexts()
        assert self._plan is not None
        return self._plan

    @property
    def num_shards(self) -> int:
        """Realised shard count (≤ ``config.num_shards``)."""
        return self.plan.num_shards

    @property
    def contexts(self) -> List[ShardContext]:
        """Per-shard contexts (index = shard id)."""
        self._require_setup()
        self._ensure_contexts()
        assert self._contexts is not None
        return list(self._contexts)

    @property
    def escrow(self) -> ShardContext:
        """The global escrow context handling cross-shard edges."""
        self._require_setup()
        self._ensure_contexts()
        assert self._escrow is not None
        return self._escrow

    @property
    def replans(self) -> int:
        """Shard plans re-derived after cross-shard cluster fusions."""
        return self._replans

    @property
    def maintainer(self) -> Optional[HierarchyMaintainer]:
        """The maintainer of the global (escrow) stage, maintain mode only."""
        if self._setup is None or self.config.hierarchy_mode != "maintain":
            return None
        return self._ensure_maintainer()

    @property
    def maintenance_stats(self) -> MaintenanceStats:
        """Aggregated maintenance counters across all shard contexts."""
        total = self._retired_stats.snapshot()
        for context in (self._contexts or []) + ([self._escrow] if self._escrow else []):
            if context.maintainer is not None:
                total.merge(context.maintainer.stats)
        return total

    # ------------------------------------------------------------------ #
    # Plan and context lifecycle
    # ------------------------------------------------------------------ #
    def setup(self, *args, **kwargs):
        result = super().setup(*args, **kwargs)
        self._reset_sharding()
        return result

    def refresh_setup(self):
        result = super().refresh_setup()
        self._reset_sharding()
        return result

    def _reset_sharding(self) -> None:
        # A (re)setup starts a fresh measurement epoch, matching the base
        # driver's behaviour of discarding the old maintainer's counters —
        # retirement (keeping them) is only for mid-stream replans.
        self._retired_stats = MaintenanceStats()
        self._shutdown_pool()
        self._plan = None
        self._contexts = None
        self._escrow = None
        self._composite = None
        self._plan_version = -1

    def _shutdown_pool(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    def __del__(self) -> None:  # pragma: no cover - interpreter-driven
        executor = getattr(self, "_executor", None)
        if executor is not None:
            executor.shutdown(wait=False)

    def _retire_context_stats(self) -> None:
        """Fold live maintainer counters into the retirement accumulator."""
        for context in (self._contexts or []) + ([self._escrow] if self._escrow else []):
            if context.maintainer is not None:
                self._retired_stats.merge(context.maintainer.stats)

    def _ensure_contexts(self) -> None:
        if self._contexts is not None:
            return
        assert self._setup is not None and self._sparsifier is not None
        level = _select_filtering_level(self._setup, self.config, self._target_condition)
        hierarchy = self._setup.hierarchy
        plan = ShardPlan.from_hierarchy(
            hierarchy, self.config.num_shards, min_level=level,
            sparsifier=self._graph if self._graph is not None else self._sparsifier,
        )
        self._plan = plan
        self._plan_version = hierarchy.level_labels_version(plan.partition_level)
        maintain = self.config.hierarchy_mode == "maintain"

        def make_context(shard_id: int) -> ShardContext:
            scoped = ShardScopedFilter(
                self._sparsifier, hierarchy, level, plan=plan, shard_id=shard_id,
                redistribute_intra_cluster_weight=self.config.redistribute_intra_cluster_weight,
            )
            maintainer = (self._setup.make_maintainer(self._sparsifier, self.config)
                          if maintain else None)
            return ShardContext(shard_id=shard_id, filter=scoped, maintainer=maintainer)

        self._contexts = [make_context(shard) for shard in range(plan.num_shards)]
        self._escrow = make_context(ESCROW)
        if self._composite is None:
            self._composite = CompositeSimilarityFilter(self)

    def _filter_views(self) -> List[ShardScopedFilter]:
        self._ensure_contexts()
        assert self._contexts is not None and self._escrow is not None
        return [context.filter for context in self._contexts] + [self._escrow.filter]

    def _owner_view(self, u: int, v: int) -> ShardScopedFilter:
        assert self._plan is not None and self._contexts is not None and self._escrow is not None
        shard = self._plan.shard_of_edge(u, v)
        return (self._escrow if shard == ESCROW else self._contexts[shard]).filter

    def _context_for(self, shard: int) -> ShardContext:
        assert self._contexts is not None and self._escrow is not None
        return self._escrow if shard == ESCROW else self._contexts[shard]

    def _replan_if_stale(self) -> None:
        """Re-derive the plan after a cross-shard cluster fusion.

        Cheap in the common case (one integer compare against the partition
        level's label version); only an actual invariant violation — escrow-
        edge maintenance fusing two partition-level clusters from different
        shards — pays the re-partition and the scoped-filter rebuilds.
        """
        if self._plan is None or self._setup is None:
            return
        hierarchy = self._setup.hierarchy
        version = hierarchy.level_labels_version(self._plan.partition_level)
        if version == self._plan_version:
            return
        self._plan_version = version
        if self._plan.is_consistent(hierarchy):
            return
        self._replans += 1
        self._retire_context_stats()
        self._contexts = None
        self._escrow = None
        self._plan = None
        self._ensure_contexts()

    # ------------------------------------------------------------------ #
    # Overridden driver hooks: global stages route through the composite
    # ------------------------------------------------------------------ #
    def _ensure_filter(self):  # type: ignore[override]
        self._require_setup()
        self._ensure_contexts()
        self._replan_if_stale()
        assert self._composite is not None
        self._filter = self._composite  # _record_iteration reads filtering_level
        return self._composite

    def _ensure_maintainer(self) -> Optional[HierarchyMaintainer]:  # type: ignore[override]
        if self.config.hierarchy_mode != "maintain":
            return None
        self._require_setup()
        self._ensure_contexts()
        assert self._escrow is not None
        return self._escrow.maintainer

    # ------------------------------------------------------------------ #
    # Sharded insertion engine
    # ------------------------------------------------------------------ #
    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            assert self._plan is not None
            self._executor = ThreadPoolExecutor(
                max_workers=self._plan.num_shards,
                thread_name_prefix="ingrass-shard",
            )
        return self._executor

    def _apply_insertions(self, new_edges: Sequence[WeightedEdge]) -> UpdateResult:
        """Insertion phase: route per shard, filter concurrently, drain escrow."""
        graph, sparsifier, setup = self._graph, self._sparsifier, self._setup
        assert graph is not None and sparsifier is not None and setup is not None
        self._ensure_contexts()
        self._replan_if_stale()
        graph.add_edges(new_edges, merge="add")
        return self.run_insertion_engine(new_edges)

    def run_insertion_engine(self, new_edges: Sequence[WeightedEdge]) -> ShardedUpdateResult:
        """Run the sparsifier-side insertion engine (no tracked-graph bookkeeping).

        This is the stage the shard-scaling benchmark times: everything
        :func:`~repro.core.update.run_update` does — scoring, similarity
        filtering, hierarchy maintenance — executed per shard.  The tracked
        graph is *not* touched; :meth:`update` callers never need this
        directly.
        """
        sparsifier, setup, config = self._sparsifier, self._setup, self.config
        assert sparsifier is not None and setup is not None
        self._ensure_contexts()
        self._replan_if_stale()
        assert self._plan is not None and self._contexts is not None and self._escrow is not None
        timer = Timer().start()
        plan = self._plan

        us, vs, ws = validate_new_edge_arrays(sparsifier, new_edges)
        m = int(us.shape[0])
        level = _select_filtering_level(setup, config, self._target_condition)

        # Full-batch semantics must survive the split: the engine choice and
        # the relative-threshold median are resolved on the whole stream, so
        # every sub-batch decides exactly as the unsharded oracle would.
        engine = "vectorized" if config.use_vectorized(m) else "scalar"
        sub_config = replace(config, batch_mode=engine, hierarchy_mode="rebuild")
        # Note on max_fill_fraction: the cap is enforced per sub-batch (each
        # run_update call budgets from its own length), so a capped sharded
        # batch admits at most one rounding unit more per shard than the
        # unsharded driver would.  Bit-exact parity is guaranteed for the
        # default (uncapped) configuration.

        triples = np.column_stack([us.astype(float), vs.astype(float), ws]) if m else np.zeros((0, 3))
        shard_ids = plan.shard_of_pairs(us, vs) if m else np.zeros(0, dtype=np.int64)

        jobs: List[Tuple[ShardContext, np.ndarray]] = []
        shard_events = [0] * plan.num_shards
        for shard in range(plan.num_shards):
            mask = shard_ids == shard
            count = int(mask.sum())
            shard_events[shard] = count
            if count:
                jobs.append((self._contexts[shard], triples[mask]))
        escrow_triples = triples[shard_ids == ESCROW]
        escrow_events = int(escrow_triples.shape[0])
        use_threads = config.use_shard_threads(m, len(jobs), os.cpu_count())

        # Threshold pipeline: the relative distortion cut is defined against
        # the *whole stream's* median, so a barrier is needed between scoring
        # and filtering.  On the vectorised engine each slice (shards +
        # escrow) is scored exactly once — concurrently in threads mode —
        # the median barrier is one cheap concatenation, and the scored
        # slices feed straight into the filter stage below (run_update skips
        # its own scoring pass).  The scalar engine (sub-threshold batches
        # only) keeps its per-edge estimates and pays one extra global
        # scoring pass for the median — negligible at those sizes.
        median: Optional[float] = None
        scored: Dict[int, DistortionBatch] = {}
        if config.distortion_threshold > 0 and m and engine == "vectorized":
            def score_slice(sub: np.ndarray) -> DistortionBatch:
                sub_us = sub[:, 0].astype(np.int64)
                sub_vs = sub[:, 1].astype(np.int64)
                return score_edge_arrays(setup.embedding, sub_us, sub_vs,
                                         np.ascontiguousarray(sub[:, 2]))

            slices = [sub for _, sub in jobs] + [escrow_triples]
            if use_threads and len(jobs) > 1:
                futures = [self._pool().submit(score_slice, sub) for sub in slices]
                batches = [future.result() for future in futures]
            else:
                batches = [score_slice(sub) for sub in slices]
            for index, batch in enumerate(batches[:-1]):
                scored[id(jobs[index][1])] = batch
            scored[id(escrow_triples)] = batches[-1]
            median = float(np.median(np.concatenate([b.distortions for b in batches])))
        elif config.distortion_threshold > 0 and m:
            median = float(np.median(score_edge_arrays(setup.embedding, us, vs, ws).distortions))

        def run_sub(context: ShardContext, sub: np.ndarray) -> UpdateResult:
            return run_update(
                sparsifier, setup, sub, sub_config,
                target_condition_number=self._target_condition,
                similarity_filter=context.filter, maintainer=None,
                distortion_median=median, scored_batch=scored.get(id(sub)),
            )

        if use_threads:
            futures = [self._pool().submit(run_sub, context, sub) for context, sub in jobs]
            shard_results = [future.result() for future in futures]
        else:
            shard_results = [run_sub(context, sub) for context, sub in jobs]
        ordered: List[Tuple[ShardContext, UpdateResult]] = list(
            zip([context for context, _ in jobs], shard_results))

        if escrow_events or not ordered:
            ordered.append((self._escrow, run_sub(self._escrow, escrow_triples)))

        hierarchy_merges = self._replay_maintenance(ordered, us, vs)
        result = self._merge_results(ordered, level)
        result.hierarchy_merges = hierarchy_merges
        result.shard_report = ShardBatchReport(
            mode="threads" if use_threads else "serial",
            shard_events=shard_events,
            escrow_events=escrow_events,
            replans=self._replans,
        )
        timer.stop()
        result.update_seconds = timer.elapsed
        return result

    def _replay_maintenance(self, ordered: Sequence[Tuple[ShardContext, UpdateResult]],
                            us: np.ndarray, vs: np.ndarray) -> int:
        """Maintain-mode merge pass over the batch's ADDED edges, oracle order.

        The per-shard kernels run with maintenance deferred (parallel threads
        must not mutate the shared hierarchy); afterwards every added edge is
        replayed through its shard's maintainer in the exact order the
        unsharded engine uses — decreasing distortion, stream position as the
        tie-break — against the composite filter so cross-shard incident
        edges re-key correctly.
        """
        if self.config.hierarchy_mode != "maintain":
            return 0
        assert self._sparsifier is not None and self._composite is not None
        num_nodes = np.int64(max(self._sparsifier.num_nodes, 1))
        # validate_new_edge_arrays deduplicated the batch, so every canonical
        # pair maps to exactly one stream position — recovered with one
        # sorted-key lookup per shard's added set.
        keys_all = us * num_nodes + vs
        key_order = np.argsort(keys_all, kind="stable")
        sorted_keys = keys_all[key_order]
        entries: List[Tuple[float, int, WeightedEdge]] = []
        added_code = _ADDED_CODE
        for _context, result in ordered:
            decisions = result.decisions
            if isinstance(decisions, FilterDecisionBatch):
                added_idx = np.flatnonzero(decisions.actions == added_code)
                if not added_idx.size:
                    continue
                aus = decisions.us[added_idx]
                avs = decisions.vs[added_idx]
                aws = decisions.ws[added_idx].tolist()
                adist = decisions.distortions[added_idx].tolist()
            else:
                added = [(decision.edge, decision.distortion) for decision in decisions
                         if decision.action is FilterAction.ADDED]
                if not added:
                    continue
                aus = np.fromiter((edge[0] for edge, _ in added), dtype=np.int64, count=len(added))
                avs = np.fromiter((edge[1] for edge, _ in added), dtype=np.int64, count=len(added))
                aws = [edge[2] for edge, _ in added]
                adist = [distortion for _, distortion in added]
            ranks = key_order[np.searchsorted(sorted_keys, aus * num_nodes + avs)]
            for u, v, w, distortion, rank in zip(aus.tolist(), avs.tolist(), aws, adist,
                                                 ranks.tolist()):
                entries.append((float(distortion), int(rank), (u, v, w)))
        if not entries:
            return 0
        entries.sort(key=lambda item: (-item[0], item[1]))
        merges = 0
        composite = self._composite
        for _, _, edge in entries:
            # Resolve the owning context *per edge*: a replayed escrow merge
            # can fuse partition-level clusters and trigger a mid-replay
            # replan, after which the pre-replay contexts (and their stats)
            # are retired — later edges must land on the live maintainers.
            self._replan_if_stale()
            assert self._plan is not None
            context = self._context_for(self._plan.shard_of_edge(edge[0], edge[1]))
            maintainer = context.maintainer
            if maintainer is None:
                continue
            merges += maintainer.note_insertions([edge], similarity_filter=composite)
        return merges

    def _merge_results(self, ordered: Sequence[Tuple[ShardContext, UpdateResult]],
                       level: int) -> ShardedUpdateResult:
        """Fuse the per-shard results into one record (shards first, escrow last)."""
        results = [result for _, result in ordered]
        summary = FilterSummary()
        dropped = 0
        for result in results:
            summary.added += result.summary.added
            summary.merged += result.summary.merged
            summary.redistributed += result.summary.redistributed
            summary.dropped += result.summary.dropped
            dropped += result.dropped_low_distortion
        if results and all(isinstance(result.decisions, FilterDecisionBatch) for result in results):
            decisions: Union[List[FilterDecision], FilterDecisionBatch] = FilterDecisionBatch.concat(
                [result.decisions for result in results])  # type: ignore[misc]
        else:
            decisions = []
            for result in results:
                decisions.extend(list(result.decisions))
        return ShardedUpdateResult(
            decisions=decisions,
            summary=summary,
            filtering_level=level,
            update_seconds=0.0,
            dropped_low_distortion=dropped,
        )
