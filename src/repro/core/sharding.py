"""Sharded update engine: per-shard filters with a global escrow stage.

The classic :class:`~repro.core.incremental.InGrassSparsifier` is one
monolithic pipeline — one similarity-filter map, one hierarchy, one
maintenance pass — so its per-event floor at 10⁵+ nodes is global state.
This module partitions the *node set* along a coarse LRD level and runs the
update stack per shard, the same shape as parallel-readout DAQ designs:
independent per-partition pipelines with a thin cross-partition merge stage.

* :class:`ShardPlan` assigns every node to a shard such that **no cluster of
  the partition level (or any finer level) straddles a shard**.  Because LRD
  clusters are nested, two nodes in different shards then share no cluster at
  or below the partition level — in particular not at the similarity
  filtering level — which makes the filter's cluster-pair buckets
  shard-disjoint: intra-shard streamed edges only ever read and mutate state
  their own shard owns.
* :class:`ShardContext` bundles one shard's :class:`ShardScopedFilter` view
  (the slice of the similarity-filter map whose edges live inside the shard)
  and its :class:`~repro.core.maintenance.HierarchyMaintainer`.
* Cross-shard edges — endpoints in different shards — drain through a small
  global **escrow** context that reuses the batch engine's group resolution;
  its filter owns exactly the cross-shard slice of the map.
* :class:`ShardedSparsifier` routes each incoming batch per shard (numpy
  masks over the validated endpoint arrays), dispatches the intra-shard
  sub-batches to the existing :func:`~repro.core.update.run_update` kernels —
  serially, on a thread pool, or on persistent worker processes
  (``InGrassConfig.executor``); the thread path overlaps the GIL-releasing
  numpy kernels, the process path (:mod:`repro.core.executors`) escapes the
  GIL entirely by mirroring each shard's state in a worker and replaying the
  worker's edge diff into the shared sparsifier — then drains the escrow and
  replays hierarchy maintenance in the exact order the unsharded engine
  would have used.

**Oracle guarantee.**  Sharding is an execution strategy, not an
approximation: for every ``num_shards`` and ``executor`` the resulting
sparsifier (edge set *and* weights), the per-edge filter decisions and the
κ-guard history are identical to the unsharded driver's, because

1. intra-shard decisions touch only shard-owned buckets and shard-interior
   sparsifier edges (disjoint across shards, so any interleaving commutes),
2. escrow decisions touch only the cross-shard slice, which no shard
   mutates, and
3. deletions, weight changes, the κ guard and all hierarchy maintenance run
   globally — through a :class:`CompositeSimilarityFilter` that routes the
   full filter protocol to the owning slice — in the unsharded order.

``num_shards=1`` degenerates to a single shard owning every node with an
empty escrow, i.e. literally today's behaviour.  The parity property suite
(``tests/test_sharded.py``) asserts shard-count invariance on mixed churn
streams.

**Removal phase.**  Deletion batches shard the same way: stage 1 of the
removal pipeline — sparsifier-edge drop, cluster-pair bucket invalidation,
excess-weight re-homing — runs per shard (serially or on the thread pool)
for intra-shard pairs, with cross-shard deletions draining through the
escrow context; the inherently global steps — rebuild-mode diameter
inflation, union-find reconnection, maintain-mode splices, the
distortion-ranked repair pass, the κ guard — run post-barrier in the exact
order the unsharded pipeline uses (see
:meth:`ShardedSparsifier._run_removal`).

When hierarchy maintenance fuses two filtering-level clusters that lived in
different shards (possible only through escrow edges), the plan is stale;
every entry point revalidates the invariant against the filtering level's
label version and *patches* the plan locally — the straddling cluster's
minority nodes move to the majority shard and only their incident edges
re-key between the scoped views.  Full plan re-derivations are driven by
the adaptive :class:`ReplanPolicy` (``InGrassConfig.replan_escrow_fraction``
/ ``replan_imbalance``): when the realised escrow fraction or per-shard
event imbalance accumulated under the current plan crosses its threshold,
the partition is re-derived from the current tracked graph so long
locality-drifting streams keep cross-shard traffic near the geometric
minimum instead of decaying to an all-escrow regime.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import InGrassConfig
from repro.core.distortion import DistortionBatch, score_edge_arrays
from repro.core.executors import ExecutorUnavailableError, ProcessShardExecutor
from repro.core.filtering import (
    FilterAction,
    FilterDecision,
    FilterDecisionBatch,
    FilterSummary,
    SimilarityFilter,
    _ACTION_TO_CODE,
)
from repro.core.hierarchy import ClusterHierarchy
from repro.core.incremental import InGrassSparsifier
from repro.core.maintenance import HierarchyMaintainer, MaintenanceStats
from repro.core.update import (
    RemovalResult,
    RemovalStage1Result,
    UpdateResult,
    _select_filtering_level,
    merge_drop_stages,
    prepare_removal_batch,
    run_removal_drop_stage,
    run_removal_repair_stages,
    run_update,
    slice_graph_weights,
)
from repro.graphs.graph import Graph, canonical_edge
from repro.graphs.validation import validate_new_edge_arrays
from repro.utils.logging import get_logger
from repro.utils.timing import Timer

logger = get_logger("core.sharding")

Edge = Tuple[int, int]
WeightedEdge = Tuple[int, int, float]

#: Shard id of the escrow context (cross-shard edges).
ESCROW = -1

#: Compact action code of ADDED decisions in :class:`FilterDecisionBatch`.
_ADDED_CODE = _ACTION_TO_CODE[FilterAction.ADDED]

#: Upper bound on the cluster-quotient size the shard planner works with:
#: the finest LRD level below this count is used as the partition level
#: (keeps the Fiedler solve cheap while giving the sweep fine granularity).
QUOTIENT_LIMIT = 4096


# --------------------------------------------------------------------------- #
# Shard plan
# --------------------------------------------------------------------------- #
@dataclass
class ShardPlan:
    """Node partition derived from a coarse LRD level.

    Attributes
    ----------
    num_shards:
        Realised shard count (may be lower than requested when the partition
        level offers fewer clusters).
    partition_level:
        The LRD level whose clusters were packed into shards — the coarsest
        level with at least ``num_shards`` non-empty clusters that is not
        finer than the similarity filtering level (the invariant
        "clusters never straddle shards" must hold at the filtering level).
    node_shard:
        ``int64`` array mapping every node to its shard.
    """

    num_shards: int
    partition_level: int
    node_shard: np.ndarray

    @classmethod
    def from_hierarchy(cls, hierarchy: ClusterHierarchy, num_shards: int, *,
                       min_level: int = 0, sparsifier: Optional[Graph] = None) -> "ShardPlan":
        """Partition the node set into (at most) ``num_shards`` shards.

        Scans from the coarsest level down to ``min_level`` for the first
        level with at least ``num_shards`` non-empty clusters, then packs
        that level's clusters into shards without ever splitting a cluster.
        ``min_level`` is the filtering level: partitioning at a finer level
        would let a filtering-level cluster straddle shards.

        When ``sparsifier`` is given (the driver passes the *tracked graph*,
        whose edges reflect real traffic locality), packing is spectral: the
        clusters are swept along the Fiedler vector of the cluster quotient
        graph and cut into node-balanced bands, so shards follow the weak
        cuts and the cross-shard (escrow) traffic of locality-biased streams
        stays near the geometric minimum.  Without an adjacency source,
        clusters are packed largest first onto the least-loaded shard.

        The partition level is the *finest* level at or above ``min_level``
        whose quotient stays below :data:`QUOTIENT_LIMIT` clusters — finer
        clusters are rounder and give the sweep more freedom, which measured
        2-5x lower escrow fractions than coarse (often dendritic) LRD
        mega-clusters; the cap keeps the Fiedler solve cheap at any scale.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        min_level = max(0, min(min_level, hierarchy.num_levels - 1))
        chosen_level = hierarchy.num_levels - 1
        chosen_sizes: Optional[np.ndarray] = None
        for level_index in range(min_level, hierarchy.num_levels):
            level = hierarchy.level(level_index)
            sizes = np.bincount(level.labels, minlength=level.num_clusters)
            if int((sizes > 0).sum()) <= QUOTIENT_LIMIT:
                chosen_level = level_index
                chosen_sizes = sizes
                break
        if chosen_sizes is None:  # pragma: no cover - top level always has few clusters
            level = hierarchy.level(chosen_level)
            chosen_sizes = np.bincount(level.labels, minlength=level.num_clusters)
        num_shards = max(1, min(num_shards, int((chosen_sizes > 0).sum())))
        labels = hierarchy.level(chosen_level).labels
        cluster_shard = None
        if num_shards > 1 and sparsifier is not None:
            cluster_shard = cls._pack_spectral(labels, chosen_sizes, num_shards, sparsifier)
        if cluster_shard is None:
            cluster_shard = cls._pack_by_size(chosen_sizes, num_shards)
        node_shard = cluster_shard[labels]
        return cls(num_shards=num_shards, partition_level=chosen_level,
                   node_shard=np.ascontiguousarray(node_shard, dtype=np.int64))

    @staticmethod
    def _pack_by_size(sizes: np.ndarray, num_shards: int) -> np.ndarray:
        """Greedy balance: biggest cluster first onto the least-loaded shard."""
        cluster_shard = np.zeros(sizes.shape[0], dtype=np.int64)
        loads = np.zeros(num_shards, dtype=np.int64)
        for cluster in np.argsort(-sizes, kind="stable").tolist():
            if sizes[cluster] == 0:
                continue
            shard = int(np.argmin(loads))
            cluster_shard[cluster] = shard
            loads[shard] += int(sizes[cluster])
        return cluster_shard

    @staticmethod
    def _pack_spectral(labels: np.ndarray, sizes: np.ndarray, num_shards: int,
                       adjacency_source: Graph) -> Optional[np.ndarray]:
        """Fiedler-sweep band partition of the cluster quotient graph.

        Builds the quotient graph of the partition level (one vertex per
        cluster, edges counting the ``adjacency_source`` edges between
        clusters), computes its Fiedler vector and sweeps the clusters in
        that order into ``num_shards`` node-balanced bands — the classic
        spectral band partition, which on mesh/grid-like circuits tracks the
        geometric minimum cut closely.  Deterministic (dense solve or fixed
        start vector; canonical sign).  Returns ``None`` when the quotient
        is degenerate (no crossing edges, or the eigensolve fails), letting
        the caller fall back to size-greedy packing.
        """
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla

        num_clusters = int(sizes.shape[0])
        if num_clusters < 2:
            return None
        us, vs, _ = adjacency_source.edge_arrays()
        if us.shape[0] == 0:
            return None
        cu = labels[us]
        cv = labels[vs]
        crossing = cu != cv
        if not crossing.any():
            return None
        ones = np.ones(int(crossing.sum()))
        rows = np.concatenate([cu[crossing], cv[crossing]])
        cols = np.concatenate([cv[crossing], cu[crossing]])
        data = np.concatenate([ones, ones])
        adjacency = sp.coo_matrix((data, (rows, cols)),
                                  shape=(num_clusters, num_clusters)).tocsr()
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        laplacian = sp.diags(degrees) - adjacency
        try:
            if num_clusters <= 1500:
                _, vectors = np.linalg.eigh(laplacian.toarray())
                fiedler = vectors[:, 1]
            else:
                values, vectors = spla.eigsh(laplacian + 1e-10 * sp.identity(num_clusters),
                                             k=2, sigma=0, which="LM",
                                             v0=np.ones(num_clusters))
                fiedler = vectors[:, int(np.argsort(values)[1])]
        except Exception:  # pragma: no cover - eigensolver corner cases
            return None
        anchor = int(np.argmax(np.abs(fiedler)))
        if fiedler[anchor] < 0:
            fiedler = -fiedler
        order = np.argsort(fiedler, kind="stable")
        total = int(sizes.sum())
        cluster_shard = np.zeros(num_clusters, dtype=np.int64)
        cumulative = 0
        shard = 0
        for cluster in order.tolist():
            if shard < num_shards - 1 and cumulative >= (shard + 1) * total / num_shards:
                shard += 1
            cluster_shard[cluster] = shard
            cumulative += int(sizes[cluster])
        if np.unique(cluster_shard[sizes > 0]).shape[0] < num_shards:
            return None  # a band ended up empty; let the caller fall back
        return cluster_shard

    def shard_of_edge(self, u: int, v: int) -> int:
        """Shard owning edge ``(u, v)``; :data:`ESCROW` when it crosses shards."""
        su = int(self.node_shard[u])
        return su if su == int(self.node_shard[v]) else ESCROW

    def shard_of_pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`shard_of_edge` (``ESCROW`` marks cross-shard pairs)."""
        su = self.node_shard[us]
        sv = self.node_shard[vs]
        return np.where(su == sv, su, ESCROW)

    def shard_sizes(self) -> np.ndarray:
        """Node count per shard."""
        return np.bincount(self.node_shard, minlength=self.num_shards)

    def is_consistent(self, hierarchy: ClusterHierarchy,
                      level: Optional[int] = None) -> bool:
        """``True`` while no cluster of ``level`` straddles two shards.

        Clusters *splitting* keeps the plan valid (fragments stay inside
        their shard); only a cross-shard *fusion* — possible through
        escrow-edge maintenance merges — breaks it.  ``level`` defaults to
        the partition level; the driver validates against the *filtering*
        level instead, which is the invariant that actually carries the
        oracle guarantee (shard-disjoint filter buckets need every
        filtering-level cluster to live inside one shard — fusions at the
        coarser levels above it leave the buckets untouched, so replanning
        on them would only churn the scoped filters for nothing).
        """
        if level is None:
            level = self.partition_level
        labels = hierarchy.level(level).labels
        num_clusters = hierarchy.level(level).num_clusters
        lowest = np.full(num_clusters, np.iinfo(np.int64).max, dtype=np.int64)
        highest = np.full(num_clusters, -1, dtype=np.int64)
        np.minimum.at(lowest, labels, self.node_shard)
        np.maximum.at(highest, labels, self.node_shard)
        populated = highest >= 0
        return bool(np.all(lowest[populated] == highest[populated]))


# --------------------------------------------------------------------------- #
# Adaptive replanning policy
# --------------------------------------------------------------------------- #
@dataclass
class ReplanPolicy:
    """Quality-triggered shard replanning (``InGrassConfig.replan_*`` knobs).

    A :class:`ShardPlan` is derived from the traffic the sparsifier has seen
    *so far*; a long stream whose locality drifts — new workload phases, a
    region of the circuit being rebuilt — can decay any fixed plan into an
    all-escrow regime where every event pays the cross-shard path.  This
    policy accumulates the realised routing since the current plan was
    derived and asks for a re-derivation when either quality signal crosses
    its configured threshold:

    * **escrow fraction** — events routed cross-shard over all events; high
      values mean the partition no longer follows the stream's weak cuts;
    * **imbalance** — the busiest shard's share of intra-shard events over
      the ideal ``1 / num_shards`` share; high values mean one shard's
      pipeline serialises the batch even when escrow traffic is low.

    Both triggers stay disarmed until ``min_events`` events accumulate under
    the plan, so a few unlucky batches right after a (re)plan cannot thrash
    the partition.  The driver additionally *doubles* ``min_events`` after
    every adaptive replan (exponential back-off): a workload whose intrinsic
    escrow floor exceeds the threshold — no partition can do better — then
    replans at most ``log2(stream length / min_events)`` times instead of
    once per arming window.  Replanning never changes results — the oracle
    guarantee is plan-independent — only routing efficiency, so the policy
    is free to be heuristic.
    """

    escrow_fraction: Optional[float] = None
    imbalance: Optional[float] = None
    min_events: int = 256
    #: Accumulators since the current plan (all events / escrow events /
    #: per-shard intra events).
    events: int = 0
    escrow_events: int = 0
    shard_events: List[int] = field(default_factory=list)

    @classmethod
    def from_config(cls, config: InGrassConfig, num_shards: int, *,
                    min_events: Optional[int] = None) -> "ReplanPolicy":
        """Build the policy for one freshly derived plan.

        ``min_events`` overrides the config's arming threshold — the driver
        passes its current back-off value there.
        """
        return cls(
            escrow_fraction=config.replan_escrow_fraction,
            imbalance=config.replan_imbalance,
            min_events=(min_events if min_events is not None
                        else config.replan_min_events),
            shard_events=[0] * num_shards,
        )

    @property
    def enabled(self) -> bool:
        """Whether any trigger is configured."""
        return self.escrow_fraction is not None or self.imbalance is not None

    def observe(self, shard_events: Sequence[int], escrow_events: int) -> None:
        """Fold one batch's realised routing into the accumulators."""
        for shard, count in enumerate(shard_events):
            self.shard_events[shard] += int(count)
        self.escrow_events += int(escrow_events)
        self.events += int(sum(shard_events)) + int(escrow_events)

    def realised_escrow_fraction(self) -> float:
        """Cross-shard share of all events since the current plan."""
        if self.events == 0:
            return 0.0
        return self.escrow_events / self.events

    def realised_imbalance(self) -> float:
        """Busiest shard's intra-shard share over the ideal equal share."""
        intra = sum(self.shard_events)
        if intra == 0 or len(self.shard_events) <= 1:
            return 1.0
        return max(self.shard_events) * len(self.shard_events) / intra

    def should_replan(self) -> Optional[str]:
        """Return the trigger reason once a threshold is crossed, else ``None``."""
        if not self.enabled or self.events < self.min_events:
            return None
        if self.escrow_fraction is not None:
            fraction = self.realised_escrow_fraction()
            if fraction > self.escrow_fraction:
                return (f"escrow fraction {fraction:.3f} exceeded "
                        f"{self.escrow_fraction:.3f} over {self.events} events")
        if self.imbalance is not None:
            factor = self.realised_imbalance()
            if factor > self.imbalance:
                return (f"shard event imbalance {factor:.2f}x exceeded "
                        f"{self.imbalance:.2f}x over {self.events} events")
        return None


# --------------------------------------------------------------------------- #
# Scoped filter views
# --------------------------------------------------------------------------- #
class ShardScopedFilter(SimilarityFilter):
    """A :class:`SimilarityFilter` view owning one shard's slice of the map.

    The filter indexes only the sparsifier edges its shard owns — both
    endpoints inside the shard, or both endpoints in *different* shards for
    the escrow view (``shard_id=ESCROW``).  Because shards are unions of
    partition-level clusters and clusters nest, a cluster pair at the
    filtering level is realised either entirely by one shard's edges or
    entirely by cross-shard edges, so each scoped view holds whole buckets:
    queries against the owning view return exactly what the global filter
    would.
    """

    def __init__(self, sparsifier: Graph, hierarchy: ClusterHierarchy, filtering_level: int,
                 *, plan: ShardPlan, shard_id: int,
                 redistribute_intra_cluster_weight: bool = True) -> None:
        # Scope attributes must exist before the base constructor scans the
        # sparsifier through the overridden _register_edge.
        self._plan = plan
        self._shard_id = int(shard_id)
        super().__init__(sparsifier, hierarchy, filtering_level,
                         redistribute_intra_cluster_weight=redistribute_intra_cluster_weight)

    @property
    def shard_id(self) -> int:
        """The shard this view belongs to (:data:`ESCROW` for the escrow)."""
        return self._shard_id

    def owns_edge(self, u: int, v: int) -> bool:
        """Whether this view indexes sparsifier edge ``(u, v)``."""
        return self._plan.shard_of_edge(u, v) == self._shard_id

    def _register_edge(self, u: int, v: int) -> None:
        if self.owns_edge(u, v):
            super()._register_edge(u, v)

    def _unregister_edge(self, u: int, v: int) -> None:
        if self.owns_edge(u, v):
            super()._unregister_edge(u, v)

    def _scope_mask(self, us: np.ndarray, vs: np.ndarray) -> Optional[np.ndarray]:
        """Vectorised :meth:`owns_edge` for the shared bulk re-keying kernels."""
        return self._plan.shard_of_pairs(us, vs) == self._shard_id


class CompositeSimilarityFilter:
    """Routes the full similarity-filter protocol across the shard views.

    The global stages of the driver — deletions, weight changes, the κ guard,
    hierarchy maintenance — run the existing kernels unchanged; this object
    stands in for their single ``SimilarityFilter`` and forwards every
    operation to the scoped view owning the touched edge.  Each bucket of
    the conceptual global map lives in exactly one view (see
    :class:`ShardScopedFilter`), so routed queries, weight re-homing and the
    splice re-keying protocol return byte-identical results to the unsharded
    filter.  Every public call first revalidates the shard plan so a
    cross-shard cluster fusion can never route through a stale partition.
    """

    def __init__(self, driver: "ShardedSparsifier") -> None:
        self._driver = driver

    # -- plumbing ------------------------------------------------------- #
    def _fresh_views(self) -> List[ShardScopedFilter]:
        self._driver._replan_if_stale()
        return self._driver._filter_views()

    def _owner(self, u: int, v: int) -> ShardScopedFilter:
        self._driver._replan_if_stale()
        return self._driver._owner_view(u, v)

    @property
    def filtering_level(self) -> int:
        """Filtering level shared by every view."""
        return self._driver._filter_views()[0].filtering_level

    @property
    def sparsifier(self) -> Graph:
        """The (shared) sparsifier being maintained."""
        return self._driver._filter_views()[0].sparsifier

    def state_summary(self) -> dict:
        """Aggregate the per-shard view summaries into one global summary."""
        views = self._driver._filter_views()
        summaries = [view.state_summary() for view in views]
        return {
            "filtering_level": summaries[0]["filtering_level"],
            "cluster_pairs": sum(s["cluster_pairs"] for s in summaries),
            "intra_cluster_buckets": sum(s["intra_cluster_buckets"] for s in summaries),
            "registered_edges": sum(s["registered_edges"] for s in summaries),
            "synced_labels_version": summaries[0]["synced_labels_version"],
            "num_shards": len(views),
        }

    # -- SimilarityFilter protocol -------------------------------------- #
    def notify_edge_added(self, u: int, v: int) -> None:
        self._owner(u, v).notify_edge_added(u, v)

    def notify_edge_removed(self, u: int, v: int) -> None:
        self._owner(u, v).notify_edge_removed(u, v)

    def reassign_weight(self, u: int, v: int, weight: float) -> bool:
        return self._owner(u, v).reassign_weight(u, v, weight)

    def connects_clusters(self, p: int, q: int) -> bool:
        return self._owner(p, q).connects_clusters(p, q)

    def unregister_incident_edges(self, nodes) -> List[Edge]:
        views = self._fresh_views()
        us, vs = views[0].incident_edge_arrays(nodes)
        self._route_pairs(us, vs, register=False)
        return list(zip(us.tolist(), vs.tolist()))

    def register_edges(self, edges: Sequence[Edge]) -> None:
        if not len(edges):
            return
        self._driver._replan_if_stale()
        pairs = np.asarray(edges, dtype=np.int64)
        us = np.minimum(pairs[:, 0], pairs[:, 1])
        vs = np.maximum(pairs[:, 0], pairs[:, 1])
        # Routing is recomputed here (not reused from the unregister half of
        # the protocol): a plan patch between the two halves must re-home the
        # edges under the *current* partition.
        self._route_pairs(us, vs, register=True)

    def _route_pairs(self, us: np.ndarray, vs: np.ndarray, *, register: bool) -> None:
        """Split canonical pairs by owning shard and apply one bulk call each.

        Each scoped view re-checks ownership through its own scope mask, so
        this grouping is purely a fan-out optimisation — the per-view bulk
        kernels remain the single shared implementation of re-keying.
        """
        if us.size == 0:
            return
        plan = self._driver._plan
        assert plan is not None
        shards = plan.shard_of_pairs(us, vs)
        for shard in np.unique(shards).tolist():
            mask = shards == shard
            view = self._driver._context_for(int(shard)).filter
            if register:
                view._register_pairs(us[mask], vs[mask])
            else:
                view._unregister_pairs(us[mask], vs[mask])

    def mark_synced(self) -> None:
        for view in self._driver._filter_views():
            view.mark_synced()

    def in_sync_with_hierarchy(self) -> bool:
        return all(view.in_sync_with_hierarchy() for view in self._driver._filter_views())

    def resync(self) -> None:
        for view in self._fresh_views():
            view.resync()


# --------------------------------------------------------------------------- #
# Shard contexts and the driver
# --------------------------------------------------------------------------- #
@dataclass
class ShardContext:
    """One shard's slice of the update stack."""

    shard_id: int
    filter: ShardScopedFilter
    maintainer: Optional[HierarchyMaintainer]


@dataclass
class ShardBatchReport:
    """How one batch (insertion or removal phase) was executed across the shards."""

    #: ``"serial"``, ``"threads"`` or ``"processes"``.
    mode: str
    #: Events routed to each shard (index = shard id).
    shard_events: List[int] = field(default_factory=list)
    #: Cross-shard events drained through the escrow stage.
    escrow_events: int = 0
    #: Shard plans re-derived so far over the driver's lifetime (all causes).
    replans: int = 0
    #: Subset of :attr:`replans` triggered by the adaptive quality policy
    #: (:class:`ReplanPolicy`) rather than by invariant violations.
    adaptive_replans: int = 0
    #: Wall-clock of the per-shard drop stage of a removal batch (the region
    #: that runs concurrently in ``threads`` mode); 0 for insertion batches.
    drop_seconds: float = 0.0


@dataclass
class ShardedUpdateResult(UpdateResult):
    """:class:`UpdateResult` plus the shard execution report."""

    shard_report: Optional[ShardBatchReport] = None


@dataclass
class ShardedRemovalResult(RemovalResult):
    """:class:`~repro.core.update.RemovalResult` plus the shard execution report."""

    shard_report: Optional[ShardBatchReport] = None


class ShardedSparsifier(InGrassSparsifier):
    """Shard-aware :class:`InGrassSparsifier` (see the module docstring).

    Drop-in replacement: the public API, the history records and — by the
    oracle guarantee — every produced sparsifier are identical to the base
    driver's; only the execution strategy of the insertion engine changes.
    Configure through ``InGrassConfig.num_shards`` / ``executor`` and build
    via :meth:`InGrassSparsifier.from_config`.
    """

    def __init__(self, config: Optional[InGrassConfig] = None) -> None:
        super().__init__(config)
        self._plan: Optional[ShardPlan] = None
        self._contexts: Optional[List[ShardContext]] = None
        self._escrow: Optional[ShardContext] = None
        self._composite: Optional[CompositeSimilarityFilter] = None
        self._plan_version = -1
        self._filter_level = 0
        self._replans = 0
        self._adaptive_replans = 0
        self._plan_patches = 0
        self._replan_backoff: Optional[int] = None
        self._replan_policy: Optional[ReplanPolicy] = None
        self._single_shard_logged = False
        self._executor: Optional[ThreadPoolExecutor] = None
        self._retired_stats = MaintenanceStats()
        # Process-executor state.  _mirror_epoch advances whenever shard-owned
        # sparsifier state changed outside the worker protocol, so the next
        # dispatch knows to re-ship shard state; _worker_sync records, per
        # shard, the (mirror epoch, hierarchy version) its worker last
        # mirrored.  _process_failed latches the serial fallback: once the
        # backend failed to start or lost a worker, this driver never retries
        # it (satellite fix — degrade with a logged warning, don't crash).
        self._process_executor: Optional[ProcessShardExecutor] = None
        self._process_failed = False
        self._mirror_epoch = 0
        self._worker_sync: Dict[int, Tuple[int, int]] = {}

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #
    @property
    def plan(self) -> ShardPlan:
        """The current node partition."""
        self._require_setup()
        self._ensure_contexts()
        assert self._plan is not None
        return self._plan

    @property
    def num_shards(self) -> int:
        """Realised shard count (≤ ``config.num_shards``)."""
        return self.plan.num_shards

    @property
    def contexts(self) -> List[ShardContext]:
        """Per-shard contexts (index = shard id)."""
        self._require_setup()
        self._ensure_contexts()
        assert self._contexts is not None
        return list(self._contexts)

    @property
    def escrow(self) -> ShardContext:
        """The global escrow context handling cross-shard edges."""
        self._require_setup()
        self._ensure_contexts()
        assert self._escrow is not None
        return self._escrow

    @property
    def replans(self) -> int:
        """Shard plans re-derived over the driver's lifetime (all causes)."""
        return self._replans

    @property
    def adaptive_replans(self) -> int:
        """Replans triggered by the quality policy (escrow fraction / imbalance)."""
        return self._adaptive_replans

    @property
    def plan_patches(self) -> int:
        """Local plan repairs after cross-shard filtering-level fusions."""
        return self._plan_patches

    @property
    def replan_policy(self) -> Optional[ReplanPolicy]:
        """The live replanning policy of the current plan (``None`` before setup)."""
        return self._replan_policy

    @property
    def maintainer(self) -> Optional[HierarchyMaintainer]:
        """The maintainer of the global (escrow) stage, maintain mode only."""
        if self._setup is None or self.config.hierarchy_mode != "maintain":
            return None
        return self._ensure_maintainer()

    @property
    def maintenance_stats(self) -> MaintenanceStats:
        """Aggregated maintenance counters across all shard contexts."""
        total = self._retired_stats.snapshot()
        for context in (self._contexts or []) + ([self._escrow] if self._escrow else []):
            if context.maintainer is not None:
                total.merge(context.maintainer.stats)
        return total

    # ------------------------------------------------------------------ #
    # Plan and context lifecycle
    # ------------------------------------------------------------------ #
    def setup(self, *args, **kwargs):
        result = super().setup(*args, **kwargs)
        self._reset_sharding()
        return result

    def refresh_setup(self):
        result = super().refresh_setup()
        self._reset_sharding()
        return result

    def _reset_sharding(self) -> None:
        # A (re)setup starts a fresh measurement epoch, matching the base
        # driver's behaviour of discarding the old maintainer's counters —
        # retirement (keeping them) is only for mid-stream replans.
        self._retired_stats = MaintenanceStats()
        self._shutdown_pool()
        self._shutdown_workers()
        self._plan = None
        self._contexts = None
        self._escrow = None
        self._composite = None
        self._plan_version = -1
        self._replan_policy = None
        self._replan_backoff = None
        self._single_shard_logged = False

    def _shutdown_pool(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    def _shutdown_workers(self) -> None:
        """Close the worker processes and invalidate every shipped mirror."""
        if self._process_executor is not None:
            self._process_executor.close()
            self._process_executor = None
        self._worker_sync = {}
        self._mirror_epoch += 1

    def __del__(self) -> None:  # pragma: no cover - interpreter-driven
        executor = getattr(self, "_executor", None)
        if executor is not None:
            executor.shutdown(wait=False)
        workers = getattr(self, "_process_executor", None)
        if workers is not None:
            workers.close()

    def _retire_context_stats(self) -> None:
        """Fold live maintainer counters into the retirement accumulator."""
        for context in (self._contexts or []) + ([self._escrow] if self._escrow else []):
            if context.maintainer is not None:
                self._retired_stats.merge(context.maintainer.stats)

    def _ensure_contexts(self) -> None:
        if self._contexts is not None:
            return
        assert self._setup is not None and self._sparsifier is not None
        level = _select_filtering_level(self._setup, self._resolved_config(),
                                        self._target_condition)
        hierarchy = self._setup.hierarchy
        # Checkpoint restore pre-seeds self._plan so the restored driver keeps
        # the exact partition it was saved under (replans null the plan first,
        # so mid-stream re-derivations still happen); normally it is None here
        # and a fresh plan is derived.
        plan = self._plan
        if plan is None:
            plan = ShardPlan.from_hierarchy(
                hierarchy, self.config.num_shards, min_level=level,
                sparsifier=self._graph if self._graph is not None else self._sparsifier,
            )
        self._plan = plan
        # Staleness is tracked at the *filtering* level: that is where
        # shard-disjoint buckets live, so only its fusions invalidate a plan.
        self._filter_level = level
        self._plan_version = hierarchy.level_labels_version(level)
        maintain = self.config.hierarchy_mode == "maintain"

        def make_context(shard_id: int) -> ShardContext:
            scoped = ShardScopedFilter(
                self._sparsifier, hierarchy, level, plan=plan, shard_id=shard_id,
                redistribute_intra_cluster_weight=self.config.redistribute_intra_cluster_weight,
            )
            maintainer = (self._setup.make_maintainer(self._sparsifier, self.config)
                          if maintain else None)
            return ShardContext(shard_id=shard_id, filter=scoped, maintainer=maintainer)

        self._contexts = [make_context(shard) for shard in range(plan.num_shards)]
        self._escrow = make_context(ESCROW)
        if self._composite is None:
            self._composite = CompositeSimilarityFilter(self)
        self._replan_policy = ReplanPolicy.from_config(self.config, plan.num_shards,
                                                       min_events=self._replan_backoff)
        self._single_shard_logged = False
        if plan.num_shards < self.config.num_shards:
            logger.warning(
                "shard plan realised %d of %d requested shards: the partition "
                "level offers too few clusters",
                plan.num_shards, self.config.num_shards,
            )

    def _filter_views(self) -> List[ShardScopedFilter]:
        self._ensure_contexts()
        assert self._contexts is not None and self._escrow is not None
        return [context.filter for context in self._contexts] + [self._escrow.filter]

    def _owner_view(self, u: int, v: int) -> ShardScopedFilter:
        assert self._plan is not None and self._contexts is not None and self._escrow is not None
        shard = self._plan.shard_of_edge(u, v)
        return (self._escrow if shard == ESCROW else self._contexts[shard]).filter

    def _context_for(self, shard: int) -> ShardContext:
        assert self._contexts is not None and self._escrow is not None
        return self._escrow if shard == ESCROW else self._contexts[shard]

    def _replan_if_stale(self) -> None:
        """Repair the plan after a cross-shard cluster fusion.

        Cheap in the common case (one integer compare against the filtering
        level's label version); an actual invariant violation — escrow-edge
        maintenance fusing two filtering-level clusters from different
        shards — is repaired *locally* by :meth:`_patch_plan`: the straddling
        cluster's minority nodes move to the majority shard and only their
        incident edges re-key between the scoped views, a cost proportional
        to the fused neighbourhood rather than the full scoped-filter
        rebuild a re-partition would pay.  Full re-derivations are reserved
        for the adaptive quality policy (:class:`ReplanPolicy`), which fires
        when accumulated routing statistics say the whole partition has
        decayed.
        """
        if self._plan is None or self._setup is None:
            return
        hierarchy = self._setup.hierarchy
        version = hierarchy.level_labels_version(self._filter_level)
        if version == self._plan_version:
            return
        self._plan_version = version
        if self._plan.is_consistent(hierarchy, self._filter_level):
            return
        self._patch_plan()

    def _patch_plan(self) -> None:
        """Re-home every straddling filtering-level cluster onto one shard.

        The oracle guarantee needs exactly one invariant from the plan: no
        *filtering-level* cluster straddles shards (that is what makes the
        scoped views' buckets tile the global filter map).  A maintenance
        fusion across shards breaks it for the fused cluster only, so the
        repair is local: assign the cluster's nodes to the shard already
        holding most of them (ties to the lower shard id — deterministic)
        and re-key the moved nodes' incident sparsifier edges to their new
        owner views.  Bucket *content* moves between views; every consumer
        of bucket state is content-canonical (see
        :meth:`~repro.core.filtering.SimilarityFilter._representative`), so
        results are unchanged — this is purely an execution-cost repair.
        """
        assert (self._plan is not None and self._setup is not None
                and self._sparsifier is not None)
        hierarchy = self._setup.hierarchy
        plan = self._plan
        level = hierarchy.level(self._filter_level)
        labels = level.labels
        node_shard = plan.node_shard
        lowest = np.full(level.num_clusters, np.iinfo(np.int64).max, dtype=np.int64)
        highest = np.full(level.num_clusters, -1, dtype=np.int64)
        np.minimum.at(lowest, labels, node_shard)
        np.maximum.at(highest, labels, node_shard)
        offenders = np.flatnonzero((highest >= 0) & (lowest != highest))
        sparsifier = self._sparsifier
        for cluster in offenders.tolist():
            members = hierarchy.cluster_members(self._filter_level, cluster)
            shards, counts = np.unique(node_shard[members], return_counts=True)
            target = int(shards[int(np.argmax(counts))])
            movers = members[node_shard[members] != target]
            if not movers.size:
                continue
            edges: Dict[Edge, None] = {}
            for node in movers.tolist():
                for neighbor in sparsifier.neighbors(node):
                    edges[canonical_edge(node, int(neighbor))] = None
            for u, v in edges:
                self._owner_view(u, v).notify_edge_removed(u, v)
            node_shard[movers] = target
            for u, v in edges:
                self._owner_view(u, v).notify_edge_added(u, v)
        self._plan_patches += 1
        # node_shard mutated in place: every shipped worker plan is now stale.
        self._mirror_epoch += 1

    def _rebuild_contexts(self) -> None:
        """Re-derive the plan and rebuild every shard context (a replan).

        The retiring escrow maintainer's un-drained splice neighbourhood is
        adopted by its replacement so the κ guard's round-0 candidate pool —
        part of the oracle guarantee — is independent of when replans happen;
        maintenance counters are folded into the retirement accumulator the
        same way.
        """
        pending_splices = np.zeros(0, dtype=np.int64)
        if self._escrow is not None and self._escrow.maintainer is not None:
            pending_splices = self._escrow.maintainer.drain_splice_neighbourhood()
        self._retire_context_stats()
        # The pool is sized to the plan's shard count; a re-derived plan may
        # realise a different one, so let _pool() rebuild it lazily.  Worker
        # processes are keyed by shard id against the old plan — close them
        # too; the next processes batch respawns and re-ships.
        self._shutdown_pool()
        self._shutdown_workers()
        self._contexts = None
        self._escrow = None
        self._plan = None
        self._ensure_contexts()
        if pending_splices.size and self._escrow is not None \
                and self._escrow.maintainer is not None:
            self._escrow.maintainer.note_spliced_nodes(pending_splices)

    def _adaptive_replan(self, reason: str) -> None:
        """Re-derive the plan because a quality trigger fired.

        The arming threshold of the next policy doubles (exponential
        back-off): if the freshly derived plan still trips the trigger, the
        workload's intrinsic cross-shard floor is above the threshold and
        replanning cannot help — the back-off bounds the total adaptive
        replans of any stream at ``log2(events / replan_min_events)``.
        """
        self._replans += 1
        self._adaptive_replans += 1
        current = (self._replan_backoff if self._replan_backoff is not None
                   else self.config.replan_min_events)
        self._replan_backoff = current * 2
        logger.info("adaptive shard replan #%d: %s (next trigger arms after %d events)",
                    self._adaptive_replans, reason, self._replan_backoff)
        self._rebuild_contexts()

    def _observe_routing(self, shard_events: Sequence[int], escrow_events: int) -> None:
        """Feed one batch's realised routing to the replanning policy.

        Called once per executed batch phase (insertions and removals each
        route independently), *after* the phase completes so a triggered
        replan never changes routing mid-batch.
        """
        policy = self._replan_policy
        if policy is None or not policy.enabled:
            return
        policy.observe(shard_events, escrow_events)
        reason = policy.should_replan()
        if reason is not None:
            self._adaptive_replan(reason)

    # ------------------------------------------------------------------ #
    # Overridden driver hooks: global stages route through the composite
    # ------------------------------------------------------------------ #
    def _ensure_filter(self):  # type: ignore[override]
        self._require_setup()
        self._ensure_contexts()
        self._replan_if_stale()
        assert self._composite is not None
        self._filter = self._composite  # _record_iteration reads filtering_level
        return self._composite

    def _ensure_maintainer(self) -> Optional[HierarchyMaintainer]:  # type: ignore[override]
        if self.config.hierarchy_mode != "maintain":
            return None
        self._require_setup()
        self._ensure_contexts()
        assert self._escrow is not None
        return self._escrow.maintainer

    # ------------------------------------------------------------------ #
    # Sharded insertion engine
    # ------------------------------------------------------------------ #
    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            assert self._plan is not None
            self._executor = ThreadPoolExecutor(
                max_workers=self._plan.num_shards,
                thread_name_prefix="ingrass-shard",
            )
        return self._executor

    # ------------------------------------------------------------------ #
    # Process executor plumbing
    # ------------------------------------------------------------------ #
    def _ensure_process_executor(self) -> Optional[ProcessShardExecutor]:
        """Start (or return) the worker-process executor; None if unavailable."""
        if self._process_failed:
            return None
        if self._process_executor is None:
            try:
                self._process_executor = ProcessShardExecutor()
            except ExecutorUnavailableError as exc:
                self._disable_process_executor(exc)
                return None
        return self._process_executor

    def _disable_process_executor(self, exc: BaseException) -> None:
        """Latch the serial fallback after a transport/start failure.

        The degraded driver keeps working — every worker task leaves the
        parent's state untouched until its reply is replayed, so a failed
        dispatch is simply re-run in-parent — it just stops paying the
        process-shipping overhead for a backend that cannot deliver.
        """
        logger.warning(
            "processes executor unavailable (%s): falling back to serial "
            "shard execution for the rest of this driver's lifetime", exc,
        )
        self._process_failed = True
        if self._process_executor is not None:
            try:
                self._process_executor.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
            self._process_executor = None
        self._worker_sync = {}

    def _worker_state(self, shard: int) -> dict:
        """Snapshot one shard's slice of driver state for shipping to a worker.

        Only shard-owned sparsifier edges travel: the worker's filter gates
        registration by ownership anyway, and update/drop kernels for an
        intra-shard batch can only ever observe shard-interior edges, so the
        slice reproduces the full driver's decisions bit-exactly.
        """
        assert self._plan is not None and self._sparsifier is not None
        assert self._setup is not None
        plan = self._plan
        us, vs, ws = self._sparsifier.edge_arrays()
        if us.shape[0]:
            mask = plan.shard_of_pairs(us, vs) == shard
            us, vs, ws = us[mask].copy(), vs[mask].copy(), ws[mask].copy()
        state = self._setup.hierarchy.checkpoint_state()
        return {
            "num_nodes": self._sparsifier.num_nodes,
            "edge_us": us, "edge_vs": vs, "edge_ws": ws,
            "embedding": state["embedding"],
            "cluster_diameters": state["cluster_diameters"],
            "diameter_thresholds": state["diameter_thresholds"],
            "filtering_level": self._filter_level,
            "plan": plan,
            "shard_id": shard,
            "redistribute": self.config.redistribute_intra_cluster_weight,
        }

    def _dispatch_to_workers(self, kind: str,
                             jobs: Sequence[Tuple[ShardContext, Any]],
                             payloads: Sequence[dict]) -> Optional[List[Any]]:
        """Ship stale shard states + one task per job; return replies or None.

        Requests interleave ``state`` refreshes (only for shards whose mirror
        predates the current ``(mirror_epoch, hierarchy.version)`` token) with
        the actual tasks — the executor pipelines everything per worker before
        collecting replies.  Transport failure latches the serial fallback and
        returns None so the caller re-runs in-parent (safe: worker tasks never
        mutate parent state until their reply is replayed); worker *task*
        exceptions propagate (they would have raised in-parent too).
        """
        executor = self._ensure_process_executor()
        if executor is None:
            return None
        assert self._setup is not None
        token = (self._mirror_epoch, self._setup.hierarchy.version)
        requests: List[Tuple[int, str, Any]] = []
        refreshed: List[int] = []
        for context, _item in jobs:
            shard = context.shard_id
            if self._worker_sync.get(shard) != token:
                requests.append((shard, "state", self._worker_state(shard)))
                refreshed.append(shard)
                # Mark at ship time so a shard appearing twice in `jobs`
                # (never happens today — one job per shard) ships once.
                self._worker_sync[shard] = token
        for (context, _item), payload in zip(jobs, payloads):
            requests.append((context.shard_id, kind, payload))
        try:
            replies = executor.run_tasks(requests)
        except ExecutorUnavailableError as exc:
            for shard in refreshed:
                self._worker_sync.pop(shard, None)
            self._disable_process_executor(exc)
            return None
        return replies[len(replies) - len(jobs):]

    def _replay_update_diff(self, context: ShardContext, reply: dict) -> None:
        """Apply a worker's update edge-diff to the shared sparsifier.

        Replay order matches in-place execution: run_update only appends new
        edges and merges weights into existing ones, so (changed weights,
        appended tail) reproduces the exact post-batch ``_edges`` dict —
        including insertion order, which edge_arrays() canonicalises.
        """
        sparsifier = self._sparsifier
        assert sparsifier is not None
        # run_update resyncs the filter at entry; mirror that here so the
        # parent view buckets the batch's additions under current labels.
        context.filter.resync()
        cus, cvs, cws = reply["changed"]
        for u, v, w in zip(cus.tolist(), cvs.tolist(), cws.tolist()):
            sparsifier.set_weight(u, v, w)
        aus, avs, aws = reply["added"]
        for u, v, w in zip(aus.tolist(), avs.tolist(), aws.tolist()):
            sparsifier.add_edge_unchecked(u, v, w)
        context.filter.notify_edges_added(aus, avs)

    def _replay_drop_diff(self, context: ShardContext, reply: dict) -> None:
        """Apply a worker's drop-stage edge-diff to the shared sparsifier."""
        sparsifier = self._sparsifier
        assert sparsifier is not None
        for _position, (u, v, _w) in reply["result"].removed:
            sparsifier.remove_edge(u, v)
            context.filter.notify_edge_removed(u, v)
        for u, v, w in reply["changed"]:
            sparsifier.set_weight(u, v, w)
        for u, v, w in reply["added"]:  # pragma: no cover - drop never adds
            sparsifier.add_edge_unchecked(u, v, w)
            context.filter.notify_edge_added(u, v)

    def _run_update_jobs_in_workers(
        self, jobs: Sequence[Tuple[ShardContext, np.ndarray]],
        sub_config: InGrassConfig, median: Optional[float],
        scored: Dict[int, DistortionBatch],
    ) -> Optional[List[UpdateResult]]:
        """Run the per-shard update kernels on worker processes.

        Returns the per-job UpdateResults (diffs already replayed into the
        shared sparsifier), or None when the backend is unavailable so the
        caller falls through to the in-parent paths.
        """
        payloads = [
            {"triples": sub, "config": sub_config,
             "target": self._target_condition, "median": median,
             "scored": scored.get(id(sub))}
            for _context, sub in jobs
        ]
        replies = self._dispatch_to_workers("update", jobs, payloads)
        if replies is None:
            return None
        results: List[UpdateResult] = []
        for (context, _sub), reply in zip(jobs, replies):
            self._replay_update_diff(context, reply)
            results.append(reply["result"])
        return results

    def _run_drop_jobs_in_workers(
        self, jobs: Sequence[Tuple[ShardContext, List[Tuple[int, Edge]]]],
        graph_weights: dict, config: InGrassConfig,
    ) -> Optional[List[RemovalStage1Result]]:
        """Run the per-shard removal drop stages on worker processes."""
        payloads = [
            {"items": items,
             "graph_weights": slice_graph_weights(items, graph_weights),
             "config": config}
            for _context, items in jobs
        ]
        replies = self._dispatch_to_workers("drop", jobs, payloads)
        if replies is None:
            return None
        stages: List[RemovalStage1Result] = []
        for (context, _items), reply in zip(jobs, replies):
            self._replay_drop_diff(context, reply)
            stages.append(reply["result"])
        return stages

    def _apply_insertions(self, new_edges: Sequence[WeightedEdge]) -> UpdateResult:
        """Insertion phase: route per shard, filter concurrently, drain escrow."""
        graph, sparsifier, setup = self._graph, self._sparsifier, self._setup
        assert graph is not None and sparsifier is not None and setup is not None
        self._ensure_contexts()
        self._replan_if_stale()
        graph.add_edges(new_edges, merge="add")
        return self.run_insertion_engine(new_edges)

    def run_insertion_engine(self, new_edges: Sequence[WeightedEdge]) -> ShardedUpdateResult:
        """Run the sparsifier-side insertion engine (no tracked-graph bookkeeping).

        This is the stage the shard-scaling benchmark times: everything
        :func:`~repro.core.update.run_update` does — scoring, similarity
        filtering, hierarchy maintenance — executed per shard.  The tracked
        graph is *not* touched; :meth:`update` callers never need this
        directly.
        """
        sparsifier, setup = self._sparsifier, self._setup
        config = self._resolved_config()
        assert sparsifier is not None and setup is not None
        self._ensure_contexts()
        self._replan_if_stale()
        assert self._plan is not None and self._contexts is not None and self._escrow is not None
        timer = Timer().start()
        plan = self._plan

        us, vs, ws = validate_new_edge_arrays(sparsifier, new_edges)
        m = int(us.shape[0])
        # The contexts materialised above are keyed by the pinned level.
        level = self._filter_level

        # Full-batch semantics must survive the split: the engine choice and
        # the relative-threshold median are resolved on the whole stream, so
        # every sub-batch decides exactly as the unsharded oracle would.
        engine = "vectorized" if config.use_vectorized(m) else "scalar"
        sub_config = replace(config, batch_mode=engine, hierarchy_mode="rebuild")
        # Note on max_fill_fraction: the cap is enforced per sub-batch (each
        # run_update call budgets from its own length), so a capped sharded
        # batch admits at most one rounding unit more per shard than the
        # unsharded driver would.  Bit-exact parity is guaranteed for the
        # default (uncapped) configuration.

        triples = np.column_stack([us.astype(float), vs.astype(float), ws]) if m else np.zeros((0, 3))
        shard_ids = plan.shard_of_pairs(us, vs) if m else np.zeros(0, dtype=np.int64)

        jobs: List[Tuple[ShardContext, np.ndarray]] = []
        shard_events = [0] * plan.num_shards
        for shard in range(plan.num_shards):
            mask = shard_ids == shard
            count = int(mask.sum())
            shard_events[shard] = count
            if count:
                jobs.append((self._contexts[shard], triples[mask]))
        escrow_triples = triples[shard_ids == ESCROW]
        escrow_events = int(escrow_triples.shape[0])
        use_threads = config.use_shard_threads(m, len(jobs), os.cpu_count())

        # Threshold pipeline: the relative distortion cut is defined against
        # the *whole stream's* median, so a barrier is needed between scoring
        # and filtering.  On the vectorised engine each slice (shards +
        # escrow) is scored exactly once — concurrently in threads mode —
        # the median barrier is one cheap concatenation, and the scored
        # slices feed straight into the filter stage below (run_update skips
        # its own scoring pass).  The scalar engine (sub-threshold batches
        # only) keeps its per-edge estimates and pays one extra global
        # scoring pass for the median — negligible at those sizes.
        median: Optional[float] = None
        scored: Dict[int, DistortionBatch] = {}
        if config.distortion_threshold > 0 and m and engine == "vectorized":
            def score_slice(sub: np.ndarray) -> DistortionBatch:
                sub_us = sub[:, 0].astype(np.int64)
                sub_vs = sub[:, 1].astype(np.int64)
                return score_edge_arrays(setup.embedding, sub_us, sub_vs,
                                         np.ascontiguousarray(sub[:, 2]))

            slices = [sub for _, sub in jobs] + [escrow_triples]
            if use_threads and len(jobs) > 1:
                futures = [self._pool().submit(score_slice, sub) for sub in slices]
                batches = [future.result() for future in futures]
            else:
                batches = [score_slice(sub) for sub in slices]
            for index, batch in enumerate(batches[:-1]):
                scored[id(jobs[index][1])] = batch
            scored[id(escrow_triples)] = batches[-1]
            median = float(np.median(np.concatenate([b.distortions for b in batches])))
        elif config.distortion_threshold > 0 and m:
            median = float(np.median(score_edge_arrays(setup.embedding, us, vs, ws).distortions))

        def run_sub(context: ShardContext, sub: np.ndarray) -> UpdateResult:
            return run_update(
                sparsifier, setup, sub, sub_config,
                target_condition_number=self._target_condition,
                similarity_filter=context.filter, maintainer=None,
                distortion_median=median, scored_batch=scored.get(id(sub)),
            )

        use_processes = config.use_shard_processes(len(jobs)) and not self._process_failed
        shard_results: Optional[List[UpdateResult]] = None
        if use_processes:
            shard_results = self._run_update_jobs_in_workers(
                jobs, sub_config, median, scored)
        if shard_results is not None:
            mode = "processes"
        elif use_threads:
            futures = [self._pool().submit(run_sub, context, sub) for context, sub in jobs]
            shard_results = [future.result() for future in futures]
            mode = "threads"
        else:
            shard_results = [run_sub(context, sub) for context, sub in jobs]
            mode = "serial"
        if mode != "processes" and config.executor == "processes":
            # The shard kernels ran in-parent, so every shipped mirror missed
            # this batch's mutations — force a re-ship before the next one.
            self._mirror_epoch += 1
        ordered: List[Tuple[ShardContext, UpdateResult]] = list(
            zip([context for context, _ in jobs], shard_results))

        if escrow_events or not ordered:
            ordered.append((self._escrow, run_sub(self._escrow, escrow_triples)))

        hierarchy_merges = self._replay_maintenance(ordered, us, vs)
        result = self._merge_results(ordered, level)
        result.hierarchy_merges = hierarchy_merges
        result.shard_report = ShardBatchReport(
            mode=mode,
            shard_events=shard_events,
            escrow_events=escrow_events,
            replans=self._replans,
            adaptive_replans=self._adaptive_replans,
        )
        timer.stop()
        result.update_seconds = timer.elapsed
        self._observe_routing(shard_events, escrow_events)
        return result

    # ------------------------------------------------------------------ #
    # Sharded removal engine
    # ------------------------------------------------------------------ #
    def _run_removal(self, removed_with_weights: Sequence[WeightedEdge]) -> RemovalResult:
        """Removal pipeline with the drop stage executed per shard.

        Stage 1 — sparsifier-edge drop, cluster-pair bucket invalidation and
        excess-weight re-homing — touches, for an intra-shard edge, only the
        owning shard's :class:`ShardScopedFilter` slice and shard-interior
        sparsifier edges, so the per-shard drop stages commute and run
        serially or on the thread pool; cross-shard deletions drain through
        the escrow context the same way.  Everything inherently global —
        rebuild-mode diameter inflation (shared coarse clusters), union-find
        reconnection, maintain-mode splices, the distortion-ranked repair
        pass and the κ guard that follows at batch level — runs post-barrier
        in the exact order the unsharded pipeline uses, which is what keeps
        any ``num_shards``/``shard_mode`` bit-exact with the oracle.
        """
        sparsifier, setup = self._sparsifier, self._setup
        config = self._resolved_config()
        graph = self._graph
        assert sparsifier is not None and setup is not None and graph is not None
        self._ensure_contexts()
        self._replan_if_stale()
        assert self._plan is not None and self._contexts is not None and self._escrow is not None
        timer = Timer().start()
        plan = self._plan

        # The contexts just validated above are keyed by the pinned level.
        level = self._filter_level
        composite = self._ensure_filter()
        composite.resync()  # same staleness handling run_removal's entry applies
        maintainer = self._ensure_maintainer()

        requested, graph_weights = prepare_removal_batch(graph, removed_with_weights)
        if plan.num_shards == 1 and not self._single_shard_logged:
            logger.info(
                "sharded removal: plan holds a single shard — removal batches "
                "run the global pipeline only (no per-shard drop stage)"
            )
            self._single_shard_logged = True

        # Route the requested pairs per shard, remembering each pair's
        # position so the per-shard outcomes stitch back into request order.
        jobs: List[Tuple[ShardContext, List[Tuple[int, Edge]]]] = []
        escrow_items: List[Tuple[int, Edge]] = []
        shard_events = [0] * plan.num_shards
        if requested:
            us = np.fromiter((u for u, _ in requested), dtype=np.int64, count=len(requested))
            vs = np.fromiter((v for _, v in requested), dtype=np.int64, count=len(requested))
            shard_ids = plan.shard_of_pairs(us, vs).tolist()
            routed: Dict[int, List[Tuple[int, Edge]]] = {}
            for position, (pair, shard) in enumerate(zip(requested, shard_ids)):
                routed.setdefault(shard, []).append((position, pair))
            for shard, items in sorted(routed.items()):
                if shard == ESCROW:
                    escrow_items = items
                else:
                    shard_events[shard] = len(items)
                    jobs.append((self._context_for(shard), items))
        escrow_events = len(escrow_items)
        populated = sum(1 for count in shard_events if count)
        use_threads = config.use_shard_threads(len(requested), populated, os.cpu_count())

        def run_stage(context: ShardContext, items: List[Tuple[int, Edge]]):
            return run_removal_drop_stage(
                sparsifier, setup, items, graph_weights,
                similarity_filter=context.filter, config=config,
                inflate=False,
            )

        # Escrow drains after the shard barrier, mirroring the insertion
        # engine's discipline: its bucket slice is disjoint from every
        # shard's, but keeping the shared-graph mutations of the cross-shard
        # stage out of the concurrent region means correctness never rests
        # on the GIL-atomicity of individual dict operations.
        drop_timer = Timer().start()
        use_processes = config.use_shard_processes(populated) and not self._process_failed
        stages: Optional[List[RemovalStage1Result]] = None
        drop_mode = "serial"
        if use_processes and len(jobs) > 1:
            stages = self._run_drop_jobs_in_workers(jobs, graph_weights, config)
            if stages is not None:
                drop_mode = "processes"
        if stages is None:
            if use_threads and len(jobs) > 1:
                futures = [self._pool().submit(run_stage, context, items) for context, items in jobs]
                stages = [future.result() for future in futures]
                drop_mode = "threads"
            else:
                stages = [run_stage(context, items) for context, items in jobs]
        if escrow_items:
            stages.append(run_stage(self._escrow, escrow_items))
        drop_timer.stop()

        result = ShardedRemovalResult(
            requested=requested,
            removed_from_sparsifier=[],
            reconnection_edges=[],
            filtering_level=level,
        )
        merge_drop_stages(result, stages)

        # Post-barrier: rebuild-mode diameter inflation replayed in request
        # order.  Inflation touches coarse clusters shared across shards (and
        # the hierarchy's staleness counter), so it cannot run inside the
        # concurrent stage; the same inflation factor per removal makes the
        # replay bit-identical to the oracle's inline interleaving.
        if maintainer is None:
            inflated = 0
            for u, v, _weight in result.removed_from_sparsifier:
                inflated += setup.hierarchy.note_edge_removed(
                    u, v, inflation_factor=config.removal_diameter_inflation
                )
            result.inflated_levels = inflated

        if result.removed_from_sparsifier:
            run_removal_repair_stages(
                sparsifier, setup, result, graph=graph, config=config,
                similarity_filter=composite, maintainer=maintainer,
            )

        result.shard_report = ShardBatchReport(
            mode=drop_mode,
            shard_events=shard_events,
            escrow_events=escrow_events,
            replans=self._replans,
            adaptive_replans=self._adaptive_replans,
            drop_seconds=drop_timer.elapsed,
        )
        timer.stop()
        result.removal_seconds = timer.elapsed
        self._observe_routing(shard_events, escrow_events)
        # Reconnection, splices, repair and the κ guard all ran in-parent and
        # can touch shard-owned edges; every shipped mirror is stale now.
        self._mirror_epoch += 1
        return result

    def _replay_maintenance(self, ordered: Sequence[Tuple[ShardContext, UpdateResult]],
                            us: np.ndarray, vs: np.ndarray) -> int:
        """Maintain-mode merge pass over the batch's ADDED edges, oracle order.

        The per-shard kernels run with maintenance deferred (parallel threads
        must not mutate the shared hierarchy); afterwards every added edge is
        replayed through its shard's maintainer in the exact order the
        unsharded engine uses — decreasing distortion, stream position as the
        tie-break — against the composite filter so cross-shard incident
        edges re-key correctly.
        """
        if self.config.hierarchy_mode != "maintain":
            return 0
        assert self._sparsifier is not None and self._composite is not None
        num_nodes = np.int64(max(self._sparsifier.num_nodes, 1))
        # validate_new_edge_arrays deduplicated the batch, so every canonical
        # pair maps to exactly one stream position — recovered with one
        # sorted-key lookup per shard's added set.
        keys_all = us * num_nodes + vs
        key_order = np.argsort(keys_all, kind="stable")
        sorted_keys = keys_all[key_order]
        entries: List[Tuple[float, int, WeightedEdge]] = []
        added_code = _ADDED_CODE
        for _context, result in ordered:
            decisions = result.decisions
            if isinstance(decisions, FilterDecisionBatch):
                added_idx = np.flatnonzero(decisions.actions == added_code)
                if not added_idx.size:
                    continue
                aus = decisions.us[added_idx]
                avs = decisions.vs[added_idx]
                aws = decisions.ws[added_idx].tolist()
                adist = decisions.distortions[added_idx].tolist()
            else:
                added = [(decision.edge, decision.distortion) for decision in decisions
                         if decision.action is FilterAction.ADDED]
                if not added:
                    continue
                aus = np.fromiter((edge[0] for edge, _ in added), dtype=np.int64, count=len(added))
                avs = np.fromiter((edge[1] for edge, _ in added), dtype=np.int64, count=len(added))
                aws = [edge[2] for edge, _ in added]
                adist = [distortion for _, distortion in added]
            ranks = key_order[np.searchsorted(sorted_keys, aus * num_nodes + avs)]
            for u, v, w, distortion, rank in zip(aus.tolist(), avs.tolist(), aws, adist,
                                                 ranks.tolist()):
                entries.append((float(distortion), int(rank), (u, v, w)))
        if not entries:
            return 0
        entries.sort(key=lambda item: (-item[0], item[1]))
        merges = 0
        composite = self._composite
        for _, _, edge in entries:
            # Resolve the owning context *per edge*: a replayed escrow merge
            # can fuse filtering-level clusters across shards and trigger a
            # mid-replay plan patch (node re-homing), after which a later
            # edge's owning context may have changed.
            self._replan_if_stale()
            assert self._plan is not None
            context = self._context_for(self._plan.shard_of_edge(edge[0], edge[1]))
            maintainer = context.maintainer
            if maintainer is None:
                continue
            merges += maintainer.note_insertions([edge], similarity_filter=composite)
        return merges

    def _merge_results(self, ordered: Sequence[Tuple[ShardContext, UpdateResult]],
                       level: int) -> ShardedUpdateResult:
        """Fuse the per-shard results into one record (shards first, escrow last)."""
        results = [result for _, result in ordered]
        summary = FilterSummary()
        dropped = 0
        for result in results:
            summary.added += result.summary.added
            summary.merged += result.summary.merged
            summary.redistributed += result.summary.redistributed
            summary.dropped += result.summary.dropped
            dropped += result.dropped_low_distortion
        if results and all(isinstance(result.decisions, FilterDecisionBatch) for result in results):
            decisions: Union[List[FilterDecision], FilterDecisionBatch] = FilterDecisionBatch.concat(
                [result.decisions for result in results])  # type: ignore[misc]
        else:
            decisions = []
            for result in results:
                decisions.extend(list(result.decisions))
        return ShardedUpdateResult(
            decisions=decisions,
            summary=summary,
            filtering_level=level,
            update_seconds=0.0,
            dropped_low_distortion=dropped,
        )

    # ------------------------------------------------------------------ #
    # Mirror staleness hooks
    # ------------------------------------------------------------------ #
    def _apply_weight_changes(self, changes):
        # Direct conductance bumps mutate shard-owned edges in-parent.
        result = super()._apply_weight_changes(changes)
        self._mirror_epoch += 1
        return result

    def _run_guard(self):
        # κ-guard reinsertions (rare) add shard-owned edges in-parent.
        report = super()._run_guard()
        if report is not None and getattr(report, "added_edges", 0):
            self._mirror_epoch += 1
        return report

    # ------------------------------------------------------------------ #
    # Checkpoint hooks
    # ------------------------------------------------------------------ #
    def _checkpoint_runtime_state(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        """Sharded driver extras: the live plan, replan counters, maintainer stats.

        Shipping the plan verbatim (not re-deriving it on restore) is what
        makes a restored driver's routing — and therefore its escrow ordering
        and replan schedule — byte-identical to the uninterrupted run.
        """
        self._require_setup()
        self._ensure_contexts()
        plan = self._plan
        policy = self._replan_policy
        assert plan is not None and policy is not None
        extra: dict = {
            "sharding": {
                "num_shards": int(plan.num_shards),
                "partition_level": int(plan.partition_level),
                "replans": int(self._replans),
                "adaptive_replans": int(self._adaptive_replans),
                "plan_patches": int(self._plan_patches),
                "replan_backoff": self._replan_backoff,
                "replan_policy": {
                    "events": int(policy.events),
                    "escrow_events": int(policy.escrow_events),
                    "shard_events": [int(count) for count in policy.shard_events],
                },
            },
        }
        arrays: Dict[str, np.ndarray] = {
            "plan_node_shard": plan.node_shard.copy(),
        }
        if self.config.hierarchy_mode == "maintain":
            extra["maintainer_stats"] = asdict(self.maintenance_stats)
            maintainer = self._ensure_maintainer()
            if maintainer is not None:
                pending = sorted(maintainer._splice_neighbourhood.keys())
                arrays["pending_splices"] = np.asarray(pending, dtype=np.int64)
        return extra, arrays

    def _restore_runtime_state(self, extra: dict,
                               arrays: Dict[str, np.ndarray]) -> None:
        sharding = extra["sharding"]
        self._plan = ShardPlan(
            num_shards=int(sharding["num_shards"]),
            partition_level=int(sharding["partition_level"]),
            node_shard=np.asarray(arrays["plan_node_shard"], dtype=np.int64).copy(),
        )
        self._replans = int(sharding["replans"])
        self._adaptive_replans = int(sharding["adaptive_replans"])
        self._plan_patches = int(sharding["plan_patches"])
        backoff = sharding.get("replan_backoff")
        self._replan_backoff = int(backoff) if backoff is not None else None
        # _ensure_contexts reuses the pre-seeded plan and rebuilds the scoped
        # filters from the restored sparsifier — filter state is a pure
        # function of (sparsifier edges, hierarchy labels, plan).
        self._ensure_contexts()
        policy_state = sharding["replan_policy"]
        policy = self._replan_policy
        assert policy is not None
        policy.events = int(policy_state["events"])
        policy.escrow_events = int(policy_state["escrow_events"])
        policy.shard_events = [int(count) for count in policy_state["shard_events"]]
        if self.config.hierarchy_mode == "maintain":
            stats = extra.get("maintainer_stats")
            if stats is not None:
                # Fresh contexts start at zero, so the saved aggregate lands
                # exactly once through the retirement accumulator.
                self._retired_stats = MaintenanceStats(**stats)
            maintainer = self._ensure_maintainer()
            pending = arrays.get("pending_splices")
            if maintainer is not None and pending is not None and pending.size:
                maintainer.note_spliced_nodes(pending.tolist())
