"""Incremental maintenance of the LRD cluster hierarchy.

The paper's update phase treats the hierarchy built by the setup phase as an
immutable snapshot; the fully dynamic extension (PR 1) merely *degraded* it —
every sparsifier-edge removal inflated the affected cluster diameters until a
full ``O(m log n)`` re-setup restored accuracy.  This module replaces that
inflate-and-rebuild cycle with true structural maintenance:

* **Removal → splice.**  When a sparsifier edge disappears, every cluster
  that contained both endpoints is *spliced*: its interior connectivity is
  re-examined and the cluster is split along it, with fragment diameters
  recomputed locally (exact resistances for small fragments, the spanning
  tree path bound for large ones) instead of multiplied by a blind factor.
  Small clusters additionally go through a localized re-decomposition
  (:func:`repro.core.lrd.decompose_node_subset`) honouring the level's
  diameter threshold, so a connected-but-stretched cluster also splits the
  way a fresh setup would have split it.

* **Insertion → merge.**  When a new edge enters the sparsifier, clusters it
  joins are fused whenever the merged diameter (``d1 + d2 + 1/w``) fits the
  level's threshold and nesting allows it, incrementally tightening the
  resistance bounds the distortion estimates rely on.

All mutations flow through the versioned in-place API of
:class:`~repro.core.hierarchy.ClusterHierarchy`, so the embedding matrix and
the vectorised gather tables stay consistent without wholesale invalidation;
when a touched level is the similarity filter's filtering level, the filter's
cluster-pair connectivity map is re-keyed through the unregister/relabel/
re-register protocol instead of rebuilt.

Validity argument (what the property suite checks): fragment diameters are
measured on *induced subgraphs* of the current sparsifier, which by Rayleigh
monotonicity upper-bound the true resistances; merge diameters use the series
bound ``1/w`` for the joining edge; splits only push node pairs to coarser
(larger-diameter) levels; and nesting is preserved because fragments are
unions of internally connected finer-level clusters.  Hence the maintained
hierarchy's ``resistance_upper_bound`` stays a genuine upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import InGrassConfig, LRDConfig
from repro.core.hierarchy import ClusterHierarchy
from repro.core.lrd import _exact_diameter_csr, decompose_node_subset
from repro.graphs.graph import Graph
from repro.utils.timing import Timer

WeightedEdge = Tuple[int, int, float]


@dataclass
class MaintenanceStats:
    """Counters of one maintainer's lifetime (reset on hierarchy rebuild)."""

    #: Sparsifier-edge removals processed.
    removals: int = 0
    #: Sparsifier-edge insertions examined for cluster merges.
    insertions: int = 0
    #: Clusters whose interior was re-examined after removals.
    splices: int = 0
    #: New fragments created by splits (beyond the surviving cluster).
    splits: int = 0
    #: Cluster pairs fused after insertions.
    merges: int = 0
    #: Cluster diameters recomputed locally.
    diameter_recomputes: int = 0
    #: Wall-clock spent inside the maintainer.
    maintenance_seconds: float = 0.0
    #: Wall-clock of the removal-splice passes (subset of maintenance_seconds).
    splice_seconds: float = 0.0
    #: Wall-clock of fragment analysis — connectivity, localized
    #: re-decomposition and diameter bounds (subset of splice_seconds).
    diameter_seconds: float = 0.0
    #: Wall-clock of similarity-filter re-keying (unregister/re-register
    #: around relabels, in both splices and merges).
    rekey_seconds: float = 0.0

    def snapshot(self) -> "MaintenanceStats":
        """Return a copy (for before/after deltas in result records)."""
        return MaintenanceStats(
            removals=self.removals, insertions=self.insertions, splices=self.splices,
            splits=self.splits, merges=self.merges,
            diameter_recomputes=self.diameter_recomputes,
            maintenance_seconds=self.maintenance_seconds,
            splice_seconds=self.splice_seconds,
            diameter_seconds=self.diameter_seconds,
            rekey_seconds=self.rekey_seconds,
        )

    def merge(self, other: "MaintenanceStats") -> None:
        """Fold ``other``'s counters into this record (sharded aggregation)."""
        self.removals += other.removals
        self.insertions += other.insertions
        self.splices += other.splices
        self.splits += other.splits
        self.merges += other.merges
        self.diameter_recomputes += other.diameter_recomputes
        self.maintenance_seconds += other.maintenance_seconds
        self.splice_seconds += other.splice_seconds
        self.diameter_seconds += other.diameter_seconds
        self.rekey_seconds += other.rekey_seconds


@dataclass
class SpliceReport:
    """Outcome of one removal-batch splice pass."""

    #: ``(level, cluster)`` pairs whose interiors were re-examined.
    spliced: List[Tuple[int, int]] = field(default_factory=list)
    #: New fragments created (count across all splices).
    splits: int = 0
    #: Clusters that stayed whole and only had their diameter recomputed.
    recomputed: int = 0


class HierarchyMaintainer:
    """Keeps a :class:`ClusterHierarchy` structurally valid under mutations.

    Parameters
    ----------
    hierarchy:
        The hierarchy to maintain (mutated in place).
    sparsifier:
        The sparsifier the hierarchy describes.  The maintainer reads it when
        re-examining cluster interiors; callers mutate it *before* notifying.
    lrd_config:
        Resistance-estimation parameters for localized re-decompositions;
        defaults to the hierarchy-construction defaults.
    exact_limit:
        Cluster size up to which splices run the full localized
        re-decomposition with exact fragment diameters; larger clusters use
        the connectivity split plus the spanning-tree diameter bound.
    """

    def __init__(self, hierarchy: ClusterHierarchy, sparsifier: Graph, *,
                 lrd_config: Optional[LRDConfig] = None, exact_limit: int = 64) -> None:
        if exact_limit < 2:
            raise ValueError("exact_limit must be at least 2")
        self._hierarchy = hierarchy
        self._sparsifier = sparsifier
        self._lrd_config = lrd_config if lrd_config is not None else LRDConfig()
        self._exact_limit = int(exact_limit)
        self.stats = MaintenanceStats()
        # Nodes of clusters spliced since the last drain — the "split
        # neighbourhood" the maintenance-aware κ guard searches first (see
        # :func:`repro.core.update.run_kappa_guard`).
        self._splice_neighbourhood: Dict[int, None] = {}

    # ------------------------------------------------------------------ #
    @property
    def hierarchy(self) -> ClusterHierarchy:
        """The hierarchy being maintained."""
        return self._hierarchy

    @property
    def sparsifier(self) -> Graph:
        """The sparsifier the hierarchy describes."""
        return self._sparsifier

    @classmethod
    def from_config(cls, hierarchy: ClusterHierarchy, sparsifier: Graph,
                    config: InGrassConfig) -> "HierarchyMaintainer":
        """Build a maintainer honouring :class:`InGrassConfig` knobs."""
        return cls(hierarchy, sparsifier, lrd_config=config.lrd,
                   exact_limit=config.maintenance_exact_limit)

    # ------------------------------------------------------------------ #
    # Removal path: splice affected clusters
    # ------------------------------------------------------------------ #
    def note_removals(self, removed_edges: Sequence[WeightedEdge], *,
                      similarity_filter=None) -> SpliceReport:
        """Splice every cluster that contained both endpoints of a removed edge.

        Call *after* the edges left the sparsifier (and after any
        connectivity repair), so interior connectivity is judged against the
        sparsifier as it will actually be queried.  Affected ``(level,
        cluster)`` pairs are deduplicated across the batch and processed
        finest level first, which keeps the nesting invariant: by the time a
        coarse cluster is re-examined, its finer-level atoms are already
        internally connected again.
        """
        report = SpliceReport()
        if not removed_edges:
            return report
        timer = Timer().start()
        splice_start = perf_counter()
        hierarchy = self._hierarchy
        num_removed = len(removed_edges)
        us = np.fromiter((edge[0] for edge in removed_edges), dtype=np.int64,
                         count=num_removed)
        vs = np.fromiter((edge[1] for edge in removed_edges), dtype=np.int64,
                         count=num_removed)
        for _ in range(num_removed):
            hierarchy.record_removal()
        self.stats.removals += num_removed
        # Levels are processed finest first, and a splice only relabels its
        # own level, so each level's dirty-cluster set can be gathered with
        # one vectorised label comparison just before that level is spliced —
        # the sets are identical to the per-edge embedding-vector scan.
        for level_index in range(hierarchy.num_levels):
            labels = hierarchy.level(level_index).labels
            labels_u = labels[us]
            together = labels_u == labels[vs]
            if not np.any(together):
                continue
            clusters = np.unique(labels_u[together])
            self._splice_level(level_index, clusters, similarity_filter, report)
        timer.stop()
        self.stats.splice_seconds += perf_counter() - splice_start
        self.stats.maintenance_seconds += timer.elapsed
        return report

    def _decompose_small(self, level_index: int, nodes: np.ndarray,
                         threshold: float) -> Tuple[List[np.ndarray], List[float]]:
        """Localized re-decomposition of one small cluster (nesting-preserving).

        The finer level's clusters enter as atomic units so nesting survives.
        """
        hierarchy = self._hierarchy
        if level_index > 0:
            atoms = hierarchy.level(level_index - 1).labels[nodes]
            finer_diameters = hierarchy.level(level_index - 1).cluster_diameters
            atom_diameters = finer_diameters[np.unique(atoms)]
        else:
            atoms = None
            atom_diameters = None
        return decompose_node_subset(
            self._sparsifier, nodes, threshold, self._lrd_config,
            atoms=atoms, atom_diameters=atom_diameters, exact_limit=self._exact_limit,
        )

    def _splice_level(self, level_index: int, clusters: np.ndarray,
                      similarity_filter, report: SpliceReport) -> None:
        """Splice every dirty cluster of one level in a single batched pass.

        Phase 1 (analysis) is read-only: small clusters run the localized
        re-decomposition individually, while all oversized clusters are
        stacked into one block-diagonal CSR view and resolved together (see
        :meth:`_analyse_large`).  Phase 2 applies the planned mutations
        sequentially in ascending cluster order — the exact order (and hence
        ``append_cluster`` id sequence, filter re-keying and float results)
        of the retired per-cluster scalar splice.
        """
        hierarchy = self._hierarchy
        threshold = float(hierarchy.level(level_index).diameter_threshold)
        diameter_start = perf_counter()
        plans: List[list] = []
        large: List[int] = []
        for cluster in clusters.tolist():
            cluster = int(cluster)
            nodes = hierarchy.cluster_members(level_index, cluster)
            if nodes.shape[0] <= 1:
                plans.append([cluster, nodes, None, None])
            elif nodes.shape[0] <= self._exact_limit:
                fragments, diameters = self._decompose_small(level_index, nodes, threshold)
                plans.append([cluster, nodes, fragments, diameters])
            else:
                large.append(len(plans))
                plans.append([cluster, nodes, None, None])
        if large:
            self._analyse_large(plans, large)
        self.stats.diameter_seconds += perf_counter() - diameter_start
        for cluster, nodes, fragments, diameters in plans:
            splits, recomputed = self._apply_splice(
                level_index, cluster, nodes, fragments, diameters, similarity_filter)
            report.spliced.append((level_index, cluster))
            report.splits += splits
            report.recomputed += recomputed

    def _analyse_large(self, plans: List[list], large: List[int]) -> None:
        """Fill the fragment plans of one level's oversized clusters at once.

        All clusters are sliced out of the sparsifier's cached CSR in one
        fancy-index, cross-cluster entries are masked away, and a single
        ``connected_components`` call yields every cluster's interior
        fragments; every fragment too large for the exact pinv bound then
        shares one MST + two batched dijkstra sweeps.  Bit-exactness with the
        per-cluster scalar path: CSR content depends only on the edge set
        (not insertion order), component labels arrive in ascending
        first-member order, and the minimum spanning forest restricted to one
        fragment is that fragment's own minimum spanning tree, so every float
        produced equals the one the scalar path produced.
        """
        import scipy.sparse as sp
        from scipy.sparse.csgraph import (
            connected_components,
            dijkstra,
            minimum_spanning_tree,
        )

        blocks = [plans[index][1] for index in large]
        sizes = np.array([block.shape[0] for block in blocks], dtype=np.int64)
        offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(sizes)])
        all_nodes = np.concatenate(blocks)
        sliced = self._sparsifier.csr_view()[all_nodes][:, all_nodes]
        if len(blocks) == 1:
            # One dirty cluster at this level: the slice already is the
            # block-diagonal view, no cross-cluster entries to mask.
            masked = sliced
        else:
            owner = np.repeat(np.arange(len(blocks), dtype=np.int64), sizes)
            stacked = sliced.tocoo()
            keep = owner[stacked.row] == owner[stacked.col]
            masked = sp.csr_matrix(
                (stacked.data[keep], (stacked.row[keep], stacked.col[keep])),
                shape=stacked.shape,
            )
        _, labels = connected_components(masked, directed=False)

        exact_limit = self._exact_limit
        tree_jobs: List[Tuple[int, int, np.ndarray]] = []
        for position, plan_index in enumerate(large):
            start = int(offsets[position])
            end = int(offsets[position + 1])
            block_labels = labels[start:end]
            order = np.argsort(block_labels, kind="stable")
            bounds = np.flatnonzero(np.diff(block_labels[order])) + 1
            local_fragments = list(np.split(order, bounds))
            local_fragments.sort(key=len, reverse=True)
            block_nodes = plans[plan_index][1]
            fragments = [block_nodes[fragment] for fragment in local_fragments]
            diameters = [0.0] * len(local_fragments)
            for fragment_position, fragment in enumerate(local_fragments):
                if fragment.shape[0] <= 1:
                    continue
                rows = fragment + start
                if fragment.shape[0] <= exact_limit:
                    diameters[fragment_position] = _exact_diameter_csr(
                        masked[rows][:, rows])
                else:
                    tree_jobs.append((plan_index, fragment_position, rows))
            plans[plan_index][2] = fragments
            plans[plan_index][3] = diameters
        if tree_jobs:
            lengths = masked.copy()
            lengths.data = 1.0 / lengths.data
            forest = minimum_spanning_tree(lengths)
            sources = [int(rows[0]) for _, _, rows in tree_jobs]
            first = dijkstra(forest, directed=False, indices=sources)
            turns = []
            for job_index, (_, _, rows) in enumerate(tree_jobs):
                values = first[job_index][rows]
                turn = int(np.argmax(np.where(np.isfinite(values), values, -1.0)))
                turns.append(int(rows[turn]))
            second = dijkstra(forest, directed=False, indices=turns)
            for job_index, (plan_index, fragment_position, rows) in enumerate(tree_jobs):
                values = second[job_index][rows]
                plans[plan_index][3][fragment_position] = float(
                    np.max(values[np.isfinite(values)]))

    def note_spliced_nodes(self, nodes) -> None:
        """Mark ``nodes`` as pending splice neighbourhood.

        Used by the sharded driver when it rebuilds its per-shard contexts
        (a replan) between a removal batch and the κ-guard pass: the retiring
        maintainer's un-drained splice neighbourhood is adopted by its
        replacement, so the guard's round-0 candidate pool is independent of
        when replans happen — part of the oracle guarantee.
        """
        for node in np.asarray(nodes, dtype=np.int64).tolist():
            self._splice_neighbourhood[int(node)] = None

    def drain_splice_neighbourhood(self) -> np.ndarray:
        """Return (and clear) the nodes of clusters spliced since the last drain.

        The κ guard uses this as its first candidate pool: a removal-induced
        split marks exactly the region where the sparsifier just lost
        support, so off-sparsifier edges incident to it are the most likely
        κ relief — searching them before the global pool keeps the guard
        surgical (see :func:`repro.core.update.run_kappa_guard`).
        """
        if not self._splice_neighbourhood:
            return np.zeros(0, dtype=np.int64)
        nodes = np.fromiter(self._splice_neighbourhood.keys(), dtype=np.int64,
                            count=len(self._splice_neighbourhood))
        self._splice_neighbourhood.clear()
        nodes.sort()
        return nodes

    def _apply_splice(self, level_index: int, cluster: int, nodes: np.ndarray,
                      fragments, diameters, similarity_filter) -> Tuple[int, int]:
        """Apply one planned splice (phase 2); returns ``(splits, recomputed)``."""
        hierarchy = self._hierarchy
        if nodes.shape[0] == 0:
            return 0, 0
        self.stats.splices += 1
        for node in nodes.tolist():
            self._splice_neighbourhood[node] = None
        if nodes.shape[0] == 1:
            hierarchy.set_cluster_diameter(level_index, cluster, 0.0)
            return 0, 1
        rekey = (
            similarity_filter is not None
            and len(fragments) > 1
            and similarity_filter.filtering_level == level_index
        )
        pending = None
        if rekey:
            rekey_start = perf_counter()
            pending = similarity_filter.unregister_incident_edges(nodes)
            self.stats.rekey_seconds += perf_counter() - rekey_start
        hierarchy.set_cluster_diameter(level_index, cluster, diameters[0])
        self.stats.diameter_recomputes += 1
        for fragment, diameter in zip(fragments[1:], diameters[1:]):
            new_cluster = hierarchy.append_cluster(level_index, diameter)
            hierarchy.relabel_nodes(level_index, fragment, new_cluster)
            self.stats.splits += 1
            self.stats.diameter_recomputes += 1
        if pending is not None:
            rekey_start = perf_counter()
            similarity_filter.register_edges(pending)
            self.stats.rekey_seconds += perf_counter() - rekey_start
        if similarity_filter is not None:
            similarity_filter.mark_synced()
        return len(fragments) - 1, 1 if len(fragments) == 1 else 0

    # ------------------------------------------------------------------ #
    # Insertion path: merge clusters the new edges join
    # ------------------------------------------------------------------ #
    def note_insertions(self, edges: Sequence[WeightedEdge], *,
                        similarity_filter=None) -> int:
        """Fuse clusters joined by newly admitted sparsifier edges.

        For every edge and every level where its endpoints live in different
        clusters, the two clusters are merged when (a) the merged diameter
        ``d1 + d2 + 1/w`` fits the level's threshold and (b) the endpoints
        already share a cluster at the next coarser level (nesting).  Returns
        the number of merges performed.
        """
        if not edges:
            return 0
        timer = Timer().start()
        hierarchy = self._hierarchy
        merges = 0
        num_levels = hierarchy.num_levels
        for u, v, w in edges:
            self.stats.insertions += 1
            if w <= 0:
                continue
            edge_resistance = 1.0 / float(w)
            for level_index in range(num_levels):
                level = hierarchy.level(level_index)
                cluster_u = int(level.labels[u])
                cluster_v = int(level.labels[v])
                if cluster_u == cluster_v:
                    continue
                if level_index + 1 < num_levels:
                    coarser = hierarchy.level(level_index + 1).labels
                    if int(coarser[u]) != int(coarser[v]):
                        continue
                merged_diameter = (
                    float(level.cluster_diameters[cluster_u])
                    + float(level.cluster_diameters[cluster_v])
                    + edge_resistance
                )
                if merged_diameter > float(level.diameter_threshold):
                    continue
                self._merge(level_index, cluster_u, cluster_v, merged_diameter,
                            similarity_filter)
                merges += 1
        timer.stop()
        self.stats.maintenance_seconds += timer.elapsed
        return merges

    def _merge(self, level_index: int, cluster_a: int, cluster_b: int,
               merged_diameter: float, similarity_filter) -> None:
        """Fuse two clusters at one level (larger id set absorbs the smaller)."""
        hierarchy = self._hierarchy
        nodes_a = hierarchy.cluster_members(level_index, cluster_a)
        nodes_b = hierarchy.cluster_members(level_index, cluster_b)
        if nodes_a.shape[0] >= nodes_b.shape[0]:
            target, source_nodes = cluster_a, nodes_b
            source = cluster_b
        else:
            target, source_nodes = cluster_b, nodes_a
            source = cluster_a
        rekey = (
            similarity_filter is not None
            and similarity_filter.filtering_level == level_index
        )
        pending = None
        if rekey:
            rekey_start = perf_counter()
            pending = similarity_filter.unregister_incident_edges(source_nodes)
            self.stats.rekey_seconds += perf_counter() - rekey_start
        hierarchy.relabel_nodes(level_index, source_nodes, target)
        hierarchy.set_cluster_diameter(level_index, target, merged_diameter)
        # The absorbed id keeps a minimal diameter; no node references it.
        hierarchy.set_cluster_diameter(level_index, source, 0.0)
        self.stats.merges += 1
        if pending is not None:
            rekey_start = perf_counter()
            similarity_filter.register_edges(pending)
            self.stats.rekey_seconds += perf_counter() - rekey_start
        if similarity_filter is not None:
            similarity_filter.mark_synced()
