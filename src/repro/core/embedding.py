"""Resistance embedding built on the LRD cluster hierarchy.

The hierarchy assigns each node a vector of cluster indices (one per level);
this module wraps it in a small query object that estimates effective
resistances between arbitrary node pairs in ``O(log N)`` — the primitive the
update phase uses to score newly streamed edges — and that can be compared
against exact resistances in tests and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.hierarchy import ClusterHierarchy
from repro.graphs.graph import Graph


@dataclass
class EmbeddingStats:
    """Comparison of embedding resistance estimates against exact values."""

    num_pairs: int
    spearman_correlation: float
    mean_ratio: float
    fraction_upper_bound: float

    def as_dict(self) -> dict:
        return {
            "num_pairs": self.num_pairs,
            "spearman_correlation": self.spearman_correlation,
            "mean_ratio": self.mean_ratio,
            "fraction_upper_bound": self.fraction_upper_bound,
        }


class ResistanceEmbedding:
    """``O(log N)``-dimensional node embedding with resistance-bound queries."""

    def __init__(self, hierarchy: ClusterHierarchy) -> None:
        self._hierarchy = hierarchy

    @property
    def hierarchy(self) -> ClusterHierarchy:
        """The underlying cluster hierarchy."""
        return self._hierarchy

    @property
    def dimension(self) -> int:
        """Embedding dimension (= number of LRD levels)."""
        return self._hierarchy.num_levels

    @property
    def num_nodes(self) -> int:
        return self._hierarchy.num_nodes

    def vector(self, node: int) -> np.ndarray:
        """Return the embedding vector (cluster index per level) of ``node``."""
        return self._hierarchy.embedding_vector(node)

    def vectors(self) -> np.ndarray:
        """Return the full ``(num_nodes, dimension)`` embedding matrix."""
        return self._hierarchy.embedding_matrix()

    def estimate_resistance(self, p: int, q: int) -> float:
        """Estimate (upper-bound) the effective resistance between two nodes."""
        return self._hierarchy.resistance_upper_bound(p, q)

    def estimate_resistances(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Vectorised resistance estimates for many node pairs."""
        return self._hierarchy.resistance_upper_bounds(pairs)

    def estimate_resistances_arrays(self, ps: np.ndarray, qs: np.ndarray) -> np.ndarray:
        """Array-native resistance estimates (no per-pair Python loop)."""
        return self._hierarchy.resistance_upper_bounds_arrays(ps, qs)

    def compare_with_exact(self, sparsifier: Graph, pairs: Sequence[Tuple[int, int]]) -> EmbeddingStats:
        """Quantify estimate quality against exact resistances on ``pairs``.

        Intended for tests / ablation benches on small graphs: reports the
        Spearman rank correlation, the mean estimate/exact ratio and the
        fraction of pairs where the estimate is indeed an upper bound.
        """
        from scipy.stats import spearmanr

        from repro.spectral.effective_resistance import ExactResistanceCalculator

        pair_list = [(int(p), int(q)) for p, q in pairs if p != q]
        if not pair_list:
            raise ValueError("need at least one distinct node pair")
        exact = ExactResistanceCalculator(sparsifier).resistances(pair_list)
        estimated = self.estimate_resistances(pair_list)
        correlation = float(spearmanr(exact, estimated).statistic) if len(pair_list) > 2 else 1.0
        ratio = float(np.mean(estimated / np.maximum(exact, 1e-15)))
        upper = float(np.mean(estimated >= exact * (1.0 - 1e-9)))
        return EmbeddingStats(
            num_pairs=len(pair_list),
            spearman_correlation=correlation,
            mean_ratio=ratio,
            fraction_upper_bound=upper,
        )
